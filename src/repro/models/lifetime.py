"""Fig. 2: switching oPages to ECC trades capacity for diminishing PEC gains.

The figure plots, per tiredness level, the remaining data capacity against
the PEC-limit benefit of the lower code rate. The library reproduces it
from first principles: the per-level ECC capability comes from the BCH
bound + binomial tail (:mod:`repro.flash.ecc`), and the PEC benefit from
inverting the RBER growth model. With the default calibration the L1 point
lands exactly on the paper's "+50 %" anchor, and L2/L3 show the diminishing
returns that justify "RegenS should limit itself to L < 2".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flash.rber import RBERModel
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law


@dataclass(frozen=True)
class TirednessTradeoff:
    """One Fig. 2 point.

    Attributes:
        level: tiredness level.
        capacity_fraction: data capacity remaining (x-axis).
        code_rate: data / (data + parity) at this level.
        max_rber: largest tolerable RBER.
        pec_limit: cycles until this level's ECC is outgrown (median page).
        pec_gain: fractional PEC benefit over L0 (y-axis).
        marginal_gain: PEC benefit added by this level over the previous
            one — the "diminishing" quantity.
    """

    level: int
    capacity_fraction: float
    code_rate: float
    max_rber: float
    pec_limit: float
    pec_gain: float
    marginal_gain: float


def tiredness_tradeoff(
    policy: TirednessPolicy | None = None,
    model: RBERModel | None = None,
    *,
    pec_limit_l0: float = 3000.0,
) -> list[TirednessTradeoff]:
    """Compute the Fig. 2 curve for all usable tiredness levels.

    Args:
        policy: tiredness policy (defaults to the 16 KiB / 2 KiB layout).
        model: RBER model; defaults to the calibrated power law, in which
            case ``pec_limit_l0`` anchors it.
    """
    if policy is None:
        policy = TirednessPolicy()
    if model is None:
        model = calibrate_power_law(policy, pec_limit_l0=pec_limit_l0)
    points = []
    previous_gain = 0.0
    for level in policy.usable_levels:
        gain = policy.lifetime_gain(level, model)
        points.append(TirednessTradeoff(
            level=level,
            capacity_fraction=policy.capacity_fraction(level),
            code_rate=policy.code_rate(level),
            max_rber=policy.max_rber(level),
            pec_limit=float(policy.pec_limit(level, model)),
            pec_gain=gain,
            marginal_gain=gain - previous_gain,
        ))
        previous_gain = gain
    return points
