"""§4.3: recovery-traffic accounting.

The paper's argument: ShrinkS moves *the same total LBAs* through recovery
as a baseline fleet — a baseline death is "logically equivalent to retiring
all flash blocks simultaneously" — just spread over time and in mDisk-sized
pieces. RegenS is worse in total: regenerated mDisks add capacity that will
fail again ("increase the total data that will fail, and are shorter
lived").

Two views are provided:

* the analytic per-page bound :func:`total_failed_capacity_fraction` —
  e.g. at ``P = 4`` and ``regen_max_level = 1`` a page fails once with 4/4
  of its capacity and once more with 3/4, so RegenS re-replicates up to
  1.75x a ShrinkS fleet's bytes;
* :class:`RecoveryModel`, which converts fleet-simulation capacity-loss
  series (or difs recovery stats) into network traffic, where recovering a
  byte costs one read from a survivor plus one write to the new replica.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.sim.fleet import FleetResult


def total_failed_capacity_fraction(opages_per_fpage: int = 4,
                                   regen_max_level: int = 0) -> float:
    """Total capacity that fails over a device's life, as a fraction of C0.

    Every page eventually loses its full L0 capacity (fraction 1 in total);
    each regeneration level ``l`` re-adds ``(P - l) / P`` of the page that
    later fails again.
    """
    if opages_per_fpage <= 0:
        raise ConfigError(
            f"opages_per_fpage must be positive, got {opages_per_fpage!r}")
    if not 0 <= regen_max_level < opages_per_fpage:
        raise ConfigError(
            f"regen_max_level must be in [0, {opages_per_fpage}), "
            f"got {regen_max_level!r}")
    total = 1.0
    for level in range(1, regen_max_level + 1):
        total += (opages_per_fpage - level) / opages_per_fpage
    return total


@dataclass(frozen=True)
class RecoveryModel:
    """Converts lost-capacity volumes into diFS recovery traffic.

    Attributes:
        utilization: fraction of lost capacity that held live data (only
            live chunks are re-replicated).
        read_write_cost: network bytes moved per recovered byte — 2.0 for
            read-one-write-one n-way replication.
    """

    utilization: float = 0.5
    read_write_cost: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.utilization <= 1.0:
            raise ConfigError(
                f"utilization must be in (0, 1], got {self.utilization!r}")
        if self.read_write_cost <= 0:
            raise ConfigError(
                f"read_write_cost must be positive, "
                f"got {self.read_write_cost!r}")

    def traffic_bytes(self, lost_capacity_bytes: float) -> float:
        """Recovery traffic for ``lost_capacity_bytes`` of failed capacity."""
        if lost_capacity_bytes < 0:
            raise ConfigError(
                f"lost_capacity_bytes must be non-negative, "
                f"got {lost_capacity_bytes!r}")
        return lost_capacity_bytes * self.utilization * self.read_write_cost

    def traffic_series(self, result: FleetResult) -> np.ndarray:
        """Per-step recovery traffic for a fleet run."""
        return (result.capacity_lost_bytes
                * self.utilization * self.read_write_cost)

    def cumulative_traffic(self, result: FleetResult) -> np.ndarray:
        return np.cumsum(self.traffic_series(result))

    def peak_step_traffic(self, result: FleetResult) -> float:
        """Worst single-step recovery burst — where minidisks shine.

        A baseline fleet loses whole devices at once; Salamander loses
        mSize-sized slivers, so its peak is orders of magnitude lower even
        when totals match.
        """
        series = self.traffic_series(result)
        return float(series.max()) if series.size else 0.0


def recovery_traffic_summary(results: dict[str, FleetResult],
                             model: RecoveryModel | None = None,
                             regen_max_level: int = 1) -> list[dict[str, float]]:
    """Rows comparing disciplines: total and peak recovery traffic.

    ``results`` maps mode name -> fleet result (same config/seed). The
    ``regen`` row also carries the analytic total-failure bound for
    context.
    """
    model = model or RecoveryModel()
    rows = []
    for mode, result in results.items():
        total = float(model.traffic_series(result).sum())
        rows.append({
            "mode": mode,
            "total_traffic_bytes": total,
            "peak_step_traffic_bytes": model.peak_step_traffic(result),
            "traffic_per_initial_byte": (
                total / result.initial_capacity_bytes
                if result.initial_capacity_bytes else 0.0),
            "analytic_failed_fraction": total_failed_capacity_fraction(
                regen_max_level=regen_max_level if mode == "regen" else 0),
        })
    return rows
