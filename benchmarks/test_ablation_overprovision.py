"""ABL-OP — over-provisioning vs write amplification and write tails.

Extension beyond the paper, on a mechanism the paper leans on: Eq. 2
reserves headroom because a page-mapped FTL needs slack to garbage-collect
efficiently. This ablation sweeps over-provisioning at fixed 85 %-of-
advertised utilisation and measures the classic SSD trade: less OP means
higher write amplification (more wear per host byte) and taller write
tails (GC stalls on the host path).
"""

import numpy as np
import pytest

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.reporting.tables import format_table
from repro.ssd.ftl import FTLConfig, PageMappedFTL

OP_VALUES = (0.10, 0.20, 0.35, 0.50)


def churn_at(op: float) -> dict:
    geometry = FlashGeometry(blocks=48, fpages_per_block=8)
    chip = FlashChip(geometry, seed=1, variation_sigma=0.0,
                     inject_errors=False)
    ftl = PageMappedFTL.for_chip(chip, FTLConfig(
        overprovision=op, buffer_opages=8))
    rng = np.random.default_rng(0)
    hot = int(ftl.n_lbas * 0.85)
    for i in range(8 * ftl.n_lbas):
        ftl.write(int(rng.integers(0, hot)), b"x")
    return {
        "waf": ftl.stats.write_amplification,
        "p50": ftl.stats.write_latency.percentile(50),
        "p99": ftl.stats.write_latency.percentile(99),
        "erases": ftl.stats.erases,
    }


@pytest.mark.benchmark(group="abl-op")
def test_overprovisioning_tradeoff(benchmark, experiment_output):
    results = benchmark.pedantic(
        lambda: {op: churn_at(op) for op in OP_VALUES},
        rounds=1, iterations=1)
    rows = [[f"{op:.0%}", f"{d['waf']:.2f}", f"{d['p50']:.1f}",
             f"{d['p99']:.0f}", d["erases"]]
            for op, d in results.items()]
    experiment_output(
        "ABL-OP — over-provisioning vs WAF and write-tail latency "
        "(85 % utilisation, random overwrites)",
        format_table(["over-provisioning", "WAF", "write p50 (us)",
                      "write p99 (us)", "erases"], rows))

    wafs = [results[op]["waf"] for op in OP_VALUES]
    assert all(a >= b for a, b in zip(wafs, wafs[1:]))  # more OP, less WAF
    assert results[0.10]["p99"] > results[0.50]["p99"]  # and shorter tails
    # Most writes are NVRAM hits: the median is far below the tail.
    assert results[0.10]["p50"] < results[0.10]["p99"] / 5
