"""FIG3D — large random-access latency vs L1 fraction (Fig. 3d).

Paper §4.2: large (16 KiB) accesses slow by ``4/(4-L)`` — a 16 KiB logical
extent occupies 4/3 fPages once pages hold only 3 data oPages — while
"small, random accesses (i.e., 4 KiB pages) will likely have the same
latency". Measured on the functional chip: per-16 KiB latency is derived
from whole-fPage senses over a contiguous layout (the paper's amortised
model), and 4 KiB latency from single-oPage reads.
"""

import pytest

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.models.performance import PerformanceModel
from repro.reporting.tables import format_table
from repro.rng import make_rng

L1_FRACTIONS = [0.0, 0.5, 1.0]
EXTENT_BYTES = 16 * 1024


def build_population(l1_fraction: float) -> FlashChip:
    geometry = FlashGeometry(blocks=8, fpages_per_block=16)
    chip = FlashChip(geometry, seed=1, variation_sigma=0.0,
                     inject_errors=False)
    total = geometry.total_fpages
    for fpage in range(int(round(l1_fraction * total))):
        chip.set_level(fpage, 1)
    for fpage in range(total):
        capacity = chip.policy.data_opages(chip.level(fpage))
        chip.program(fpage, [b"x"] * capacity)
    return chip


def extent_latency_us(chip: FlashChip) -> float:
    """Expected latency per 16 KiB extent, amortised over a full scan."""
    begin = chip.stats.busy_us
    data_bytes = 0
    for fpage in range(chip.geometry.total_fpages):
        payloads, _latency = chip.read_fpage(fpage)
        data_bytes += len(payloads) * chip.geometry.opage_bytes
    elapsed = chip.stats.busy_us - begin
    return elapsed * EXTENT_BYTES / data_bytes


def small_latency_us(chip: FlashChip, accesses: int = 300) -> float:
    """Expected latency of single 4 KiB oPage reads at random."""
    rng = make_rng(7)
    begin = chip.stats.busy_us
    total = chip.geometry.total_fpages
    for _ in range(accesses):
        fpage = int(rng.integers(0, total))
        slot = int(rng.integers(
            0, chip.policy.data_opages(chip.level(fpage))))
        chip.read(fpage, slot)
    return (chip.stats.busy_us - begin) / accesses


@pytest.mark.benchmark(group="fig3d")
def test_fig3d_large_access_latency(benchmark, experiment_output):
    model = PerformanceModel()

    def sweep():
        out = {}
        for fraction in L1_FRACTIONS:
            chip = build_population(fraction)
            out[fraction] = (extent_latency_us(chip),
                             small_latency_us(chip))
        return out

    measured = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base_large, base_small = measured[0.0]
    rows = []
    for fraction in L1_FRACTIONS:
        mix = ({0: 1.0} if fraction == 0.0
               else {1: 1.0} if fraction == 1.0
               else {0: 1.0 - fraction, 1: fraction})
        analytic = model.large_access_latency_factor(mix)
        large, small = measured[fraction]
        rows.append([f"{fraction:.2f}", f"{analytic:.3f}",
                     f"{large / base_large:.3f}",
                     f"{small / base_small:.3f}"])
    experiment_output(
        "FIG3D — 16 KiB access latency vs L1 fraction "
        "(paper Fig. 3d; L1-only = 1.33x; 4 KiB unaffected)",
        format_table(["L1 fraction", "analytic 16K factor",
                      "measured 16K factor", "measured 4K factor"], rows))

    large_all_l1 = measured[1.0][0] / base_large
    small_all_l1 = measured[1.0][1] / base_small
    assert large_all_l1 == pytest.approx(4 / 3, rel=0.08)
    assert small_all_l1 == pytest.approx(1.0, rel=0.05)
