"""FIG3D — large random-access latency vs L1 fraction (Fig. 3d).

Paper §4.2: large (16 KiB) accesses slow by ``4/(4-L)`` — a 16 KiB logical
extent occupies 4/3 fPages once pages hold only 3 data oPages — while
"small, random accesses (i.e., 4 KiB pages) will likely have the same
latency". Measured through the queued IO pipeline: host data sits behind
a real FTL, large extents are ``read_range`` requests whose amortised
service time the :class:`repro.io.queue.DeviceQueue` completions report,
and 4 KiB accesses are single-LBA ``read`` requests. The analytic
``large_access_latency_factor`` overlay is kept alongside.
"""

import pytest

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.io import DeviceQueue, IORequest
from repro.models.performance import PerformanceModel
from repro.reporting.tables import format_table
from repro.rng import make_rng
from repro.ssd.ftl import FTLConfig, PageMappedFTL

L1_FRACTIONS = [0.0, 0.5, 1.0]
EXTENT_BYTES = 16 * 1024
SCAN_RANGE_LBAS = 32
SMALL_ACCESSES = 300


def build_device(l1_fraction: float) -> PageMappedFTL:
    """FTL over a chip whose pages are L1 at ``l1_fraction``, interleaved."""
    geometry = FlashGeometry(blocks=16, fpages_per_block=16)
    chip = FlashChip(geometry, seed=1, variation_sigma=0.0,
                     inject_errors=False)
    stride_hits = int(round(l1_fraction * 4))
    for fpage in range(geometry.total_fpages):
        if fpage % 4 < stride_hits:
            chip.set_level(fpage, 1)
    n_lbas = int(geometry.total_opage_slots * 0.4)
    config = FTLConfig(overprovision=0.25, buffer_opages=8)
    device = PageMappedFTL(chip, n_lbas, config)
    for lba in range(n_lbas):
        device.write(lba, b"x")
    device.flush()
    return device


def extent_latency_us(device: PageMappedFTL, queue: DeviceQueue) -> float:
    """Expected latency per 16 KiB extent, amortised over a full scan."""
    opage_bytes = device.geometry.opage_bytes
    data_bytes = 0
    service_us = 0.0
    for base in range(0, device.n_lbas, SCAN_RANGE_LBAS):
        count = min(SCAN_RANGE_LBAS, device.n_lbas - base)
        completion = queue.execute(
            IORequest(op="read_range", lba=base, count=count))
        data_bytes += len(completion.result) * opage_bytes
        service_us += completion.service_us
    assert queue.stats.errors == 0
    return service_us * EXTENT_BYTES / data_bytes


def small_latency_us(device: PageMappedFTL, queue: DeviceQueue,
                     accesses: int = SMALL_ACCESSES) -> float:
    """Expected latency of single 4 KiB oPage reads at random LBAs."""
    rng = make_rng(7)
    service_us = 0.0
    for _ in range(accesses):
        lba = int(rng.integers(0, device.n_lbas))
        completion = queue.execute(IORequest(op="read", lba=lba))
        service_us += completion.service_us
    assert queue.stats.errors == 0
    return service_us / accesses


@pytest.mark.benchmark(group="fig3d")
def test_fig3d_large_access_latency(benchmark, experiment_output):
    model = PerformanceModel()

    def sweep():
        out = {}
        for fraction in L1_FRACTIONS:
            device = build_device(fraction)
            queue = DeviceQueue(device)
            out[fraction] = (extent_latency_us(device, queue),
                             small_latency_us(device, queue))
        return out

    measured = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base_large, base_small = measured[0.0]
    rows = []
    for fraction in L1_FRACTIONS:
        mix = ({0: 1.0} if fraction == 0.0
               else {1: 1.0} if fraction == 1.0
               else {0: 1.0 - fraction, 1: fraction})
        analytic = model.large_access_latency_factor(mix)
        large, small = measured[fraction]
        rows.append([f"{fraction:.2f}", f"{analytic:.3f}",
                     f"{large / base_large:.3f}",
                     f"{small / base_small:.3f}"])
    experiment_output(
        "FIG3D — 16 KiB access latency vs L1 fraction "
        "(paper Fig. 3d; L1-only = 1.33x; 4 KiB unaffected; measured "
        "through the queued IO pipeline)",
        format_table(["L1 fraction", "analytic 16K factor",
                      "measured 16K factor", "measured 4K factor"], rows))

    large_all_l1 = measured[1.0][0] / base_large
    small_all_l1 = measured[1.0][1] / base_small
    assert large_all_l1 == pytest.approx(4 / 3, rel=0.08)
    assert small_all_l1 == pytest.approx(1.0, rel=0.05)
