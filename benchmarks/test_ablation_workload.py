"""ABL-WORKLOAD — access-pattern sensitivity of the lifetime gains.

Extension beyond the paper: does Salamander's advantage survive across
workload shapes? Write amplification differs hugely between uniform,
zipfian and sequential traffic, which changes how fast the same host
volume wears the flash — but the *relative* ordering of the disciplines
should be robust. Identical traces drive every device type.
"""

import pytest

import repro.errors as E
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.reporting.tables import format_table
from repro.salamander.device import SalamanderConfig, SalamanderSSD
from repro.ssd.device import BaselineSSD, SSDConfig
from repro.ssd.ftl import FTLConfig
from repro.workloads.generators import (
    SequentialGenerator,
    UniformGenerator,
    ZipfianGenerator,
)

GEOMETRY = FlashGeometry(blocks=32, fpages_per_block=8)
FTL = FTLConfig(overprovision=0.25, buffer_opages=8)


def build(kind: str):
    policy = TirednessPolicy(geometry=GEOMETRY)
    model = calibrate_power_law(policy, pec_limit_l0=30)
    chip = FlashChip(GEOMETRY, rber_model=model, policy=policy,
                     seed=1, variation_sigma=0.3)
    if kind == "baseline":
        return BaselineSSD(chip, SSDConfig(ftl=FTL))
    return SalamanderSSD(chip, SalamanderConfig(
        msize_lbas=32, mode=kind, headroom_fraction=0.25, ftl=FTL))


def make_generator(pattern: str, n_lbas: int, seed: int = 2):
    if pattern == "uniform":
        return UniformGenerator(n_lbas, seed=seed)
    if pattern == "zipfian":
        return ZipfianGenerator(n_lbas, theta=1.1, seed=seed)
    return SequentialGenerator(n_lbas)


def lifetime_under(pattern: str, kind: str,
                   max_writes: int = 400_000) -> tuple[int, float]:
    device = build(kind)
    if kind == "baseline":
        hot = int(device.n_lbas * 0.6)
        generator = make_generator(pattern, hot)
        writes = 0
        try:
            for op in generator.ops(max_writes):
                device.write(op.lba, op.payload or b"")
                writes += 1
        except E.ReproError:
            pass
        return writes, device.stats.write_amplification
    # Salamander: address the stream across active minidisks.
    writes = 0
    generator = make_generator(pattern, device.msize_lbas)
    try:
        stream = generator.ops(max_writes)
        for op in stream:
            active = device.active_minidisks()
            if len(active) <= 3:
                break
            mdisk = active[(op.lba + writes) % len(active)]
            hot = max(1, int(0.6 * mdisk.size_lbas))
            device.write(mdisk.mdisk_id, op.lba % hot, op.payload or b"")
            writes += 1
    except E.ReproError:
        pass
    return writes, device.stats.write_amplification


@pytest.mark.benchmark(group="abl-workload")
def test_workload_pattern_sensitivity(benchmark, experiment_output):
    patterns = ("uniform", "zipfian", "sequential")

    def sweep():
        out = {}
        for pattern in patterns:
            out[pattern] = {kind: lifetime_under(pattern, kind)
                            for kind in ("baseline", "shrink", "regen")}
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for pattern, per_kind in results.items():
        base_writes, base_waf = per_kind["baseline"]
        for kind, (writes, waf) in per_kind.items():
            rows.append([pattern, kind, writes, f"{waf:.2f}",
                         f"{writes / base_writes:.2f}x"])
    experiment_output(
        "ABL-WORKLOAD — lifetime across access patterns "
        "(ordering must be pattern-independent)",
        format_table(["pattern", "device", "host writes", "WAF",
                      "vs baseline"], rows))

    for pattern, per_kind in results.items():
        assert (per_kind["baseline"][0] < per_kind["shrink"][0]
                <= per_kind["regen"][0]), pattern
    # Sequential traffic has the lowest WAF on the baseline device.
    assert (results["sequential"]["baseline"][1]
            <= results["uniform"]["baseline"][1])
