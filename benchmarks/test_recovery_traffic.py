"""TAB-REC — recovery traffic (§4.3).

Paper: "the volume of recovery traffic using mDisks will be comparable to
the baseline, at least without regeneration, because the same total number
of LBAs fail over time"; regeneration adds re-failing capacity. Two views:

* **fleet** — capacity-loss series from the population model converted to
  diFS traffic; totals match for baseline vs ShrinkS, but Salamander's
  *peak* burst is minidisk-sized instead of device-sized;
* **functional diFS** — a real cluster over Salamander devices, counting
  actual re-replication bytes through the recovery manager.
"""

import numpy as np
import pytest

import repro.errors as E
from benchmarks.fleet_common import fleet_result
from repro.difs.cluster import Cluster, ClusterConfig
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.models.recovery import RecoveryModel, total_failed_capacity_fraction
from repro.reporting.tables import format_table
from repro.salamander.device import SalamanderConfig, SalamanderSSD
from repro.ssd.ftl import FTLConfig


def functional_recovery_bytes(mode: str, rounds: int = 5000) -> dict:
    geometry = FlashGeometry(blocks=32, fpages_per_block=8)
    policy = TirednessPolicy(geometry=geometry)
    model = calibrate_power_law(policy, pec_limit_l0=12)
    ftl = FTLConfig(overprovision=0.25, buffer_opages=8)
    cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4), seed=5)
    for n in range(4):
        cluster.add_node(f"n{n}")
        chip = FlashChip(geometry, rber_model=model, policy=policy,
                         seed=5 + n, variation_sigma=0.3)
        cluster.add_device(f"n{n}", SalamanderSSD(chip, SalamanderConfig(
            msize_lbas=32, mode=mode, headroom_fraction=0.25, ftl=ftl)))
    rng = np.random.default_rng(1)
    for i in range(40):
        cluster.create_chunk(f"c{i}", f"data-{i}".encode())
    for round_index in range(rounds):
        cluster.time = float(round_index)
        i = int(rng.integers(0, 40))
        try:
            cluster.delete_chunk(f"c{i}")
            cluster.create_chunk(f"c{i}", f"r{round_index}-{i}".encode())
        except E.ReproError:
            pass
        cluster.poll_failures()
        cluster.run_recovery()
    stats = cluster.recovery.stats
    return {
        "volume_failures": stats.volume_failures,
        "bytes_moved": stats.bytes_moved,
        "chunks_lost": stats.chunks_lost,
        "max_event_bytes": max((e.bytes_moved for e in stats.events),
                               default=0),
    }


@pytest.mark.benchmark(group="tab-rec")
def test_recovery_traffic(benchmark, experiment_output):
    functional = benchmark.pedantic(
        lambda: {mode: functional_recovery_bytes(mode)
                 for mode in ("shrink", "regen")},
        rounds=1, iterations=1)

    model = RecoveryModel(utilization=0.5)
    fleet_rows = []
    base_total = None
    for mode in ("baseline", "cvss", "shrink", "regen"):
        result = fleet_result(mode)
        total = model.traffic_series(result).sum()
        if base_total is None:
            base_total = total
        fleet_rows.append([
            mode,
            f"{total / result.initial_capacity_bytes:.2f}x",
            f"{total / base_total:.2f}x",
            f"{model.peak_step_traffic(result) / result.initial_capacity_bytes:.4f}x",
            f"{total_failed_capacity_fraction(regen_max_level=1 if mode == 'regen' else 0):.2f}",
        ])
    experiment_output(
        "TAB-REC (fleet) — recovery traffic per initial capacity byte "
        "(paper §4.3: ShrinkS comparable to baseline; minidisk peaks tiny)",
        format_table(["mode", "total/capacity", "vs baseline",
                      "peak step/capacity", "analytic bound"], fleet_rows))

    func_rows = [[mode, d["volume_failures"], d["bytes_moved"],
                  d["max_event_bytes"], d["chunks_lost"]]
                 for mode, d in functional.items()]
    experiment_output(
        "TAB-REC (functional diFS) — actual re-replication through the "
        "recovery manager",
        format_table(["mode", "volume failures", "bytes moved",
                      "max single event", "chunks lost"], func_rows))

    # §4.3 shape assertions.
    base = fleet_result("baseline")
    shrink = fleet_result("shrink")
    base_sum = model.traffic_series(base).sum()
    shrink_sum = model.traffic_series(shrink).sum()
    assert shrink_sum == pytest.approx(base_sum, rel=0.05)
    assert (model.peak_step_traffic(shrink)
            < 0.5 * model.peak_step_traffic(base))
    # Functional: no data loss, and regen sees more failures (its extra
    # regenerated minidisks die too).
    assert functional["shrink"]["chunks_lost"] == 0
    assert (functional["regen"]["volume_failures"]
            >= functional["shrink"]["volume_failures"])
