"""ABL-MSIZE — minidisk size ablation.

§3.2: "we currently assume mSize is small, e.g., 1MB" to match failure
granularity. The trade-off this ablation quantifies: smaller mDisks shed
capacity in finer slivers (less over-shedding per Eq. 2 trigger, smaller
recovery bursts, longer usable life) at the cost of more host events and
more failure domains for the diFS to track.
"""

import pytest

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.reporting.tables import format_table
from repro.salamander.device import SalamanderConfig, SalamanderSSD
from repro.sim.lifetime import run_write_lifetime
from repro.ssd.ftl import FTLConfig

MSIZES = [8, 16, 32, 64, 128]

GEOMETRY = FlashGeometry(blocks=32, fpages_per_block=8)


def run_msize(msize_lbas: int):
    policy = TirednessPolicy(geometry=GEOMETRY)
    model = calibrate_power_law(policy, pec_limit_l0=30)
    chip = FlashChip(GEOMETRY, rber_model=model, policy=policy,
                     seed=1, variation_sigma=0.3)
    device = SalamanderSSD(chip, SalamanderConfig(
        msize_lbas=msize_lbas, mode="shrink", headroom_fraction=0.25,
        ftl=FTLConfig(overprovision=0.25, buffer_opages=8)))
    result = run_write_lifetime(device, utilization=0.6,
                                capacity_floor_fraction=0.3, seed=0)
    return device, result


@pytest.mark.benchmark(group="abl-msize")
def test_ablation_minidisk_size(benchmark, experiment_output):
    runs = benchmark.pedantic(
        lambda: {msize: run_msize(msize) for msize in MSIZES},
        rounds=1, iterations=1)
    rows = []
    for msize, (device, result) in runs.items():
        decommissions = device.stats.decommissioned_minidisks
        rows.append([
            f"{msize * 4} KiB",
            len(device.minidisks),
            result.host_writes,
            decommissions,
            f"{msize * 4096} B",
            result.death_cause,
        ])
    experiment_output(
        "ABL-MSIZE — minidisk size vs lifetime and recovery granularity "
        "(smaller mDisks = finer failures, more events)",
        format_table(["mSize", "minidisks", "host writes", "decommissions",
                      "bytes/recovery event", "end"], rows))

    # Finer minidisks never hurt lifetime and produce more, smaller events.
    writes = {msize: result.host_writes
              for msize, (_, result) in runs.items()}
    assert writes[8] >= writes[128]
    events = {msize: device.stats.decommissioned_minidisks
              for msize, (device, _) in runs.items()}
    assert events[8] > events[64]
