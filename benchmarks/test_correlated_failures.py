"""EXT-CORR — correlated minidisk failures (§3.2's open design question).

"An open design question for future work is how to navigate the trade-off
between flexibility in mapping mDisks onto fPages and the potential for
correlated failures in mDisks." Because minidisks are logical and share one
physical pool, a burst of page wear can decommission several minidisks in
quick succession — and if a chunk's units sit on minidisks that die in the
same burst, redundancy is defeated.

Measured here: (a) the distribution of decommission-burst sizes on a worn
RegenS device, and (b) whether wear-aware placement (prefer L0, drain tiers
in order) reduces the recovery pressure a cluster sees versus random
placement under identical churn.
"""

import numpy as np
import pytest

import repro.errors as E
from repro.difs.cluster import Cluster, ClusterConfig
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.reporting.tables import format_table
from repro.salamander.device import SalamanderConfig, SalamanderSSD
from repro.salamander.events import MinidiskDecommissioned
from repro.ssd.ftl import FTLConfig

GEOMETRY = FlashGeometry(blocks=32, fpages_per_block=8)
FTL = FTLConfig(overprovision=0.25, buffer_opages=8)


BURST_WINDOW_WRITES = 50  # a diFS re-replication window, in host writes


def burst_sizes(variation_sigma: float, seed: int = 1) -> list[int]:
    """Decommission-burst sizes: events closer together than a recovery
    window. Failures inside one window defeat re-replication — that is the
    §3.2 correlation risk. The page-to-page variation is the knob: with
    identical pages (sigma 0) whole cohorts die together; real 3D-NAND
    variation spreads the deaths out."""
    policy = TirednessPolicy(geometry=GEOMETRY)
    model = calibrate_power_law(policy, pec_limit_l0=20)
    chip = FlashChip(GEOMETRY, rber_model=model, policy=policy,
                     seed=seed, variation_sigma=variation_sigma)
    device = SalamanderSSD(chip, SalamanderConfig(
        msize_lbas=32, mode="regen", headroom_fraction=0.25, ftl=FTL))
    arrivals: list[int] = []
    writes = 0
    device.add_listener(lambda event: arrivals.append(writes)
                        if isinstance(event, MinidiskDecommissioned)
                        else None)
    rng = np.random.default_rng(seed)
    try:
        while writes < 200_000:
            active = device.active_minidisks()
            if len(active) <= 2:
                break
            mdisk = active[int(rng.integers(0, len(active)))]
            device.write(mdisk.mdisk_id,
                         int(rng.integers(0, max(1, mdisk.size_lbas // 2))),
                         b"x")
            writes += 1
    except E.ReproError:
        pass
    bursts = []
    for arrival in arrivals:
        if bursts and arrival - bursts[-1][1] <= BURST_WINDOW_WRITES:
            bursts[-1] = (bursts[-1][0] + 1, arrival)
        else:
            bursts.append((1, arrival))
    return [size for size, _last in bursts]


def cluster_churn(placement: str, seed: int = 5) -> dict:
    policy = TirednessPolicy(geometry=GEOMETRY)
    model = calibrate_power_law(policy, pec_limit_l0=12)
    cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4,
                                    placement=placement), seed=seed)
    for n in range(4):
        cluster.add_node(f"n{n}")
        chip = FlashChip(GEOMETRY, rber_model=model, policy=policy,
                         seed=seed + n, variation_sigma=0.3)
        cluster.add_device(f"n{n}", SalamanderSSD(chip, SalamanderConfig(
            msize_lbas=32, mode="regen", headroom_fraction=0.25,
            grace_decommissions=2, ftl=FTL)))
    rng = np.random.default_rng(1)
    for i in range(30):
        cluster.create_chunk(f"c{i}", f"data-{i}".encode())
    rounds = 0
    while cluster.recovery.stats.volume_failures < 30 and rounds < 12_000:
        rounds += 1
        i = int(rng.integers(0, 30))
        try:
            cluster.delete_chunk(f"c{i}")
            cluster.create_chunk(f"c{i}", f"r{rounds}-{i}".encode())
        except E.ReproError:
            pass
        cluster.poll_failures()
        cluster.run_recovery()
    stats = cluster.recovery.stats
    readable = 0
    for i in range(30):
        try:
            cluster.read_chunk(f"c{i}")
            readable += 1
        except E.ReproError:
            pass
    return {"chunks_lost": stats.chunks_lost,
            "bytes_moved": stats.bytes_moved,
            "readable": readable,
            "failures": stats.volume_failures}


@pytest.mark.benchmark(group="ext-corr")
def test_correlated_minidisk_failures(benchmark, experiment_output):
    sigmas = (0.0, 0.15, 0.3)

    def run_all():
        sizes = {sigma: burst_sizes(sigma) for sigma in sigmas}
        placements = {p: cluster_churn(p)
                      for p in ("random", "wear-aware")}
        return sizes, placements

    sizes, placements = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for sigma, bursts in sizes.items():
        rows.append([f"{sigma:.2f}", len(bursts),
                     max(bursts) if bursts else 0,
                     sum(1 for b in bursts if b >= 2)])
    experiment_output(
        f"EXT-CORR (bursts) — decommission bursts within one "
        f"{BURST_WINDOW_WRITES}-write recovery window vs page variation "
        f"(§3.2: process variation is what de-correlates mDisk failures)",
        format_table(["variation sigma", "bursts", "largest burst",
                      "multi-mdisk bursts"], rows))
    rows = [[p, d["failures"], d["bytes_moved"], d["chunks_lost"],
             f"{d['readable']}/30"] for p, d in placements.items()]
    experiment_output(
        "EXT-CORR (placement) — random vs wear-aware placement under "
        "identical churn",
        format_table(["placement", "mdisk failures", "recovery bytes",
                      "chunks lost", "readable"], rows))

    # With identical pages whole cohorts die together (worst correlation);
    # realistic variation spreads failures into singleton events.
    assert max(sizes[0.0]) >= 2
    assert max(sizes[0.0]) > max(sizes[0.3])
    # Wear-aware placement must not be worse on durability.
    assert (placements["wear-aware"]["chunks_lost"]
            <= placements["random"]["chunks_lost"])
    assert placements["wear-aware"]["readable"] >= \
        placements["random"]["readable"]
