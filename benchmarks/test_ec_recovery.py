"""EXT-EC — erasure coding vs replication over minidisk failures.

Extension beyond the paper. The paper argues minidisk-granular failures let
"existing, end-to-end redundancy mechanisms" absorb wear; in production
that mechanism is often erasure coding, whose *repair amplification* (k
reads per lost fragment) interacts with Salamander's many-small-failures
model: RS moves more recovery bytes per failure but stores far less, and
minidisk-sized failure domains keep each repair burst small either way.

The bench runs identical wear churn over the same devices under 2-way
replication and RS(3, 2) and compares storage overhead, recovery traffic
and durability.
"""

import numpy as np
import pytest

import repro.errors as E
from repro.difs.cluster import Cluster, ClusterConfig
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.reporting.tables import format_table
from repro.salamander.device import SalamanderConfig, SalamanderSSD
from repro.ssd.ftl import FTLConfig


def run_scheme(config: ClusterConfig, rounds: int = 9000,
               failure_stop: int = 40, seed: int = 5) -> dict:
    geometry = FlashGeometry(blocks=32, fpages_per_block=8)
    policy = TirednessPolicy(geometry=geometry)
    model = calibrate_power_law(policy, pec_limit_l0=15)
    ftl = FTLConfig(overprovision=0.25, buffer_opages=8)
    cluster = Cluster(config, seed=seed)
    for n in range(6):
        cluster.add_node(f"n{n}")
        chip = FlashChip(geometry, rber_model=model, policy=policy,
                         seed=seed + n, variation_sigma=0.3)
        cluster.add_device(f"n{n}", SalamanderSSD(chip, SalamanderConfig(
            msize_lbas=32, mode="regen", headroom_fraction=0.25,
            grace_decommissions=2, ftl=ftl)))
    rng = np.random.default_rng(1)
    chunks = 30
    for i in range(chunks):
        cluster.create_chunk(f"c{i}", f"data-{i}".encode())
    for round_index in range(rounds):
        if cluster.recovery.stats.volume_failures >= failure_stop:
            break  # degraded but alive: the comparison point we want
        cluster.time = float(round_index)
        i = int(rng.integers(0, chunks))
        try:
            cluster.delete_chunk(f"c{i}")
            cluster.create_chunk(f"c{i}", f"r{round_index}-{i}".encode())
        except E.ReproError:
            pass
        cluster.poll_failures()
        cluster.run_recovery()
    stats = cluster.recovery.stats
    readable = 0
    for i in range(chunks):
        try:
            cluster.read_chunk(f"c{i}")
            readable += 1
        except E.ReproError:
            pass
    return {
        "overhead": cluster.scheme.storage_overhead,
        "volume_failures": stats.volume_failures,
        "bytes_read": stats.bytes_read,
        "bytes_written": stats.bytes_written,
        "chunks_lost": stats.chunks_lost,
        "readable": readable,
        "chunks": chunks,
    }


@pytest.mark.benchmark(group="ext-ec")
def test_erasure_vs_replication_recovery(benchmark, experiment_output):
    configs = {
        "replication x2": ClusterConfig(replication=2, chunk_lbas=6),
        "replication x3": ClusterConfig(replication=3, chunk_lbas=6),
        "RS(3,2)": ClusterConfig(redundancy="rs", rs_k=3, rs_m=2,
                                 chunk_lbas=6),
    }
    runs = benchmark.pedantic(
        lambda: {name: run_scheme(config)
                 for name, config in configs.items()},
        rounds=1, iterations=1)
    rows = []
    for name, d in runs.items():
        per_failure = (d["bytes_read"] + d["bytes_written"]) / max(
            1, d["volume_failures"])
        rows.append([
            name,
            f"{d['overhead']:.2f}x",
            d["volume_failures"],
            d["bytes_read"],
            d["bytes_written"],
            f"{per_failure:.0f}",
            f"{d['readable']}/{d['chunks']}",
        ])
    experiment_output(
        "EXT-EC — redundancy schemes over minidisk failures "
        "(RS stores less, repairs cost k reads each)",
        format_table(["scheme", "storage overhead", "mdisk failures",
                      "recovery reads (B)", "recovery writes (B)",
                      "bytes/failure", "readable chunks"], rows))

    rep2, rep3, rs = (runs["replication x2"], runs["replication x3"],
                      runs["RS(3,2)"])
    # EC's defining trades: less storage than 2x/3x replication...
    assert rs["overhead"] < rep2["overhead"] < rep3["overhead"]
    # ...but higher read amplification per repair event.
    rs_read_per_failure = rs["bytes_read"] / max(1, rs["volume_failures"])
    rep_read_per_failure = rep2["bytes_read"] / max(
        1, rep2["volume_failures"])
    assert rs_read_per_failure > rep_read_per_failure
    # Both keep the namespace readable through graceful minidisk wear.
    assert rs["readable"] == rs["chunks"]
    assert rep2["readable"] == rep2["chunks"]
