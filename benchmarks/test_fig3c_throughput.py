"""FIG3C — sequential throughput vs L1 page fraction (Fig. 3c).

Paper §4.2: "sequential access throughput ... degrades by a factor of
4/(4-L) for a given L, e.g., 25 % reduction for L1". The bench produces the
curve two ways: the analytic mix model, and a *measured* run on the
functional flash chip (program a population with the given L1 fraction,
sequentially read every data oPage, divide bytes by accumulated expected
device time). Shape check: measured tracks analytic within a few percent.
"""

import pytest

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.models.performance import PerformanceModel
from repro.reporting.tables import format_table

L1_FRACTIONS = [0.0, 0.25, 0.5, 0.75, 1.0]


def measured_throughput(l1_fraction: float) -> float:
    """Bytes per expected-microsecond for a sequential scan (relative)."""
    geometry = FlashGeometry(blocks=8, fpages_per_block=16)
    chip = FlashChip(geometry, seed=1, variation_sigma=0.0,
                     inject_errors=False)
    total = geometry.total_fpages
    l1_pages = int(round(l1_fraction * total))
    for fpage in range(l1_pages):
        chip.set_level(fpage, 1)
    data_bytes = 0
    for fpage in range(total):
        capacity = chip.policy.data_opages(chip.level(fpage))
        chip.program(fpage, [b"x"] * capacity)
    busy_program = chip.stats.busy_us
    for fpage in range(total):
        payloads, _latency = chip.read_fpage(fpage)
        data_bytes += len(payloads) * geometry.opage_bytes
    read_time = chip.stats.busy_us - busy_program
    return data_bytes / read_time


@pytest.mark.benchmark(group="fig3c")
def test_fig3c_sequential_throughput(benchmark, experiment_output):
    model = PerformanceModel()

    def full_sweep():
        return {f: measured_throughput(f) for f in L1_FRACTIONS}

    measured = benchmark.pedantic(full_sweep, rounds=1, iterations=1)
    base = measured[0.0]
    rows = []
    analytic_points = {}
    for fraction in L1_FRACTIONS:
        mix = ({0: 1.0} if fraction == 0.0
               else {1: 1.0} if fraction == 1.0
               else {0: 1.0 - fraction, 1: fraction})
        analytic = model.sequential_throughput_factor(mix)
        analytic_points[fraction] = analytic
        rows.append([
            f"{fraction:.2f}", f"{analytic:.3f}",
            f"{measured[fraction] / base:.3f}",
            f"{model.sequential_throughput_mbps(mix, channels=8):.0f}",
        ])
    experiment_output(
        "FIG3C — sequential throughput vs fraction of L1 pages "
        "(paper Fig. 3c; L1-only = 0.75x; absolute column: 8 channels)",
        format_table(["L1 fraction", "analytic factor", "measured factor",
                      "8-ch device MB/s"], rows))
    # Anchors: all-L1 loses 25 %, and measurement tracks the model.
    assert analytic_points[1.0] == pytest.approx(0.75)
    for fraction in L1_FRACTIONS:
        assert measured[fraction] / base == pytest.approx(
            analytic_points[fraction], rel=0.08)
