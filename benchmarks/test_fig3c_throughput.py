"""FIG3C — sequential throughput vs L1 page fraction (Fig. 3c).

Paper §4.2: "sequential access throughput ... degrades by a factor of
4/(4-L) for a given L, e.g., 25 % reduction for L1". The bench produces
the curve two ways: the analytic mix model, and a *measured* run through
the full IO pipeline — host data written through a real FTL over a
population with the given L1 fraction, then sequentially scanned with
``read_range`` requests through a :class:`repro.io.queue.DeviceQueue`;
throughput is data bytes divided by the measured service time the
completions report. Shape check: measured tracks analytic within a few
percent, i.e. the pipeline reproduces the ``4/(4-L)`` degradation
end-to-end rather than only at the chip.
"""

import pytest

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.io import DeviceQueue, IORequest
from repro.models.performance import PerformanceModel
from repro.reporting.tables import format_table
from repro.ssd.ftl import FTLConfig, PageMappedFTL

L1_FRACTIONS = [0.0, 0.25, 0.5, 0.75, 1.0]
SCAN_RANGE_LBAS = 32


def build_device(l1_fraction: float) -> PageMappedFTL:
    """FTL over a chip whose pages are L1 at ``l1_fraction``, interleaved.

    The L1 pages are strided (every fourth page for 0.25, etc.) so any
    subset the FTL happens to fill carries a representative mix.
    """
    geometry = FlashGeometry(blocks=16, fpages_per_block=16)
    chip = FlashChip(geometry, seed=1, variation_sigma=0.0,
                     inject_errors=False)
    stride_hits = int(round(l1_fraction * 4))
    for fpage in range(geometry.total_fpages):
        if fpage % 4 < stride_hits:
            chip.set_level(fpage, 1)
    # 40 % of the geometric slots: leaves headroom even when every page
    # runs at L1 (25 % capacity loss) plus the GC reserve blocks.
    n_lbas = int(geometry.total_opage_slots * 0.4)
    config = FTLConfig(overprovision=0.25, buffer_opages=8)
    device = PageMappedFTL(chip, n_lbas, config)
    for lba in range(n_lbas):
        device.write(lba, b"x")
    device.flush()
    return device


def measured_throughput(l1_fraction: float) -> float:
    """Bytes per measured service-microsecond of a queued sequential scan."""
    device = build_device(l1_fraction)
    queue = DeviceQueue(device)
    opage_bytes = device.geometry.opage_bytes
    data_bytes = 0
    service_us = 0.0
    for base in range(0, device.n_lbas, SCAN_RANGE_LBAS):
        count = min(SCAN_RANGE_LBAS, device.n_lbas - base)
        completion = queue.execute(
            IORequest(op="read_range", lba=base, count=count))
        data_bytes += len(completion.result) * opage_bytes
        service_us += completion.service_us
    assert queue.stats.errors == 0
    return data_bytes / service_us


@pytest.mark.benchmark(group="fig3c")
def test_fig3c_sequential_throughput(benchmark, experiment_output):
    model = PerformanceModel()

    def full_sweep():
        return {f: measured_throughput(f) for f in L1_FRACTIONS}

    measured = benchmark.pedantic(full_sweep, rounds=1, iterations=1)
    base = measured[0.0]
    rows = []
    analytic_points = {}
    for fraction in L1_FRACTIONS:
        mix = ({0: 1.0} if fraction == 0.0
               else {1: 1.0} if fraction == 1.0
               else {0: 1.0 - fraction, 1: fraction})
        analytic = model.sequential_throughput_factor(mix)
        analytic_points[fraction] = analytic
        rows.append([
            f"{fraction:.2f}", f"{analytic:.3f}",
            f"{measured[fraction] / base:.3f}",
            f"{model.sequential_throughput_mbps(mix, channels=8):.0f}",
        ])
    experiment_output(
        "FIG3C — sequential throughput vs fraction of L1 pages "
        "(paper Fig. 3c; L1-only = 0.75x; measured through the queued "
        "IO pipeline; absolute column: 8 channels)",
        format_table(["L1 fraction", "analytic factor", "measured factor",
                      "8-ch device MB/s"], rows))
    # Anchors: all-L1 loses 25 %, and the pipeline measurement tracks
    # the analytic 4/(4-L) model.
    assert analytic_points[1.0] == pytest.approx(0.75)
    for fraction in L1_FRACTIONS:
        assert measured[fraction] / base == pytest.approx(
            analytic_points[fraction], rel=0.08)
