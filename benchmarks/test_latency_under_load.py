"""EXT-LOAD — 4 KiB read latency vs request rate over a device's life.

Extension beyond the paper, addressing §4.2's audience directly: the users
who "are latency critical and would prefer to lose storage rather than
slow it down" care about latency *under load*. This bench combines the
wear-aware service-time model (retries grow as pages approach their ECC)
with the M/D/c queueing model: as a fixed-code-rate device ages, its
saturation point slides left and tail latency at a fixed load grows; a
RegenS device re-margins its pages at L1 and keeps the knee put.

A second, *measured* leg validates the analytic curve against the queued
IO pipeline: open-loop Poisson reads drive a real FTL device through a
:class:`repro.io.queue.DeviceQueue` at several utilisations and the
measured mean latency must track ``mdc_latency_us`` — the same
measurement ``repro report``'s queueing-latency claim re-runs.
"""

import math

import pytest

from repro.models.performance import PerformanceModel
from repro.models.queueing import mdc_latency_us, saturation_iops
from repro.reporting.tables import format_table

CHANNELS = 8
LIFE_POINTS = {  # label -> page RBER as a fraction of the L0 capability
    "fresh": 0.0,
    "mid-life": 0.7,
    "past-L0-budget": 1.05,
}
LOADS_KIOPS = (20, 60, 100)


def compute_load_matrix():
    model = PerformanceModel()
    r0 = model.policy.max_rber(0)
    rows = []
    for label, fraction in LIFE_POINTS.items():
        rber = r0 * fraction
        # Fixed code rate: the page stays at L0 until firmware retires it.
        service_l0 = model.small_read_latency_us(0, rber=rber)
        # RegenS: a page whose RBER exceeded the L0 capability runs at L1,
        # where the same RBER sits far below the stronger ECC's threshold.
        level = 1 if fraction > 1.0 else 0
        service_regen = model.small_read_latency_us(level, rber=rber)
        for kiops in LOADS_KIOPS:
            iops = kiops * 1000
            rows.append({
                "life": label,
                "kiops": kiops,
                "l0_latency": mdc_latency_us(service_l0, iops, CHANNELS),
                "regen_latency": mdc_latency_us(service_regen, iops,
                                                CHANNELS),
            })
        rows.append({
            "life": label,
            "kiops": "saturation",
            "l0_latency": saturation_iops(service_l0, CHANNELS) / 1000,
            "regen_latency": saturation_iops(service_regen,
                                             CHANNELS) / 1000,
        })
    return rows


def _fmt(value):
    if value == math.inf:
        return "saturated"
    return f"{value:.1f}"


@pytest.mark.benchmark(group="ext-load")
def test_latency_under_load(benchmark, experiment_output):
    rows = benchmark(compute_load_matrix)
    table = [[r["life"], r["kiops"], _fmt(r["l0_latency"]),
              _fmt(r["regen_latency"])] for r in rows]
    experiment_output(
        "EXT-LOAD — 4 KiB read latency (us) vs load over device life "
        f"({CHANNELS} channels; 'saturation' rows are kIOPS capacity)",
        format_table(["life consumed", "load (kIOPS)",
                      "fixed code rate", "RegenS"], table))

    by_key = {(r["life"], r["kiops"]): r for r in rows}
    # Near EOL at high load, the fixed-code-rate device has saturated
    # while RegenS (re-margined at L1) still serves.
    assert by_key[("past-L0-budget", 100)]["l0_latency"] == math.inf
    assert by_key[("past-L0-budget", 100)]["regen_latency"] < 1000
    # Fresh devices are identical — RegenS costs nothing up front.
    assert by_key[("fresh", 60)]["regen_latency"] == pytest.approx(
        by_key[("fresh", 60)]["l0_latency"])
    # Saturation capacity decays with wear for the fixed code rate.
    assert (by_key[("past-L0-budget", "saturation")]["l0_latency"]
            < by_key[("fresh", "saturation")]["l0_latency"])


UTILISATIONS = (0.3, 0.5, 0.7)


@pytest.mark.benchmark(group="ext-load")
def test_latency_under_load_measured(benchmark, experiment_output):
    """Open-loop Poisson reads through the queue track the M/D/c model."""
    from repro.reporting.claims import measured_queueing_latency

    def sweep():
        return [measured_queueing_latency(rho, n_requests=800)
                for rho in UTILISATIONS]

    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[f"{run['utilisation']:.1f}",
             f"{run['iops'] / 1000:.1f}",
             f"{run['measured_mean_latency_us']:.1f}",
             f"{run['analytic_mean_latency_us']:.1f}",
             f"{run['measured_mean_wait_us']:.1f}"]
            for run in runs]
    experiment_output(
        "EXT-LOAD — measured open-loop latency through the queued IO "
        "pipeline vs the analytic M/D/c model (1 channel; fresh device)",
        format_table(["utilisation", "load (kIOPS)", "measured mean (us)",
                      "analytic mean (us)", "measured wait (us)"], rows))
    for run in runs:
        assert run["measured_mean_latency_us"] == pytest.approx(
            run["analytic_mean_latency_us"], rel=0.15)
    # Queueing delay grows with utilisation.
    waits = [run["measured_mean_wait_us"] for run in runs]
    assert waits == sorted(waits)
    assert waits[-1] > 0.0
