"""Request-tracing overhead: off must cost ~nothing, 1-in-64 ≤ ~5%.

The reqtrace contract (docs/OBSERVABILITY.md) has two sides:

* **Disabled** — every layer binds ``reqtrace.tracer()`` once at
  construction; with nothing installed the hot path is one ``is None``
  test per submit/dispatch. The queue-roundtrip loop here must match
  the committed ``io_roundtrip_micro`` floor untouched.
* **Sampled** — with a tracer installed at the default 1-in-64 period,
  63 of 64 requests still take the ``trace is None`` fast path; only
  the sampled request pays for context activation, busy-ledger reads
  and record assembly. That amortised cost is the ≤5% target the
  ``io_roundtrip_reqtrace_micro`` perf floor enforces in CI.

These benches measure both sides on one fixture so the pytest-benchmark
table shows the delta directly; the hard gate lives in
``benchmarks/perf/`` (floors under ``REPRO_PERF_ENFORCE=1``).
"""

from __future__ import annotations

import pytest

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.io import DeviceQueue, IORequest
from repro.obs import reqtrace
from repro.ssd.ftl import FTLConfig, PageMappedFTL

READS = 2_000


def _build_queue() -> tuple[DeviceQueue, int]:
    """A half-filled small device behind a queue (reads hit flash)."""
    geometry = FlashGeometry(blocks=32, fpages_per_block=32, channels=2)
    chip = FlashChip(geometry, seed=23, variation_sigma=0.2)
    ftl = PageMappedFTL.for_chip(
        chip, FTLConfig(overprovision=0.25, buffer_opages=16))
    payload = bytes(32)
    fill = ftl.n_lbas // 2
    for lba in range(fill):
        ftl.write(lba, payload)
    ftl.flush()
    return DeviceQueue(ftl), fill


def _read_loop(queue: DeviceQueue, fill: int) -> int:
    for i in range(READS):
        queue.execute(IORequest(op="read", lba=i % fill))
    return queue.stats.dispatched


@pytest.mark.no_obs
def test_io_roundtrip_tracing_disabled(benchmark):
    assert reqtrace.tracer() is None
    queue, fill = _build_queue()
    assert queue._reqtrace is None  # bound off: pure is-None hot path
    dispatched = benchmark(_read_loop, queue, fill)
    assert dispatched >= READS


@pytest.mark.no_obs
def test_io_roundtrip_tracing_sampled_1_in_64(benchmark):
    with reqtrace.installed(reqtrace.ReqTracer(seed=3, every=64)) \
            as tracer:
        queue, fill = _build_queue()
        assert queue._reqtrace is tracer
        dispatched = benchmark(_read_loop, queue, fill)
    assert dispatched >= READS
    assert tracer.sampled >= READS // 64
    for record in tracer.records:
        assert abs(sum(record["segments"].values())
                   - record["total_us"]) <= 1e-6 * max(
                       1.0, record["total_us"])


@pytest.mark.no_obs
def test_io_roundtrip_tracing_every_request(benchmark):
    """The worst case (every=1): still functional, bounded overhead —
    the knob an operator reaches for when debugging one bad device."""
    with reqtrace.installed(reqtrace.ReqTracer(seed=3, every=1)) \
            as tracer:
        queue, fill = _build_queue()
        dispatched = benchmark(_read_loop, queue, fill)
    assert dispatched >= READS
    assert tracer.sampled >= READS
