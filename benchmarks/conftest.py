"""Benchmark harness plumbing.

Every bench regenerates one of the paper's tables/figures and registers the
rendered table here; ``pytest_terminal_summary`` prints them after the
pytest-benchmark timing table, so ``pytest benchmarks/ --benchmark-only``
emits both the performance numbers and the paper-shaped output. Each
registered output is also written to ``benchmarks/results/<slug>.txt`` so
runs leave diffable artifacts behind.

An autouse fixture additionally enables ``repro.obs`` metrics around each
bench and snapshots the registry into ``benchmarks/results/metrics/`` —
one ``repro.obs.metrics/v1`` JSON per bench. Benches that measure the
*disabled* instrumentation cost opt out with ``@pytest.mark.no_obs``.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro import obs

_REGISTERED: list[tuple[str, str]] = []
_RESULTS_DIR = Path(__file__).parent / "results"
_METRICS_DIR = _RESULTS_DIR / "metrics"


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_obs: run this bench without the autouse metrics registry "
        "(used by instrumentation-overhead measurements)")


@pytest.fixture(autouse=True)
def _obs_snapshot(request):
    """Per-bench metrics registry, snapshotted to results/metrics/."""
    if request.node.get_closest_marker("no_obs") is not None:
        yield None
        return
    with obs.enabled() as (registry, _tracer):
        yield registry
        document = registry.to_dict()
        if document["metrics"]:
            _METRICS_DIR.mkdir(parents=True, exist_ok=True)
            slug = re.sub(r"[^a-z0-9]+", "-",
                          request.node.name.lower()).strip("-")
            registry.write_json(_METRICS_DIR / f"{slug}.json")


def _slug(title: str) -> str:
    head = title.split("—")[0].split("(")[0].strip()
    return re.sub(r"[^a-z0-9]+", "-", head.lower()).strip("-") or "output"


_WRITTEN_THIS_RUN: set[str] = set()


def register_output(title: str, text: str) -> None:
    """Queue a rendered experiment table for the end-of-run summary and
    persist it under ``benchmarks/results/`` (fresh per run)."""
    _REGISTERED.append((title, text))
    _RESULTS_DIR.mkdir(exist_ok=True)
    slug = _slug(title)
    path = _RESULTS_DIR / f"{slug}.txt"
    block = f"### {title}\n{text}\n\n"
    if slug in _WRITTEN_THIS_RUN:
        path.write_text(path.read_text() + block)
    else:
        path.write_text(block)
        _WRITTEN_THIS_RUN.add(slug)


@pytest.fixture
def experiment_output():
    """Fixture benches use to publish their paper-shaped output."""
    return register_output


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REGISTERED:
        return
    terminalreporter.section("paper experiment output")
    for title, text in _REGISTERED:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"### {title}")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    _REGISTERED.clear()
