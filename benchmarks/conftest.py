"""Benchmark harness plumbing.

Every bench regenerates one of the paper's tables/figures and registers the
rendered table here; ``pytest_terminal_summary`` prints them after the
pytest-benchmark timing table, so ``pytest benchmarks/ --benchmark-only``
emits both the performance numbers and the paper-shaped output. Each
registered output is also written to ``benchmarks/results/<slug>.txt`` so
runs leave diffable artifacts behind.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

_REGISTERED: list[tuple[str, str]] = []
_RESULTS_DIR = Path(__file__).parent / "results"


def _slug(title: str) -> str:
    head = title.split("—")[0].split("(")[0].strip()
    return re.sub(r"[^a-z0-9]+", "-", head.lower()).strip("-") or "output"


_WRITTEN_THIS_RUN: set[str] = set()


def register_output(title: str, text: str) -> None:
    """Queue a rendered experiment table for the end-of-run summary and
    persist it under ``benchmarks/results/`` (fresh per run)."""
    _REGISTERED.append((title, text))
    _RESULTS_DIR.mkdir(exist_ok=True)
    slug = _slug(title)
    path = _RESULTS_DIR / f"{slug}.txt"
    block = f"### {title}\n{text}\n\n"
    if slug in _WRITTEN_THIS_RUN:
        path.write_text(path.read_text() + block)
    else:
        path.write_text(block)
        _WRITTEN_THIS_RUN.add(slug)


@pytest.fixture
def experiment_output():
    """Fixture benches use to publish their paper-shaped output."""
    return register_output


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REGISTERED:
        return
    terminalreporter.section("paper experiment output")
    for title, text in _REGISTERED:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"### {title}")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    _REGISTERED.clear()
