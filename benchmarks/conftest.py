"""Benchmark harness plumbing.

Every bench regenerates one of the paper's tables/figures and registers the
rendered table here; ``pytest_terminal_summary`` prints them after the
pytest-benchmark timing table, so ``pytest benchmarks/ --benchmark-only``
emits both the performance numbers and the paper-shaped output. Each
registered output is also written to ``benchmarks/results/<slug>.txt`` so
runs leave diffable artifacts behind.

An autouse fixture additionally enables ``repro.obs`` metrics *and* a
timeseries sampler around each bench, snapshotting the registry into
``benchmarks/results/metrics/`` (one ``repro.obs.metrics/v1`` JSON per
bench) and any recorded trajectories into
``benchmarks/results/timeseries/<slug>.jsonl``
(``repro.obs.timeseries/v1``). Per-bench telemetry *totals* are also
appended to ``benchmarks/results/BENCH_timeseries.json`` — a capped
per-bench history of (series, samples, points) across runs, so a bench
that silently stops producing telemetry shows up as a trajectory dip.
Benches that measure the *disabled* instrumentation cost opt out with
``@pytest.mark.no_obs``.
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path

import pytest

from repro import obs

_REGISTERED: list[tuple[str, str]] = []
_RESULTS_DIR = Path(__file__).parent / "results"
_METRICS_DIR = _RESULTS_DIR / "metrics"
_TIMESERIES_DIR = _RESULTS_DIR / "timeseries"
_BENCH_TIMESERIES = _RESULTS_DIR / "BENCH_timeseries.json"
#: Runs of history kept per bench in BENCH_timeseries.json.
_HISTORY_CAP = 20


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_obs: run this bench without the autouse metrics registry "
        "(used by instrumentation-overhead measurements)")


def _append_bench_timeseries(slug: str, sampler) -> None:
    """Append one bench's telemetry totals to the aggregate trajectory."""
    try:
        history = json.loads(_BENCH_TIMESERIES.read_text())
    except (OSError, json.JSONDecodeError):
        history = {}
    if not isinstance(history, dict):
        history = {}
    points = sum(len(series["t"])
                 for series in sampler.to_dict()["series"])
    runs = history.setdefault(slug, [])
    runs.append({
        "at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "series": len(sampler),
        "samples_taken": sampler.samples_taken,
        "points": points,
    })
    del runs[:-_HISTORY_CAP]
    _RESULTS_DIR.mkdir(exist_ok=True)
    _BENCH_TIMESERIES.write_text(
        json.dumps(history, indent=2, sort_keys=True) + "\n")


@pytest.fixture(autouse=True)
def _obs_snapshot(request):
    """Per-bench metrics + timeseries, snapshotted under results/."""
    if request.node.get_closest_marker("no_obs") is not None:
        yield None
        return
    sampler = obs.TimeseriesSampler(cadence=0.0)
    with obs.enabled(timeseries_sampler=sampler) as (registry, _tracer):
        yield registry
        document = registry.to_dict()
        slug = re.sub(r"[^a-z0-9]+", "-",
                      request.node.name.lower()).strip("-")
        if document["metrics"]:
            _METRICS_DIR.mkdir(parents=True, exist_ok=True)
            registry.write_json(_METRICS_DIR / f"{slug}.json")
        if len(sampler):
            _TIMESERIES_DIR.mkdir(parents=True, exist_ok=True)
            sampler.export_jsonl(_TIMESERIES_DIR / f"{slug}.jsonl")
            _append_bench_timeseries(slug, sampler)


def _slug(title: str) -> str:
    head = title.split("—")[0].split("(")[0].strip()
    return re.sub(r"[^a-z0-9]+", "-", head.lower()).strip("-") or "output"


_WRITTEN_THIS_RUN: set[str] = set()


def register_output(title: str, text: str) -> None:
    """Queue a rendered experiment table for the end-of-run summary and
    persist it under ``benchmarks/results/`` (fresh per run)."""
    _REGISTERED.append((title, text))
    _RESULTS_DIR.mkdir(exist_ok=True)
    slug = _slug(title)
    path = _RESULTS_DIR / f"{slug}.txt"
    block = f"### {title}\n{text}\n\n"
    if slug in _WRITTEN_THIS_RUN:
        path.write_text(path.read_text() + block)
    else:
        path.write_text(block)
        _WRITTEN_THIS_RUN.add(slug)


@pytest.fixture
def experiment_output():
    """Fixture benches use to publish their paper-shaped output."""
    return register_output


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REGISTERED:
        return
    terminalreporter.section("paper experiment output")
    for title, text in _REGISTERED:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"### {title}")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    _REGISTERED.clear()
