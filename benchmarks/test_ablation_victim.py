"""ABL-VICTIM — Eq. 2 victim-selection policies under multi-tenant skew.

The paper leaves the decommissioning victim choice open ("a victim
mDisk"). With several tenants of different fullness sharing a device, the
choice decides *whose* capacity is sacrificed and how much recovery
traffic each shrink causes: ``emptiest`` minimises re-replicated bytes,
``youngest`` sacrifices regenerated disks first, ``oldest`` rotates
through the original population. This ablation wears identical devices
under a skewed tenant layout and compares.
"""

import numpy as np
import pytest

import repro.errors as E
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.reporting.tables import format_table
from repro.salamander.device import SalamanderConfig, SalamanderSSD
from repro.salamander.events import MinidiskDecommissioned
from repro.ssd.ftl import FTLConfig

GEOMETRY = FlashGeometry(blocks=32, fpages_per_block=8)
FTL = FTLConfig(overprovision=0.25, buffer_opages=8)


def run_policy(victim_policy: str, seed: int = 1) -> dict:
    policy = TirednessPolicy(geometry=GEOMETRY)
    model = calibrate_power_law(policy, pec_limit_l0=25)
    chip = FlashChip(GEOMETRY, rber_model=model, policy=policy,
                     seed=seed, variation_sigma=0.3)
    device = SalamanderSSD(chip, SalamanderConfig(
        msize_lbas=32, mode="shrink", headroom_fraction=0.25,
        victim_policy=victim_policy, ftl=FTL))
    # Skewed tenancy: even minidisks run full, odd ones nearly empty.
    live_at_loss = []

    def on_event(event):
        if isinstance(event, MinidiskDecommissioned):
            live_at_loss.append(last_live.get(event.mdisk_id, 0))

    device.add_listener(on_event)
    last_live = {}
    rng = np.random.default_rng(seed)
    writes = 0
    try:
        while writes < 150_000:
            active = device.active_minidisks()
            if len(active) <= 4:
                break
            mdisk = active[int(rng.integers(0, len(active)))]
            fullness = 0.9 if mdisk.mdisk_id % 2 == 0 else 0.1
            hot = max(1, int(fullness * mdisk.size_lbas))
            device.write(mdisk.mdisk_id, int(rng.integers(0, hot)), b"x")
            writes += 1
            if writes % 256 == 0:
                last_live = device._live_counts()
    except E.ReproError:
        pass
    recovery_lbas = sum(live_at_loss)
    return {
        "writes": writes,
        "decommissions": device.stats.decommissioned_minidisks,
        "recovery_lbas": recovery_lbas,
        "mean_live_at_loss": (recovery_lbas / len(live_at_loss)
                              if live_at_loss else 0.0),
    }


@pytest.mark.benchmark(group="abl-victim")
def test_victim_policy_ablation(benchmark, experiment_output):
    policies = ("youngest", "oldest", "emptiest")
    results = benchmark.pedantic(
        lambda: {p: run_policy(p) for p in policies},
        rounds=1, iterations=1)
    rows = [[p, d["writes"], d["decommissions"],
             f"{d['mean_live_at_loss']:.1f}", d["recovery_lbas"]]
            for p, d in results.items()]
    experiment_output(
        "ABL-VICTIM — Eq. 2 victim policies under skewed tenants "
        "(emptiest minimises re-replicated data)",
        format_table(["victim policy", "host writes", "decommissions",
                      "mean live LBAs lost/event", "total recovery LBAs"],
                     rows))

    # The data-aware policy sheds the least live data per decommission.
    assert (results["emptiest"]["mean_live_at_loss"]
            <= results["youngest"]["mean_live_at_loss"])
    assert (results["emptiest"]["recovery_lbas"]
            <= results["youngest"]["recovery_lbas"])
    # All policies sustain comparable lifetimes (victim choice is about
    # recovery cost, not wear).
    writes = [d["writes"] for d in results.values()]
    assert max(writes) < 1.5 * min(writes)
