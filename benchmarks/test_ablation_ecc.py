"""ABL-ECC — fPage-size and spare-area ablation (§4.2 "other sizes").

The Fig. 2 economics depend on the page layout: the spare area sets the L0
capability, and the oPage count sets how coarse the capacity-for-ECC trade
is. This ablation recomputes the tiredness trade-off across fPage sizes
(8/16/32 KiB) and spare sizes (1/2/4 KiB per 16 KiB of data, scaled).
"""

import pytest

from repro.flash.ecc import _max_rber_cached
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.models.lifetime import tiredness_tradeoff
from repro.reporting.tables import format_table
from repro.units import KIB

LAYOUTS = [
    # (opages_per_fpage, spare_bytes) — fPage data size is opages * 4 KiB.
    (2, 1 * KIB),
    (2, 2 * KIB),
    (4, 1 * KIB),
    (4, 2 * KIB),
    (4, 4 * KIB),
    (8, 4 * KIB),
]


def sweep_layouts():
    _max_rber_cached.cache_clear()
    out = {}
    for opages, spare in LAYOUTS:
        geometry = FlashGeometry(opages_per_fpage=opages, spare_bytes=spare)
        policy = TirednessPolicy(geometry=geometry)
        model = calibrate_power_law(policy, pec_limit_l0=3000)
        out[(opages, spare)] = tiredness_tradeoff(policy, model)
    return out


@pytest.mark.benchmark(group="abl-ecc")
def test_ablation_page_layouts(benchmark, experiment_output):
    sweeps = benchmark.pedantic(sweep_layouts, rounds=1, iterations=1)
    rows = []
    for (opages, spare), points in sweeps.items():
        l1 = points[1]
        rows.append([
            f"{opages * 4} KiB",
            f"{spare // KIB} KiB",
            f"{points[0].code_rate:.3f}",
            f"{points[0].max_rber:.2e}",
            f"{l1.capacity_fraction:.2f}",
            f"{l1.pec_gain:+.0%}",
        ])
    experiment_output(
        "ABL-ECC — page-layout ablation (capacity cost and L1 gain per "
        "fPage/spare geometry; calibration holds L1 at +50 %)",
        format_table(["fPage", "spare", "L0 code rate", "L0 max RBER",
                      "L1 capacity", "L1 gain"], rows))

    # Structural facts, independent of calibration:
    # 1. smaller fPages pay more capacity per level step (coarser trade);
    small = sweeps[(2, 1 * KIB)][1].capacity_fraction
    large = sweeps[(8, 4 * KIB)][1].capacity_fraction
    assert small < large
    # 2. more spare -> stronger default ECC at the same data size.
    weak = sweeps[(4, 1 * KIB)][0].max_rber
    strong = sweeps[(4, 4 * KIB)][0].max_rber
    assert strong > weak
