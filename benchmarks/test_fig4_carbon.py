"""FIG4 — CO2e reduction across system configurations (Fig. 4, Eq. 3).

Paper §4.1: "Salamander achieves 3-8% CO2e savings in current designs ...
if one considers the reduction ... when using only renewables, these gains
increase to 11-20%". The bench evaluates Eq. 3 across the figure's bar set
plus an f_op sensitivity sweep.
"""

import numpy as np
import pytest

from repro.models.carbon import (
    RU_REGENS,
    RU_SHRINKS,
    CarbonParams,
    carbon_savings,
    fig4_configurations,
)
from repro.reporting.tables import format_table, render_bars


def compute_fig4():
    bars = fig4_configurations()
    sweep = []
    for f_op in np.linspace(0.2, 0.7, 11):
        for mode, ru in (("shrinks", RU_SHRINKS), ("regens", RU_REGENS)):
            sweep.append((float(f_op), mode, carbon_savings(
                CarbonParams(f_op=float(f_op), upgrade_rate=ru))))
    return bars, sweep


@pytest.mark.benchmark(group="fig4")
def test_fig4_carbon_savings(benchmark, experiment_output):
    bars, sweep = benchmark(compute_fig4)
    experiment_output(
        "FIG4 — CO2e savings per configuration (paper Fig. 4; "
        "3-8 % current, 11-20 % renewable)",
        render_bars({k: v * 100 for k, v in bars.items()}, unit="%"))
    rows = [[f"{f_op:.2f}", mode, f"{saving:+.1%}"]
            for f_op, mode, saving in sweep if mode == "regens"]
    experiment_output(
        "FIG4 (sensitivity) — RegenS savings vs operational share f_op",
        format_table(["f_op", "mode", "savings"], rows))

    assert 0.02 <= bars["shrinks/current"] <= 0.04
    assert 0.07 <= bars["regens/current"] <= 0.09
    assert 0.09 <= bars["shrinks/renewable"] <= 0.12
    assert 0.18 <= bars["regens/renewable"] <= 0.22
