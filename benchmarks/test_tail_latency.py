"""EXT-TAIL — read tail latency over a device's life (§4.2's retry story).

Extension beyond the paper. §4.2 notes that worn pages "potentially
incur overheads for ECC computation and additional read retries", and that
RegenS's lower code rate mitigates this. This bench measures the full read
latency distribution (mean/p50/p99) at several points in a device's life,
for a fixed-code-rate baseline and a RegenS device on identical flash:
near end of life the baseline's tail inflates with retries, while RegenS's
promoted L1 pages regain ECC margin and keep the tail flat.

Probes run through the queued IO pipeline: each checkpoint issues reads
via a fresh :class:`repro.io.queue.DeviceQueue` with ``keep_latencies``
and the distribution comes from the per-completion latencies the queue
records — the same numbers ``repro_io_latency_us`` observes in
production paths.
"""

import numpy as np
import pytest

import repro.errors as E
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.io import DeviceQueue, IORequest
from repro.reporting.tables import format_table
from repro.salamander.device import SalamanderConfig, SalamanderSSD
from repro.ssd.device import BaselineSSD, SSDConfig
from repro.ssd.ftl import FTLConfig

GEOMETRY = FlashGeometry(blocks=32, fpages_per_block=8)
FTL = FTLConfig(overprovision=0.25, buffer_opages=8)
PEC_LIMIT = 40
CHECKPOINTS = (0.0, 0.6, 0.9)  # fraction of the device's write lifetime


def build(kind: str):
    policy = TirednessPolicy(geometry=GEOMETRY)
    model = calibrate_power_law(policy, pec_limit_l0=PEC_LIMIT)
    chip = FlashChip(GEOMETRY, rber_model=model, policy=policy,
                     seed=1, variation_sigma=0.3, inject_errors=False)
    if kind == "baseline":
        return BaselineSSD(chip, SSDConfig(ftl=FTL))
    return SalamanderSSD(chip, SalamanderConfig(
        msize_lbas=32, mode="regen", headroom_fraction=0.25, ftl=FTL))


def measure_at_checkpoints(kind: str, total_writes: int = 24_000):
    device = build(kind)
    rng = np.random.default_rng(0)
    # Prime the working set so the 0 %-life probe reads real data.
    if kind == "baseline":
        for lba in range(int(device.n_lbas * 0.6)):
            device.write(lba, b"p")
    else:
        for mdisk in device.active_minidisks():
            for lba in range(max(1, int(0.6 * mdisk.size_lbas))):
                device.write(mdisk.mdisk_id, lba, b"p")
    device.flush()
    checkpoints = {}
    next_check = 0
    writes = 0
    while writes <= total_writes:
        fraction = writes / total_writes
        if next_check < len(CHECKPOINTS) and \
                fraction >= CHECKPOINTS[next_check]:
            checkpoints[CHECKPOINTS[next_check]] = _probe_reads(device, rng)
            next_check += 1
        try:
            if kind == "baseline":
                hot = int(device.n_lbas * 0.6)
                device.write(int(rng.integers(0, hot)), b"w")
            else:
                active = device.active_minidisks()
                if not active:
                    break
                mdisk = active[int(rng.integers(0, len(active)))]
                hot = max(1, int(0.6 * mdisk.size_lbas))
                device.write(mdisk.mdisk_id, int(rng.integers(0, hot)), b"w")
        except E.ReproError:
            break
        writes += 1
    return checkpoints


def _probe_reads(device, rng, probes: int = 400):
    """Sample the read-latency distribution through a fresh probe queue."""
    queue = DeviceQueue(device, keep_latencies=True)
    latencies = queue.stats.latencies_us
    issued = 0
    attempts = 0
    while issued < probes and attempts < probes * 4:
        attempts += 1
        mark = len(latencies)
        try:
            if isinstance(device, SalamanderSSD):
                active = device.active_minidisks()
                if not active:
                    break
                mdisk = active[int(rng.integers(0, len(active)))]
                queue.execute(IORequest(
                    op="read", lba=int(rng.integers(0, mdisk.size_lbas)),
                    mdisk_id=mdisk.mdisk_id))
            else:
                queue.execute(IORequest(
                    op="read", lba=int(rng.integers(0, device.n_lbas))))
        except E.ReproError:
            # A failed probe is not a latency sample (mirrors the legacy
            # reservoir, which only saw successful device reads).
            del latencies[mark:]
            continue
        issued += 1
    samples = np.asarray(latencies)
    return (float(samples.mean()), float(np.percentile(samples, 50)),
            float(np.percentile(samples, 99)))


@pytest.mark.benchmark(group="ext-tail")
def test_tail_latency_over_life(benchmark, experiment_output):
    results = benchmark.pedantic(
        lambda: {kind: measure_at_checkpoints(kind)
                 for kind in ("baseline", "regen")},
        rounds=1, iterations=1)
    rows = []
    for kind, checkpoints in results.items():
        for fraction, (mean, p50, p99) in checkpoints.items():
            rows.append([kind, f"{fraction:.0%}", f"{mean:.1f}",
                         f"{p50:.1f}", f"{p99:.1f}"])
    experiment_output(
        "EXT-TAIL — read latency (us) over device life "
        "(retries inflate the worn baseline's tail; RegenS re-margins "
        "pages at L1)",
        format_table(["device", "life consumed", "mean", "p50", "p99"],
                     rows))

    base = results["baseline"]
    regen = results["regen"]
    # The baseline's tail inflates as it nears end of life.
    assert base[0.9][2] > base[0.0][2]
    # RegenS's late-life p99 inflates less than the baseline's (ratio).
    base_inflation = base[0.9][2] / base[0.0][2]
    regen_inflation = regen[0.9][2] / regen[0.0][2]
    assert regen_inflation < base_inflation
