"""FIG2 — capacity sacrificed vs PEC benefit per tiredness level (Fig. 2).

Paper: "Switching oPages to additional ECC trades capacity for increasingly
diminishing lifetime benefits", with +50 % PEC at L1. The bench times the
full first-principles computation (BCH bound + binomial-tail inversion +
RBER-model calibration) and prints the curve.
"""

import pytest

from repro.flash.ecc import _max_rber_cached
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.models.lifetime import tiredness_tradeoff
from repro.reporting.tables import format_table


def compute_fig2():
    # Clear the capability cache so the bench times real work every round.
    _max_rber_cached.cache_clear()
    policy = TirednessPolicy()
    model = calibrate_power_law(policy, pec_limit_l0=3000)
    return tiredness_tradeoff(policy, model)


@pytest.mark.benchmark(group="fig2")
def test_fig2_tiredness_tradeoff(benchmark, experiment_output):
    points = benchmark(compute_fig2)
    rows = [[f"L{p.level}",
             f"{p.capacity_fraction:.2f}",
             f"{p.code_rate:.3f}",
             f"{p.max_rber:.3e}",
             f"{p.pec_limit:.0f}",
             f"{p.pec_gain:+.0%}",
             f"{p.marginal_gain:+.0%}"]
            for p in points]
    experiment_output(
        "FIG2 — tiredness level vs PEC benefit (paper Fig. 2; "
        "anchor: L1 = +50 %, diminishing marginal gains)",
        format_table(["level", "capacity", "code rate", "max RBER",
                      "PEC limit", "gain vs L0", "marginal"], rows))
    by_level = {p.level: p for p in points}
    assert by_level[1].pec_gain == pytest.approx(0.5, abs=1e-6)
    marginals = [p.marginal_gain for p in points[1:]]
    assert all(a > b for a, b in zip(marginals, marginals[1:]))
