"""EXT-CAP — constant-capacity embodied cost (§4.1's partial cancellation).

The paper notes that shrinking fleets need backfill SSDs while baseline
fleets need replacements for outright failures, and that "these two
behaviors partially cancel out in terms of emissions". This bench holds
delivered capacity constant over the horizon for every discipline —
replacement cohorts age too — and compares total purchased capacity, the
embodied-emissions proxy.

Two regimes bracket the answer:

* **wear-limited** (heavy DWPD): every fleet consumes its flash fully, so
  the cancellation is strong and Salamander's edge is its extra PEC only;
* **retirement-limited** (light DWPD + preemptive replacement): the
  EXT-RU bench shows Salamander's edge widens, because monolithic fleets
  discard working drives.
"""

import numpy as np
import pytest

from repro.flash.geometry import FlashGeometry
from repro.models.capacity import (
    embodied_purchase_ratio,
    plan_constant_capacity,
)
from repro.reporting.tables import format_table
from repro.sim.fleet import FleetConfig, simulate_fleet

CONFIG = FleetConfig(
    devices=32, geometry=FlashGeometry(blocks=64, fpages_per_block=32),
    pec_limit_l0=3000, dwpd=2.0, afr=0.01,
    horizon_days=2500, step_days=10)

MODES = ("baseline", "cvss", "shrink", "regen")


def run_planning():
    results = {mode: simulate_fleet(CONFIG, mode, seed=5) for mode in MODES}
    plans = {mode: plan_constant_capacity(result, results["baseline"])
             for mode, result in results.items()}
    return plans


@pytest.mark.benchmark(group="ext-cap")
def test_constant_capacity_planning(benchmark, experiment_output):
    plans = benchmark.pedantic(run_planning, rounds=1, iterations=1)
    base = plans["baseline"]
    rows = []
    for mode, plan in plans.items():
        ratio = embodied_purchase_ratio(plan, base)
        rows.append([
            mode,
            f"{plan.total_purchases_bytes / plan.initial_capacity_bytes:.2f}x",
            f"{plan.lifetime_purchased_bytes() / plan.initial_capacity_bytes:.2f}x",
            f"{ratio:.2f}",
            f"{1 - ratio:+.0%}",
        ])
    experiment_output(
        "EXT-CAP — purchased capacity to hold delivered capacity constant "
        "(~7 y, wear-limited regime; §4.1's partial cancellation)",
        format_table(["mode", "backfill / initial", "lifetime / initial",
                      "embodied ratio", "embodied savings"], rows))

    ratios = {mode: embodied_purchase_ratio(plan, base)
              for mode, plan in plans.items()}
    # Every discipline holds capacity; Salamander buys least.
    for mode, plan in plans.items():
        delivered = plan.delivered_capacity()
        assert np.all(delivered >= plan.initial_capacity_bytes * 0.999), mode
    assert ratios["regen"] < ratios["shrink"] < 1.0
    # Partial cancellation: in the wear-limited regime the gap is smaller
    # than the raw lifetime gap (2x) — emissions ratios stay above 0.7.
    assert ratios["regen"] > 0.7
