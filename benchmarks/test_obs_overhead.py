"""Instrumentation overhead: disabled observability must cost ~nothing.

The acceptance bar for ``repro.obs`` is that a fleet simulation step with
observability *disabled* stays within a few percent of the pre-
instrumentation cost, and that *timeseries sampling* at the default
cadence (a monthly SMART pull, ``timeseries.DEFAULT_CADENCE``) stays
within ~5% — the census piggybacks on the searchsorted calls the step
loop already makes, and non-sample steps pay one ``due()`` check. Hot
loops guard with ``obs.metrics_enabled()`` (one boolean) and everything
else goes through the no-op singletons, so the benches below differ
only by the real cost of each enabled layer.

``no_obs`` opts these benches out of the harness's autouse registry
fixture — overhead measurement needs to control exactly which layers
are on.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.flash.geometry import FlashGeometry
from repro.obs.timeseries import DEFAULT_CADENCE
from repro.sim.fleet import FleetConfig, simulate_fleet

CONFIG = FleetConfig(
    devices=16,
    geometry=FlashGeometry(blocks=64, fpages_per_block=32),
    dwpd=2.0,
    afr=0.01,
    horizon_days=730,
    step_days=10,
)

#: The sampling-overhead bench runs a production-shaped fleet: per-step
#: simulation work must dominate the sampler's fixed per-sample cost
#: (~20us of probe/ring machinery) for the ratio to mean anything. On
#: the toy CONFIG above that fixed cost is a double-digit percentage of
#: an 10ms run; at fleet scale it is the ~1-2% a deployment would see.
SAMPLING_CONFIG = FleetConfig(
    devices=32,
    geometry=FlashGeometry(blocks=128, fpages_per_block=64),
    dwpd=2.0,
    afr=0.01,
    horizon_days=1825,
    step_days=5,
)


@pytest.mark.no_obs
def test_fleet_sim_observability_disabled(benchmark):
    assert not obs.metrics_enabled()
    assert not obs.timeseries_enabled()
    result = benchmark(simulate_fleet, CONFIG, "regen", 7)
    assert result.days.size > 0


@pytest.mark.no_obs
def test_fleet_sim_sampling_baseline(benchmark):
    """The production-shaped fleet with everything disabled."""
    assert not obs.timeseries_enabled()
    result = benchmark(simulate_fleet, SAMPLING_CONFIG, "regen", 7)
    assert result.days.size > 0


@pytest.mark.no_obs
def test_fleet_sim_timeseries_default_cadence(benchmark):
    """Sampler-only overhead at the default (monthly) cadence: <=5%
    against ``test_fleet_sim_sampling_baseline``."""
    sampler = obs.enable_timeseries(cadence=DEFAULT_CADENCE)
    try:
        assert obs.timeseries_enabled() and not obs.metrics_enabled()
        result = benchmark(simulate_fleet, SAMPLING_CONFIG, "regen", 7)
    finally:
        obs.disable()
    assert result.days.size > 0
    assert sampler.samples_taken > 0


def test_fleet_sim_observability_enabled(benchmark, _obs_snapshot):
    assert obs.metrics_enabled()
    result = benchmark(simulate_fleet, CONFIG, "regen", 7)
    assert result.days.size > 0
