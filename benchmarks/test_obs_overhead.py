"""Instrumentation overhead: disabled observability must cost ~nothing.

The acceptance bar for ``repro.obs`` is that a fleet simulation step with
observability *disabled* stays within a few percent of the pre-
instrumentation cost. Hot loops guard with ``obs.metrics_enabled()`` (one
boolean) and everything else goes through the no-op singletons, so the two
benches below should differ only by the real cost of *enabled* metrics.

``no_obs`` opts the disabled bench out of the harness's autouse registry
fixture — otherwise the harness itself would enable metrics around it.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.flash.geometry import FlashGeometry
from repro.sim.fleet import FleetConfig, simulate_fleet

CONFIG = FleetConfig(
    devices=16,
    geometry=FlashGeometry(blocks=64, fpages_per_block=32),
    dwpd=2.0,
    afr=0.01,
    horizon_days=730,
    step_days=10,
)


@pytest.mark.no_obs
def test_fleet_sim_observability_disabled(benchmark):
    assert not obs.metrics_enabled()
    result = benchmark(simulate_fleet, CONFIG, "regen", 7)
    assert result.days.size > 0


def test_fleet_sim_observability_enabled(benchmark, _obs_snapshot):
    assert obs.metrics_enabled()
    result = benchmark(simulate_fleet, CONFIG, "regen", 7)
    assert result.days.size > 0
