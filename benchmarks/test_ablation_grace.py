"""ABL-GRACE — the §4.3 decommissioning grace period (paper future work).

"As future work we will explore including a short grace period for mDisk
decommissioning in RegenS during which mDisk data is maintained internally
until the diFS system has safely re-distributed it." This ablation runs the
same wear-to-death RegenS cluster with and without the grace period and
measures what the paper worried about: chunks lost when both replicas die
inside one wear cascade.
"""

import numpy as np
import pytest

import repro.errors as E
from repro.difs.cluster import Cluster, ClusterConfig
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.reporting.tables import format_table
from repro.salamander.device import SalamanderConfig, SalamanderSSD
from repro.ssd.ftl import FTLConfig

GRACES = [0, 1, 3]


def run_cluster(grace: int, rounds: int = 5000, seed: int = 5) -> dict:
    geometry = FlashGeometry(blocks=32, fpages_per_block=8)
    policy = TirednessPolicy(geometry=geometry)
    model = calibrate_power_law(policy, pec_limit_l0=12)
    ftl = FTLConfig(overprovision=0.25, buffer_opages=8)
    cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4), seed=seed)
    for n in range(4):
        cluster.add_node(f"n{n}")
        chip = FlashChip(geometry, rber_model=model, policy=policy,
                         seed=seed + n, variation_sigma=0.3)
        cluster.add_device(f"n{n}", SalamanderSSD(chip, SalamanderConfig(
            msize_lbas=32, mode="regen", headroom_fraction=0.25,
            grace_decommissions=grace, ftl=ftl)))
    rng = np.random.default_rng(1)
    for i in range(40):
        cluster.create_chunk(f"c{i}", f"data-{i}".encode())
    for round_index in range(rounds):
        cluster.time = float(round_index)
        i = int(rng.integers(0, 40))
        try:
            cluster.delete_chunk(f"c{i}")
            cluster.create_chunk(f"c{i}", f"r{round_index}-{i}".encode())
        except E.ReproError:
            pass
        cluster.poll_failures()
        cluster.run_recovery()
    stats = cluster.recovery.stats
    return {
        "volume_failures": stats.volume_failures,
        "chunks_recovered": stats.chunks_recovered,
        "chunks_lost": stats.chunks_lost,
        "bytes_moved": stats.bytes_moved,
    }


@pytest.mark.benchmark(group="abl-grace")
def test_ablation_grace_period(benchmark, experiment_output):
    runs = benchmark.pedantic(
        lambda: {grace: run_cluster(grace) for grace in GRACES},
        rounds=1, iterations=1)
    rows = [[grace, d["volume_failures"], d["chunks_recovered"],
             d["chunks_lost"], d["bytes_moved"]]
            for grace, d in runs.items()]
    experiment_output(
        "ABL-GRACE — §4.3 grace period vs RegenS data loss under "
        "accelerated wear (0 = paper's base design)",
        format_table(["grace budget", "volume failures", "recovered",
                      "chunks lost", "bytes moved"], rows))

    # The grace period's purpose: it eliminates (or at least sharply cuts)
    # double-failure losses relative to immediate invalidation.
    assert runs[3]["chunks_lost"] < max(1, runs[0]["chunks_lost"])
    assert runs[3]["chunks_lost"] <= runs[1]["chunks_lost"] \
        <= max(runs[0]["chunks_lost"], runs[1]["chunks_lost"])
