"""FIG3A — number of functioning SSDs over time (Fig. 3a).

Paper: "Baseline SSDs (red) gradually fail ... For RegenS (green) worn-out
devices can shrink and regenerate and reduce the rate of device failures."
The bench runs the vectorised fleet for each discipline on identical
hardware draws and prints the survival curves.
"""

import numpy as np
import pytest

from benchmarks.fleet_common import FLEET_CONFIG, FLEET_SEED, fleet_result
from repro.reporting.series import Series
from repro.reporting.tables import render_series
from repro.sim.fleet import simulate_fleet


@pytest.mark.benchmark(group="fig3a")
def test_fig3a_fleet_survival(benchmark, experiment_output):
    benchmark.pedantic(
        lambda: simulate_fleet(FLEET_CONFIG, "baseline", seed=FLEET_SEED),
        rounds=1, iterations=1)
    results = {mode: fleet_result(mode)
               for mode in ("baseline", "cvss", "shrink", "regen")}
    series = [Series(mode, r.days / 365.0, r.functioning,
                     x_label="years", y_label="functioning devices")
              for mode, r in results.items()]
    experiment_output(
        "FIG3A — functioning SSDs over time (paper Fig. 3a; Salamander "
        "flattens the failure curve)",
        render_series(series, points=12))

    lives = {m: r.mean_lifetime_days() for m, r in results.items()}
    assert lives["baseline"] < lives["shrink"] < lives["regen"]
    # At the baseline fleet's half-life, Salamander keeps more devices up.
    half_life = float(np.median(results["baseline"].death_day))
    assert (results["regen"].survivors_at(half_life)
            > results["baseline"].survivors_at(half_life))
