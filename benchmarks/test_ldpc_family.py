"""EXT-LDPC — ECC-family sensitivity of the Fig. 2 economics.

Extension beyond the paper. Fig. 2's absolute numbers depend on the ECC
model; modern drives ship capacity-approaching LDPC rather than BCH. This
bench fixes one flash wear curve (calibrated so the *BCH* L0 limit is 3000
cycles) and asks how far each tiredness level stretches under both
families — i.e., what swapping the decoder buys on identical silicon.
"""

import pytest

from repro.flash.ecc import _max_rber_cached
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.reporting.tables import format_table


def compute_families():
    _max_rber_cached.cache_clear()
    bch = TirednessPolicy(ecc_family="bch")
    ldpc = TirednessPolicy(ecc_family="ldpc")
    model = calibrate_power_law(bch, pec_limit_l0=3000)
    rows = []
    for level in bch.usable_levels:
        rows.append({
            "level": level,
            "rate": bch.code_rate(level),
            "bch_rber": bch.max_rber(level),
            "ldpc_rber": ldpc.max_rber(level),
            "bch_pec": float(bch.pec_limit(level, model)),
            "ldpc_pec": float(ldpc.pec_limit(level, model)),
        })
    return rows


@pytest.mark.benchmark(group="ext-ldpc")
def test_ldpc_vs_bch_tradeoff(benchmark, experiment_output):
    rows = benchmark(compute_families)
    table = [[f"L{r['level']}", f"{r['rate']:.3f}",
              f"{r['bch_rber']:.2e}", f"{r['ldpc_rber']:.2e}",
              f"{r['bch_pec']:.0f}", f"{r['ldpc_pec']:.0f}",
              f"{r['ldpc_pec'] / r['bch_pec'] - 1:+.0%}"]
             for r in rows]
    experiment_output(
        "EXT-LDPC — BCH vs LDPC capability on the same flash "
        "(wear curve calibrated to BCH L0 = 3000 cycles)",
        format_table(["level", "code rate", "BCH max RBER", "LDPC max RBER",
                      "BCH PEC", "LDPC PEC", "LDPC gain"], table))

    for r in rows:
        assert r["ldpc_rber"] > r["bch_rber"]
        assert r["ldpc_pec"] > r["bch_pec"]
    # The LDPC advantage grows at lower code rates (further from capacity).
    gains = [r["ldpc_pec"] / r["bch_pec"] for r in rows]
    assert gains[-1] > gains[0]
