"""TAB-LIFE — lifetime extension tournament (§4's "up to 1.5x").

Two independent measurements:

* **functional** — four devices on identical chips (same variation draw),
  written to death through the full FTL/GC/ECC stack;
* **fleet** — the vectorised population model at realistic scale.

Expected shape: baseline < CVSS <= ShrinkS < RegenS, with RegenS >= 1.5x
the baseline's lifetime.
"""

import pytest

from benchmarks.fleet_common import fleet_result
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.reporting.tables import format_table
from repro.salamander.device import SalamanderConfig, SalamanderSSD
from repro.sim.lifetime import run_write_lifetime
from repro.ssd.cvss import CVSSConfig, CVSSDevice
from repro.ssd.device import BaselineSSD, SSDConfig
from repro.ssd.ftl import FTLConfig

GEOMETRY = FlashGeometry(blocks=32, fpages_per_block=8)
FTL = FTLConfig(overprovision=0.25, buffer_opages=8)


def build_devices():
    policy = TirednessPolicy(geometry=GEOMETRY)
    model = calibrate_power_law(policy, pec_limit_l0=30)

    def chip():
        return FlashChip(GEOMETRY, rber_model=model, policy=policy,
                         seed=1, variation_sigma=0.3)

    salamander = dict(msize_lbas=32, headroom_fraction=0.25, ftl=FTL)
    return {
        "baseline": BaselineSSD(chip(), SSDConfig(ftl=FTL)),
        "cvss": CVSSDevice(chip(), CVSSConfig(ftl=FTL)),
        "shrinks": SalamanderSSD(chip(), SalamanderConfig(
            mode="shrink", **salamander)),
        "regens": SalamanderSSD(chip(), SalamanderConfig(
            mode="regen", **salamander)),
    }


def functional_tournament():
    return {name: run_write_lifetime(device, utilization=0.6,
                                     capacity_floor_fraction=0.3, seed=0)
            for name, device in build_devices().items()}


@pytest.mark.benchmark(group="tab-life")
def test_lifetime_extension_tournament(benchmark, experiment_output):
    functional = benchmark.pedantic(functional_tournament,
                                    rounds=1, iterations=1)
    fleet = {mode: fleet_result(mode)
             for mode in ("baseline", "cvss", "shrink", "regen")}
    fleet_map = {"baseline": "baseline", "cvss": "cvss",
                 "shrinks": "shrink", "regens": "regen"}

    base_writes = functional["baseline"].host_writes
    base_days = fleet["baseline"].mean_lifetime_days()
    rows = []
    for name, result in functional.items():
        days = fleet[fleet_map[name]].mean_lifetime_days()
        rows.append([
            name,
            result.host_writes,
            f"{result.host_writes / base_writes:.2f}x",
            f"{result.mean_pec_at_death:.1f}",
            f"{days:.0f}",
            f"{days / base_days:.2f}x",
        ])
    experiment_output(
        "TAB-LIFE — lifetime extension (paper: CVSS ~+20 % at 50 % util; "
        "Salamander 'up to 1.5x')",
        format_table(["device", "host writes (functional)", "vs baseline",
                      "mean PEC at death", "fleet mean life (days)",
                      "vs baseline"], rows))

    writes = {k: v.host_writes for k, v in functional.items()}
    assert writes["baseline"] < writes["cvss"] <= writes["shrinks"] \
        < writes["regens"]
    assert writes["regens"] / writes["baseline"] >= 1.4
    days = {k: fleet[v].mean_lifetime_days() for k, v in fleet_map.items()}
    assert days["baseline"] < days["shrinks"] < days["regens"]
    assert days["regens"] / days["baseline"] >= 1.5
