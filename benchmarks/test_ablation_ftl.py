"""ABL-FTL — FTL design choices: stream separation and scrubbing.

Extensions beyond the paper, ablating two firmware mechanisms the
functional substrate implements:

* **stream separation** — relocated (cold) data gets its own open block
  instead of mixing with fresh host writes; classic WAF reduction under
  skewed traffic.
* **proactive scrubbing** — a rolling sweep relocates data off pages whose
  RBER outgrew their ECC *before* reads start failing. Exercised here
  against read disturb (§2 mentions it as a real error source): a hot
  read-mostly working set slowly corrupts its own blocks unless scrubbed.
"""

import numpy as np
import pytest

from repro.errors import UncorrectableError
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.reporting.tables import format_table
from repro.ssd.ftl import FTLConfig, PageMappedFTL
from repro.workloads.generators import ZipfianGenerator


def waf_with(separation: bool) -> float:
    geometry = FlashGeometry(blocks=32, fpages_per_block=8)
    chip = FlashChip(geometry, seed=1, variation_sigma=0.0,
                     inject_errors=False)
    ftl = PageMappedFTL.for_chip(chip, FTLConfig(
        overprovision=0.25, buffer_opages=8,
        stream_separation=separation))
    generator = ZipfianGenerator(int(ftl.n_lbas * 0.9), theta=1.1, seed=2)
    for op in generator.ops(12 * ftl.n_lbas):
        ftl.write(op.lba, b"z")
    return ftl.stats.write_amplification


def losses_with(scrub: bool) -> dict:
    geometry = FlashGeometry(blocks=32, fpages_per_block=8)
    chip = FlashChip(geometry, seed=1, variation_sigma=0.0,
                     read_disturb_rber=3e-6)
    config = FTLConfig(overprovision=0.25, buffer_opages=8,
                       scrub_interval_writes=64 if scrub else 0,
                       scrub_batch_fpages=64)
    ftl = PageMappedFTL.for_chip(chip, config)
    rng = np.random.default_rng(3)
    working_set = ftl.n_lbas // 2
    for lba in range(working_set):
        ftl.write(lba, f"v{lba}".encode())
    ftl.flush()
    failed_reads = 0
    # Read-mostly phase: hot reads disturb the data blocks; occasional
    # writes give the autoscrubber its trigger points.
    for i in range(60_000):
        if i % 100 == 0:
            ftl.write(int(rng.integers(0, working_set)), b"refresh")
        lba = int(rng.integers(0, working_set))
        try:
            ftl.read(lba)
        except UncorrectableError:
            failed_reads += 1
    return {
        "failed_reads": failed_reads,
        "lost_opages": ftl.stats.lost_opages,
        "wear_relocations": ftl.stats.wear_relocations,
    }


@pytest.mark.benchmark(group="abl-ftl")
def test_ablation_ftl_mechanisms(benchmark, experiment_output):
    def run_all():
        return ({sep: waf_with(sep) for sep in (True, False)},
                {scrub: losses_with(scrub) for scrub in (True, False)})

    wafs, losses = benchmark.pedantic(run_all, rounds=1, iterations=1)

    experiment_output(
        "ABL-FTL (streams) — write amplification under zipfian traffic",
        format_table(["stream separation", "WAF"],
                     [["on", f"{wafs[True]:.3f}"],
                      ["off", f"{wafs[False]:.3f}"]]))
    rows = [[("on" if scrub else "off"), d["failed_reads"],
             d["lost_opages"], d["wear_relocations"]]
            for scrub, d in losses.items()]
    experiment_output(
        "ABL-FTL (scrub) — read-disturb losses with/without scrubbing",
        format_table(["scrubber", "failed reads", "lost oPages",
                      "pages relocated by scrub"], rows))

    # Separation must not hurt, and usually helps, under skew.
    assert wafs[True] <= wafs[False] * 1.02
    # Scrubbing must eliminate (or sharply reduce) disturb-induced loss.
    assert losses[True]["lost_opages"] <= losses[False]["lost_opages"]
    assert losses[True]["failed_reads"] < losses[False]["failed_reads"] \
        or losses[False]["failed_reads"] == 0
    assert losses[True]["wear_relocations"] > 0
