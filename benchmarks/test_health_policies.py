"""EXT-HEALTH — the §2.1 preemptive-retirement trade, quantified.

The paper's §2.1: operators retire SSDs early "to avoid costly unscheduled
replacements", wasting device life; the cited failure-prediction studies
([28-31]) are the industry's mitigation. This extension reproduces that
pipeline — SMART trajectories, a trained failure predictor, policy
comparison — to quantify the trade Salamander dissolves: with gradual
(minidisk) failures there is nothing "unexpected" left to predict.
"""

import numpy as np
import pytest

from repro.flash.geometry import FlashGeometry
from repro.health.policy import (
    evaluate_fixed_age,
    evaluate_predictive,
    evaluate_run_to_failure,
)
from repro.health.predictor import FailurePredictor, evaluate_predictor
from repro.health.telemetry import TelemetryConfig, generate_trajectories
from repro.reporting.tables import format_table

CONFIG = TelemetryConfig(
    devices=150, geometry=FlashGeometry(blocks=128, fpages_per_block=32),
    pec_limit_l0=3000, dwpd=1.5, sample_days=30, max_days=5000)


def run_pipeline():
    train = generate_trajectories(CONFIG, seed=1)
    test = generate_trajectories(CONFIG, seed=2)
    predictor = FailurePredictor(horizon_days=90).fit(train)
    report = evaluate_predictor(predictor, test)
    median_life = float(np.median(
        [t.death_day for t in test if np.isfinite(t.death_day)]))
    outcomes = [
        evaluate_run_to_failure(test),
        evaluate_fixed_age(test, median_life * 0.6),
        evaluate_fixed_age(test, median_life * 0.9),
        evaluate_predictive(test, predictor, threshold=0.5),
    ]
    return report, outcomes


@pytest.mark.benchmark(group="ext-health")
def test_health_policy_tradeoff(benchmark, experiment_output):
    report, outcomes = benchmark.pedantic(run_pipeline, rounds=1,
                                          iterations=1)
    experiment_output(
        "EXT-HEALTH (predictor) — held-out precision/recall at 90-day "
        "horizon",
        format_table(["precision", "recall", "base rate", "samples"],
                     [[f"{report.precision:.2f}", f"{report.recall:.2f}",
                       f"{report.base_rate:.3f}", report.samples]]))
    rows = [[o.policy, f"{o.mean_service_days:.0f}",
             f"{o.unexpected_failure_rate:.0%}",
             o.preemptive_retirements,
             f"{o.wasted_life_fraction:.0%}"]
            for o in outcomes]
    experiment_output(
        "EXT-HEALTH (policies) — §2.1's trade: unexpected failures vs "
        "wasted device life",
        format_table(["policy", "mean life (d)", "unexpected",
                      "preempted", "wasted life"], rows))

    by_name = {o.policy: o for o in outcomes}
    run = by_name["run-to-failure"]
    predictive = by_name["predictive"]
    assert report.precision > 2 * report.base_rate
    # The §2.1 dilemma: run-to-failure maximises life but every failure is
    # a surprise; prediction recovers most of the life at a fraction of
    # the surprises.
    assert run.unexpected_failure_rate > 0.9
    assert predictive.unexpected_failure_rate < 0.3
    assert predictive.wasted_life_fraction < 0.2
