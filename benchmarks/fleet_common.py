"""Shared fleet configuration for the Fig. 3a/3b and recovery benches.

One scaled-down fleet (exact per-page variation sampling, analytic wear)
shared by several benches so their curves are directly comparable. Module-
level cache keeps the expensive runs to one per (mode) per session.
"""

from __future__ import annotations

from functools import lru_cache

from repro.flash.geometry import FlashGeometry
from repro.sim.fleet import FleetConfig, FleetResult, simulate_fleet

FLEET_SEED = 2025

FLEET_CONFIG = FleetConfig(
    devices=48,
    geometry=FlashGeometry(blocks=128, fpages_per_block=64),
    pec_limit_l0=3000.0,
    variation_sigma=0.35,
    dwpd=2.0,
    write_amplification=2.0,
    afr=0.01,
    horizon_days=3650,
    step_days=10,
)


@lru_cache(maxsize=None)
def fleet_result(mode: str) -> FleetResult:
    return simulate_fleet(FLEET_CONFIG, mode, seed=FLEET_SEED)
