"""Shared fleet configuration for the Fig. 3a/3b and recovery benches.

One scaled-down fleet (exact per-page variation sampling, analytic wear)
shared by several benches so their curves are directly comparable. A
module-level cache keeps the expensive runs to one per mode per session.

Set ``REPRO_BENCH_JOBS=N`` (N > 1) to prefetch all four modes through the
process-parallel runner (:mod:`repro.sim.parallel`) on first use; the
cached results are identical either way — the runner's determinism
contract guarantees it.
"""

from __future__ import annotations

import os

from repro.flash.geometry import FlashGeometry
from repro.sim.fleet import MODES, FleetConfig, FleetResult, simulate_fleet
from repro.sim.parallel import run_fleet_grid

FLEET_SEED = 2025

FLEET_CONFIG = FleetConfig(
    devices=48,
    geometry=FlashGeometry(blocks=128, fpages_per_block=64),
    pec_limit_l0=3000.0,
    variation_sigma=0.35,
    dwpd=2.0,
    write_amplification=2.0,
    afr=0.01,
    horizon_days=3650,
    step_days=10,
)

_RESULTS: dict[str, FleetResult] = {}


def _bench_jobs() -> int:
    try:
        return int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    except ValueError:
        return 1


def fleet_result(mode: str) -> FleetResult:
    """Cached fleet run for ``mode`` (prefetches all modes when parallel)."""
    if mode not in _RESULTS:
        jobs = _bench_jobs()
        if jobs > 1:
            # One parallel fan-out fills the whole cache: the first bench
            # to ask pays ~one mode's wall-clock for all four curves.
            grid = run_fleet_grid(FLEET_CONFIG, modes=MODES,
                                  seeds=[FLEET_SEED], jobs=jobs)
            for (grid_mode, _seed), result in grid.items():
                _RESULTS.setdefault(grid_mode, result)
        else:
            _RESULTS[mode] = simulate_fleet(FLEET_CONFIG, mode,
                                            seed=FLEET_SEED)
    return _RESULTS[mode]
