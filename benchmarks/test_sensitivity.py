"""ABL-SENS — robustness of the headline gains to modelling assumptions.

The reproduction had to pick numbers the paper leaves open: how much pages
vary, where firmware bricks, how much headroom devices keep, how far RegenS
pushes tiredness. This bench sweeps each knob with full fleet simulations
and asserts the qualitative result — RegenS >= ShrinkS >= baseline — at
every point, and shows *where* the quantitative gains come from (the
variation tail and the early brick threshold).
"""

import pytest

from repro.flash.geometry import FlashGeometry
from repro.models.sensitivity import gains_are_robust, sweep_parameter
from repro.reporting.tables import format_table
from repro.sim.fleet import FleetConfig

CONFIG = FleetConfig(
    devices=16, geometry=FlashGeometry(blocks=64, fpages_per_block=32),
    pec_limit_l0=3000, dwpd=2.0, afr=0.0,
    horizon_days=4000, step_days=20)

SWEEPS = {
    "variation_sigma": [0.15, 0.35, 0.5],
    "brick_threshold": [0.01, 0.025, 0.05],
    "headroom_fraction": [0.07, 0.15, 0.28],
    "regen_max_level": [1, 2, 3],
    "write_amplification": [1.5, 2.0, 3.0],
}


@pytest.mark.benchmark(group="abl-sens")
def test_sensitivity_sweeps(benchmark, experiment_output):
    def run_all():
        return {parameter: sweep_parameter(CONFIG, parameter, values)
                for parameter, values in SWEEPS.items()}

    sweeps = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for parameter, points in sweeps.items():
        for point in points:
            rows.append([parameter, f"{point.value:g}",
                         f"{point.baseline_days:.0f}",
                         f"{point.shrink_gain:.2f}x",
                         f"{point.regen_gain:.2f}x"])
    experiment_output(
        "ABL-SENS — lifetime gains across modelling assumptions "
        "(ordering must hold everywhere)",
        format_table(["parameter", "value", "baseline life (d)",
                      "shrink gain", "regen gain"], rows))

    for parameter, points in sweeps.items():
        assert gains_are_robust(points), parameter
    # The gain's two engines, made visible:
    sigma_points = {p.value: p for p in sweeps["variation_sigma"]}
    assert sigma_points[0.5].regen_gain > sigma_points[0.15].regen_gain
    brick_points = {p.value: p for p in sweeps["brick_threshold"]}
    assert brick_points[0.01].regen_gain > brick_points[0.05].regen_gain
