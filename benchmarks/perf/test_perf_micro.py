"""Micro perf benches: buffered writes, remount replay, fleet step.

Each bench times one narrower hot path than the GC-heavy macro:

* ``ftl_write_micro`` — buffer/flush/allocation with little GC;
* ``ftl_write_endurance_micro`` — the same loop with the wear ledger
  installed (the endurance overhead contract), exporting a per-bench
  wear decomposition snapshot;
* ``io_roundtrip_micro`` — the DeviceQueue request/completion plumbing
  the cluster's default IO path now rides on;
* ``io_batch_roundtrip_micro`` — the same traffic through
  ``execute_vector`` IOVector batches (the batched hot path);
* ``io_roundtrip_reqtrace_micro`` — the same loop with request tracing
  installed at 1-in-64 sampling (the reqtrace overhead contract);
* ``traffic_engine_micro`` — one multi-tenant traffic-engine cell
  (arrival scheduling, admission control, queue dispatch, accounting);
* ``remount_micro`` — the OOB-replay rebuild scan (mount latency);
* ``fleet_step_micro`` — one vectorised fleet-model run (the unit the
  sweep runner parallelises over);
* ``fleet_sharded_micro`` — the same model through the sharded runner
  (worker fan-out, RNG replay, shard-major merge); the floor holds at
  ``jobs=1``, the meta records the measured speedup when cores allow.

All run under ``@pytest.mark.no_obs`` for timing purity; the harness
re-publishes results through the obs registry afterwards.
"""

from __future__ import annotations

import pytest

from benchmarks.perf import harness, workloads


@pytest.mark.no_obs
def test_ftl_write_micro():
    entry = harness.run("ftl_write_micro", workloads.ftl_write_micro)
    assert entry["ops"] == workloads.MICRO_OPS


@pytest.mark.no_obs
def test_ftl_write_endurance_micro():
    entry = harness.run("ftl_write_endurance_micro",
                        workloads.ftl_write_endurance_micro)
    assert entry["ops"] == workloads.MICRO_OPS
    # The ledger was live (not silently unbound) and left its artifact.
    assert entry["meta"]["programs"] > 0
    snapshot = harness._RESULTS_DIR / "endurance" / \
        "perf-ftl_write_endurance_micro.jsonl"
    assert snapshot.exists()


@pytest.mark.no_obs
def test_io_roundtrip_micro():
    entry = harness.run("io_roundtrip_micro", workloads.io_roundtrip_micro)
    assert entry["ops"] == workloads.IO_MICRO_OPS
    assert entry["meta"]["errors"] == 0
    assert entry["meta"]["mean_service_us"] > 0


@pytest.mark.no_obs
def test_io_batch_roundtrip_micro():
    entry = harness.run("io_batch_roundtrip_micro",
                        workloads.io_batch_roundtrip_micro)
    assert entry["ops"] == workloads.IO_MICRO_OPS
    assert entry["meta"]["errors"] == 0
    assert entry["meta"]["dispatched"] == workloads.IO_MICRO_OPS
    assert entry["meta"]["mean_service_us"] > 0


@pytest.mark.no_obs
def test_io_roundtrip_reqtrace_micro():
    entry = harness.run("io_roundtrip_reqtrace_micro",
                        workloads.io_roundtrip_reqtrace_micro)
    assert entry["ops"] == workloads.IO_MICRO_OPS
    assert entry["meta"]["errors"] == 0
    # 1-in-64 sampling actually sampled: the bench measures tracing on,
    # not a silently unbound tracer.
    assert entry["meta"]["sampled"] >= workloads.IO_MICRO_OPS // 64


@pytest.mark.no_obs
def test_traffic_engine_micro():
    entry = harness.run("traffic_engine_micro",
                        workloads.traffic_engine_micro)
    assert entry["ops"] > 0
    assert entry["meta"]["errors"] == 0
    # The traffic window actually ran (the bench is not all prefill).
    assert entry["meta"]["window_requests"] > entry["ops"] // 2


@pytest.mark.no_obs
def test_remount_micro():
    entry = harness.run("remount_micro", workloads.remount_micro)
    assert entry["meta"]["live_lbas"] > 0


@pytest.mark.no_obs
def test_fleet_step_micro():
    entry = harness.run("fleet_step_micro", workloads.fleet_step_micro)
    assert entry["meta"]["mean_lifetime_days"] > 0


@pytest.mark.no_obs
def test_fleet_sharded_micro():
    entry = harness.run("fleet_sharded_micro",
                        workloads.fleet_sharded_micro)
    assert entry["meta"]["mean_lifetime_days"] > 0
    assert entry["meta"]["shards"] == workloads.FLEET_SHARDED_CONFIG.shards
    assert entry["meta"]["jobs"] >= 1
