"""Perf-regression harness for the functional simulator's hot paths.

Unlike the paper-figure benches next door (which check *what* the
simulator computes), these benches check *how fast* it computes it.
Each workload in :mod:`benchmarks.perf.workloads` times one hot path —
steady-state GC-heavy FTL writes, OOB-replay remount, one fleet-model
run — and :mod:`benchmarks.perf.harness` appends the measurement to
``benchmarks/results/BENCH_perf.json`` (schema ``repro.bench_perf/v1``),
publishes ``repro_perf_*`` gauges through the :mod:`repro.obs` registry,
and, when ``REPRO_PERF_ENFORCE=1``, fails any bench that runs more than
``MAX_SLOWDOWN``x slower than its committed floor in
``benchmarks/perf/baseline.json``.
"""
