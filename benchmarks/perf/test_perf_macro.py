"""Macro perf bench: steady-state GC-heavy writes.

This is the workload the FTL fast path was optimised against: a
90%-full device under uniform random overwrites keeps the garbage
collector running on almost every flush, so allocation, valid-count
maintenance, victim selection and batched chip I/O all sit on the
timed path. Recorded history lives in
``benchmarks/results/BENCH_perf.json``; the pre-fast-path FTL measured
~16k ops/s here, the fast path ~50-60k.

``@pytest.mark.no_obs``: the registry's per-op instrument overhead
would contaminate the measurement — perf metrics are instead published
by the harness *after* timing.
"""

from __future__ import annotations

import pytest

from benchmarks.perf import harness, workloads


@pytest.mark.no_obs
def test_ftl_gc_heavy_macro():
    entry = harness.run("ftl_gc_heavy_macro", workloads.ftl_gc_heavy)
    # The workload is deterministic, so write amplification is a
    # behavioural fingerprint: a WAF shift means the *simulation*
    # changed, not just its speed.
    assert entry["meta"]["waf"] == pytest.approx(2.27, abs=0.1)
    assert entry["ops_per_sec"] > 0
