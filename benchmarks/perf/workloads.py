"""Timed hot-path workloads for the perf harness.

Each function builds its fixture *outside* the timed region, times one
hot loop with ``time.perf_counter()``, and returns
``{"ops", "wall_s", "meta"}`` for :func:`benchmarks.perf.harness.run`.
Workloads are deterministic (fixed seeds) so run-to-run variance is
machine noise, not simulation variance.

``ftl_gc_heavy`` is the headline macro-bench: a 90%-full device under
uniform random overwrites, which keeps the garbage collector
continuously busy — the workload the FTL fast path (incremental valid
counts, cached free-block index, list-backed mapping tables, batched
chip I/O) was built for.
"""

from __future__ import annotations

import time

import numpy as np

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.io import DeviceQueue, IORequest
from repro.sim.fleet import FleetConfig, simulate_fleet
from repro.ssd.ftl import FTLConfig, PageMappedFTL


# -- GC-heavy steady-state writes (macro) ------------------------------------

MACRO_GEOMETRY = FlashGeometry(blocks=64, fpages_per_block=64, channels=4)
MACRO_OPS = 20_000


def _build_macro_ftl() -> PageMappedFTL:
    chip = FlashChip(MACRO_GEOMETRY, seed=7, variation_sigma=0.3)
    return PageMappedFTL.for_chip(
        chip, FTLConfig(overprovision=0.12, buffer_opages=64))


def ftl_gc_heavy() -> dict:
    """Steady-state GC-heavy overwrites on a 90%-full device."""
    ftl = _build_macro_ftl()
    payload = bytes(64)
    fill = int(ftl.n_lbas * 0.9)
    for lba in range(fill):          # untimed warm-up: reach steady state
        ftl.write(lba, payload)
    lbas = np.random.default_rng(42).integers(0, fill, size=MACRO_OPS)
    lba_list = [int(lba) for lba in lbas]
    start = time.perf_counter()
    for lba in lba_list:
        ftl.write(lba, payload)
    ftl.flush()
    wall_s = time.perf_counter() - start
    waf = ftl.stats.flash_writes / max(ftl.stats.host_writes, 1)
    return {"ops": MACRO_OPS, "wall_s": wall_s,
            "meta": {"waf": round(waf, 3), "fill_fraction": 0.9,
                     "blocks": MACRO_GEOMETRY.blocks}}


# -- buffered write path (micro) ---------------------------------------------

MICRO_OPS = 6_000


def ftl_write_micro() -> dict:
    """Sequential-then-random writes on a small, lightly filled device:
    exercises the buffer/flush/allocation path with little GC."""
    geometry = FlashGeometry(blocks=32, fpages_per_block=32, channels=2)
    chip = FlashChip(geometry, seed=11, variation_sigma=0.2)
    ftl = PageMappedFTL.for_chip(
        chip, FTLConfig(overprovision=0.25, buffer_opages=16))
    payload = bytes(32)
    half = ftl.n_lbas // 2
    lbas = [int(x) for x in
            np.random.default_rng(13).integers(0, half, size=MICRO_OPS)]
    start = time.perf_counter()
    for lba in lbas:
        ftl.write(lba, payload)
    ftl.flush()
    wall_s = time.perf_counter() - start
    return {"ops": MICRO_OPS, "wall_s": wall_s,
            "meta": {"n_lbas": ftl.n_lbas}}


# -- buffered write path with wear ledger (micro) ----------------------------

def ftl_write_endurance_micro() -> dict:
    """:func:`ftl_write_micro` with the wear-provenance ledger installed
    — the measured side of the ≤5% endurance overhead contract
    (docs/OBSERVABILITY.md). Identical fixture and loop; the only delta
    is the per-device handle the chip binds at construction. The
    ledger's records are exported next to ``BENCH_perf.json`` so every
    perf run leaves a wear decomposition snapshot.
    """
    from repro.obs import endurance

    with endurance.installed(pec_limit=3000.0) as led:
        geometry = FlashGeometry(blocks=32, fpages_per_block=32,
                                 channels=2)
        chip = FlashChip(geometry, seed=11, variation_sigma=0.2)
        ftl = PageMappedFTL.for_chip(
            chip, FTLConfig(overprovision=0.25, buffer_opages=16))
        payload = bytes(32)
        half = ftl.n_lbas // 2
        lbas = [int(x) for x in
                np.random.default_rng(13).integers(0, half,
                                                   size=MICRO_OPS)]
        start = time.perf_counter()
        for lba in lbas:
            ftl.write(lba, payload)
        ftl.flush()
        wall_s = time.perf_counter() - start
        handle = chip._endurance
        from benchmarks.perf.harness import export_endurance
        export_endurance("ftl_write_endurance_micro", led)
        return {"ops": MICRO_OPS, "wall_s": wall_s,
                "meta": {"n_lbas": ftl.n_lbas,
                         "programs": handle.total_programs,
                         "erases": handle.total_erases,
                         "waf": round(handle.waf() or 0.0, 3)}}


# -- queued IO roundtrip (micro) ---------------------------------------------

IO_MICRO_OPS = 8_000


def io_roundtrip_micro() -> dict:
    """Single-LBA reads through :class:`repro.io.queue.DeviceQueue`.

    Times the full request path — ``IORequest`` construction and
    validation, submit, dispatch, completion accounting — on top of the
    underlying device read. Guards the queue plumbing against becoming
    a per-request hot-path cost now that the cluster defaults to it."""
    geometry = FlashGeometry(blocks=32, fpages_per_block=32, channels=2)
    chip = FlashChip(geometry, seed=23, variation_sigma=0.2)
    ftl = PageMappedFTL.for_chip(
        chip, FTLConfig(overprovision=0.25, buffer_opages=16))
    payload = bytes(32)
    fill = ftl.n_lbas // 2
    for lba in range(fill):
        ftl.write(lba, payload)
    ftl.flush()
    queue = DeviceQueue(ftl)
    lbas = [int(x) for x in
            np.random.default_rng(29).integers(0, fill, size=IO_MICRO_OPS)]
    start = time.perf_counter()
    for lba in lbas:
        queue.execute(IORequest(op="read", lba=lba))
    wall_s = time.perf_counter() - start
    stats = queue.stats
    return {"ops": IO_MICRO_OPS, "wall_s": wall_s,
            "meta": {"dispatched": stats.dispatched,
                     "errors": stats.errors,
                     "mean_service_us": round(stats.mean_service_us, 3),
                     "mean_latency_us": round(stats.mean_latency_us, 3)}}


# -- batched IO roundtrip (micro) --------------------------------------------

IO_BATCH_SIZE = 256


def io_batch_roundtrip_micro() -> dict:
    """:func:`io_roundtrip_micro` traffic submitted as IOVector batches.

    Identical fixture, identical reads in identical order — the only
    delta is the submission surface: ``execute_vector`` over
    ``IO_BATCH_SIZE``-request vectors instead of one ``execute`` per
    request. Measures what the batched hot path actually buys (the
    read-run kernel, columnar completion state, amortised dispatch)
    against the same 45k-ops/s-floor scalar loop."""
    from repro.io.vector import IOVector

    geometry = FlashGeometry(blocks=32, fpages_per_block=32, channels=2)
    chip = FlashChip(geometry, seed=23, variation_sigma=0.2)
    ftl = PageMappedFTL.for_chip(
        chip, FTLConfig(overprovision=0.25, buffer_opages=16))
    payload = bytes(32)
    fill = ftl.n_lbas // 2
    for lba in range(fill):
        ftl.write(lba, payload)
    ftl.flush()
    queue = DeviceQueue(ftl)
    lbas = np.random.default_rng(29).integers(0, fill, size=IO_MICRO_OPS)
    vectors = []
    for base in range(0, IO_MICRO_OPS, IO_BATCH_SIZE):
        vector = IOVector(capacity=IO_BATCH_SIZE)
        for lba in lbas[base:base + IO_BATCH_SIZE]:
            vector.append("read", lba=int(lba))
        vectors.append(vector)
    start = time.perf_counter()
    for vector in vectors:
        queue.execute_vector(vector)
    wall_s = time.perf_counter() - start
    stats = queue.stats
    return {"ops": IO_MICRO_OPS, "wall_s": wall_s,
            "meta": {"dispatched": stats.dispatched,
                     "errors": stats.errors,
                     "batch_size": IO_BATCH_SIZE,
                     "mean_service_us": round(stats.mean_service_us, 3),
                     "mean_latency_us": round(stats.mean_latency_us, 3)}}


# -- queued IO roundtrip with request tracing (micro) ------------------------

def io_roundtrip_reqtrace_micro() -> dict:
    """:func:`io_roundtrip_micro` with request tracing installed at the
    default 1-in-64 sampling — the measured side of the ≤5% reqtrace
    overhead contract (docs/OBSERVABILITY.md). Identical fixture and
    loop; the only delta is the tracer the queue binds at construction.
    """
    from repro.obs import reqtrace

    with reqtrace.installed(reqtrace.ReqTracer(seed=3, every=64)) \
            as tracer:
        geometry = FlashGeometry(blocks=32, fpages_per_block=32,
                                 channels=2)
        chip = FlashChip(geometry, seed=23, variation_sigma=0.2)
        ftl = PageMappedFTL.for_chip(
            chip, FTLConfig(overprovision=0.25, buffer_opages=16))
        payload = bytes(32)
        fill = ftl.n_lbas // 2
        for lba in range(fill):
            ftl.write(lba, payload)
        ftl.flush()
        queue = DeviceQueue(ftl)
        lbas = [int(x) for x in
                np.random.default_rng(29).integers(0, fill,
                                                   size=IO_MICRO_OPS)]
        start = time.perf_counter()
        for lba in lbas:
            queue.execute(IORequest(op="read", lba=lba))
        wall_s = time.perf_counter() - start
        stats = queue.stats
        return {"ops": IO_MICRO_OPS, "wall_s": wall_s,
                "meta": {"dispatched": stats.dispatched,
                         "errors": stats.errors,
                         "sampled": tracer.sampled,
                         "every": 64}}


# -- OOB-replay remount (micro) ----------------------------------------------

def remount_micro() -> dict:
    """Time ``PageMappedFTL.remount``'s full-device OOB replay scan.

    Ops unit: fPages scanned (the rebuild is linear in flash size)."""
    geometry = FlashGeometry(blocks=48, fpages_per_block=48, channels=2)
    chip = FlashChip(geometry, seed=17, variation_sigma=0.2)
    config = FTLConfig(overprovision=0.2, buffer_opages=32)
    ftl = PageMappedFTL.for_chip(chip, config)
    payload = bytes(48)
    rng = np.random.default_rng(19)
    fill = int(ftl.n_lbas * 0.8)
    for lba in range(fill):
        ftl.write(lba, payload)
    for lba in rng.integers(0, fill, size=4_000):
        ftl.write(int(lba), payload)       # stale copies for replay to skip
    ftl.flush()
    entries = [(lba, ftl.buffer.get(lba)) for lba in ftl.buffer.keys()]
    rounds = 3
    start = time.perf_counter()
    for _ in range(rounds):
        recovered = PageMappedFTL.remount(chip, ftl.n_lbas, config, entries)
    wall_s = time.perf_counter() - start
    ops = rounds * geometry.total_fpages
    return {"ops": ops, "wall_s": wall_s,
            "meta": {"rounds": rounds, "live_lbas": recovered.live_lbas()}}


# -- multi-tenant traffic engine (micro) -------------------------------------

TRAFFIC_CONFIG = dict(tenants=32, duration_us=600_000.0, cells=1,
                      utilisation=0.8, admission="defer",
                      read_fraction=0.5)


def traffic_engine_micro() -> dict:
    """One deterministic traffic-engine cell, end to end.

    Times :func:`repro.workloads.engine.run_cell` — generator draws,
    arrival-process scheduling, admission control, DeviceQueue dispatch
    and per-tenant accounting — for a 32-tenant open/defer mix over a
    600 ms simulated window. Ops unit: queue-dispatched requests
    (prefill + pilot probes + traffic window), so the floor guards the
    per-request cost of the whole engine loop, not just the device."""
    from repro.workloads.engine import EngineConfig, run_cell

    config = EngineConfig(**TRAFFIC_CONFIG)
    start = time.perf_counter()
    cell = run_cell(config, 0, seed=31)
    wall_s = time.perf_counter() - start
    queue = cell["queue"]
    return {"ops": queue["dispatched"], "wall_s": wall_s,
            "meta": {"tenants": config.tenants,
                     "window_requests": cell["window"]["requests"],
                     "errors": queue["errors"],
                     "mean_service_us": queue["mean_service_us"],
                     "p99_latency_us": cell["window"]["p99_latency_us"]}}


# -- analytic fleet step (micro) ---------------------------------------------

FLEET_MICRO_CONFIG = FleetConfig(
    devices=16,
    geometry=FlashGeometry(blocks=64, fpages_per_block=64),
    pec_limit_l0=3000.0,
    variation_sigma=0.35,
    dwpd=2.0,
    write_amplification=2.0,
    afr=0.01,
    horizon_days=1825,
    step_days=10,
)


def fleet_step_micro() -> dict:
    """One vectorised fleet-model run; ops = device-steps advanced."""
    steps = FLEET_MICRO_CONFIG.horizon_days // FLEET_MICRO_CONFIG.step_days
    start = time.perf_counter()
    result = simulate_fleet(FLEET_MICRO_CONFIG, "regen", seed=2025)
    wall_s = time.perf_counter() - start
    ops = FLEET_MICRO_CONFIG.devices * steps
    return {"ops": ops, "wall_s": wall_s,
            "meta": {"mode": "regen",
                     "mean_lifetime_days":
                         round(result.mean_lifetime_days(), 1)}}


# -- sharded fleet run (micro) -----------------------------------------------

#: Default sharded-fleet bench shape. Big enough that per-shard work
#: dominates pool overheads; short horizon keeps the CI single-core run
#: in budget. ``REPRO_PERF_FLEET_DEVICES`` / ``REPRO_PERF_FLEET_JOBS``
#: scale it up on real hardware (the 10k-device / 8-job configuration
#: the speedup claim in docs/SHARDING.md was measured with).
FLEET_SHARDED_CONFIG = FleetConfig(
    devices=512,
    geometry=FlashGeometry(blocks=64, fpages_per_block=64),
    pec_limit_l0=3000.0,
    variation_sigma=0.35,
    dwpd=2.0,
    write_amplification=2.0,
    afr=0.01,
    horizon_days=365,
    step_days=5,
    shards=8,
)


def fleet_sharded_micro() -> dict:
    """One sharded fleet run; ops = device-steps advanced.

    Times :func:`repro.sim.shard.simulate_fleet_sharded` end to end —
    worker fan-out, per-shard RNG replay, device slicing, and the
    canonical shard-major merge. Worker count defaults to all cores but
    one (capped at the shard count), so the gate floor must hold at
    ``jobs=1``: on a single-core runner the bench measures the sharding
    *overhead* over the serial path, on real hardware the speedup. When
    at least two workers run, a serial reference run is timed too and
    the measured speedup lands in ``meta``.
    """
    import os
    from dataclasses import replace as dc_replace

    from repro.sim.shard import simulate_fleet_sharded

    devices = int(os.environ.get("REPRO_PERF_FLEET_DEVICES", "0")) \
        or FLEET_SHARDED_CONFIG.devices
    config = dc_replace(FLEET_SHARDED_CONFIG, devices=devices)
    jobs = int(os.environ.get("REPRO_PERF_FLEET_JOBS", "0")) \
        or max(1, min(config.shards, (os.cpu_count() or 1) - 1))
    steps = config.horizon_days // config.step_days
    start = time.perf_counter()
    result = simulate_fleet_sharded(config, "regen", seed=2025, jobs=jobs)
    wall_s = time.perf_counter() - start
    meta = {"mode": "regen", "devices": devices,
            "shards": config.shards, "jobs": jobs,
            "mean_lifetime_days": round(result.mean_lifetime_days(), 1)}
    if jobs >= 2:
        serial_start = time.perf_counter()
        simulate_fleet(config, "regen", seed=2025)
        serial_wall = time.perf_counter() - serial_start
        meta["serial_wall_s"] = round(serial_wall, 4)
        meta["speedup"] = round(serial_wall / wall_s, 2)
    return {"ops": devices * steps, "wall_s": wall_s, "meta": meta}
