"""Measurement log, schema validation and slowdown gate for perf benches.

Design notes:

* **Append-only history.** ``BENCH_perf.json`` keeps the last
  ``HISTORY_CAP`` entries per bench so a slow regression shows up as a
  trajectory, not just a single bad sample. The file is committed — CI
  diffs behaviour against the repo's own recorded past, not against
  whatever machine it happens to run on today.
* **Conservative floors.** Wall-clock on shared runners is noisy (the
  same code has measured anywhere between 0.6x and 1.0x of its typical
  throughput here), so ``baseline.json`` floors are set well below
  typical numbers and the gate only fires at ``MAX_SLOWDOWN``x below
  the floor. The gate is for *catastrophic* regressions — reintroducing
  an O(n) scan on the write path — not for 10% noise.
* **Opt-in enforcement.** Local runs always record; only
  ``REPRO_PERF_ENFORCE=1`` (set in CI's perf-smoke job) turns a miss
  into a failure.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro import obs

PERF_SCHEMA = "repro.bench_perf/v1"

_RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
RESULTS_PATH = _RESULTS_DIR / "BENCH_perf.json"
BASELINE_PATH = Path(__file__).resolve().parent / "baseline.json"

#: Entries of history kept per bench in BENCH_perf.json.
HISTORY_CAP = 50
#: A bench fails (under enforcement) below ``baseline / MAX_SLOWDOWN``.
MAX_SLOWDOWN = 2.0
#: Measurement rounds per bench; the *best* round is recorded. Machine
#: noise on shared runners only ever subtracts throughput (the committed
#: history swings 273k<->450k ops/s on identical code), so the max over a
#: few rounds estimates the code's true speed far more stably than any
#: single run — which is what makes floor ratcheting safe.
DEFAULT_ROUNDS = 3

_ENTRY_KEYS = ("at", "ops", "wall_s", "ops_per_sec", "meta")


def enforcing() -> bool:
    """True when regressions should fail, not just be recorded."""
    return os.environ.get("REPRO_PERF_ENFORCE", "") == "1"


# -- document I/O ------------------------------------------------------------

def load_document(path: Path = RESULTS_PATH) -> dict:
    """Load ``BENCH_perf.json``; a missing file is an empty history."""
    if not path.exists():
        return {"schema": PERF_SCHEMA, "benches": {}}
    document = json.loads(path.read_text())
    validate_perf_document(document)
    return document


def validate_perf_document(document: dict) -> None:
    """Schema check for ``repro.bench_perf/v1`` documents."""
    if not isinstance(document, dict):
        raise ValueError("perf document must be a JSON object")
    if document.get("schema") != PERF_SCHEMA:
        raise ValueError(
            f"unsupported perf schema: {document.get('schema')!r}")
    benches = document.get("benches")
    if not isinstance(benches, dict):
        raise ValueError("perf document missing 'benches' object")
    for name, entries in benches.items():
        if not isinstance(entries, list) or not entries:
            raise ValueError(f"bench {name!r} has no entries")
        for entry in entries:
            for key in _ENTRY_KEYS:
                if key not in entry:
                    raise ValueError(
                        f"bench {name!r} entry missing {key!r}")
            if entry["ops_per_sec"] <= 0 or entry["wall_s"] <= 0:
                raise ValueError(
                    f"bench {name!r} entry has non-positive timing")


def record(name: str, ops: int, wall_s: float,
           meta: dict | None = None) -> dict:
    """Append one measurement, publish obs gauges, return the entry."""
    entry = {
        "at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "ops": int(ops),
        "wall_s": round(float(wall_s), 6),
        "ops_per_sec": round(ops / wall_s, 2),
        "meta": meta or {},
    }
    document = load_document()
    history = document["benches"].setdefault(name, [])
    history.append(entry)
    del history[:-HISTORY_CAP]
    _RESULTS_DIR.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n")
    _publish_metrics(name, entry)
    return entry


# -- obs surfacing -----------------------------------------------------------

def _set_gauges(registry, name: str, entry: dict) -> None:
    ops_gauge = registry.gauge(
        "repro_perf_ops_per_second",
        help="Throughput of the named perf bench's hot loop",
        unit="ops/s", labelnames=("bench",))
    wall_gauge = registry.gauge(
        "repro_perf_wall_seconds",
        help="Wall-clock of the named perf bench's hot loop",
        unit="s", labelnames=("bench",))
    ops_gauge.labels(bench=name).set(entry["ops_per_sec"])
    wall_gauge.labels(bench=name).set(entry["wall_s"])


def _publish_metrics(name: str, entry: dict) -> None:
    """Surface the measurement as ``repro_perf_*`` gauges.

    Perf benches run with observability *off* (timing purity — see
    ``@pytest.mark.no_obs``), so when no registry is live we open a
    short-lived one purely to export a snapshot next to the other bench
    telemetry under ``benchmarks/results/metrics/``.
    """
    if obs.metrics_enabled():
        _set_gauges(obs.metrics(), name, entry)
        return
    with obs.enabled() as (registry, _tracer):
        _set_gauges(registry, name, entry)
        metrics_dir = _RESULTS_DIR / "metrics"
        metrics_dir.mkdir(parents=True, exist_ok=True)
        registry.write_json(metrics_dir / f"perf-{name}.json")


def export_endurance(name: str, ledger) -> Path:
    """Write a bench's wear-ledger records next to ``BENCH_perf.json``.

    Per-bench ``repro.obs.endurance/v1`` snapshots land under
    ``benchmarks/results/endurance/`` so a perf run documents not just
    how fast the hot loop was but what wear it caused — the same
    decomposition ``repro wear report`` renders.
    """
    wear_dir = _RESULTS_DIR / "endurance"
    return ledger.export_jsonl(wear_dir / f"perf-{name}.jsonl",
                               meta={"bench": name})


# -- regression gate ---------------------------------------------------------

def baseline_for(name: str) -> float | None:
    """Committed ops/s floor for ``name`` (None: no floor recorded)."""
    if not BASELINE_PATH.exists():
        return None
    floors = json.loads(BASELINE_PATH.read_text())
    value = floors.get("benches", {}).get(name)
    return float(value) if value is not None else None


def check(name: str, ops_per_sec: float) -> str | None:
    """Return a failure message if ``name`` breached its floor."""
    floor = baseline_for(name)
    if floor is None:
        return None
    threshold = floor / MAX_SLOWDOWN
    if ops_per_sec < threshold:
        return (f"perf regression: {name} ran at {ops_per_sec:.0f} ops/s, "
                f"more than {MAX_SLOWDOWN:.0f}x below its baseline floor "
                f"of {floor:.0f} ops/s (threshold {threshold:.0f})")
    return None


def enforce(name: str, ops_per_sec: float) -> None:
    """Fail the bench on a breached floor when enforcement is on."""
    message = check(name, ops_per_sec)
    if message and enforcing():
        raise AssertionError(message)
    if message:
        print(f"[perf] WARNING (not enforced): {message}", file=sys.stderr)


def rounds() -> int:
    """Measurement rounds per bench (``REPRO_PERF_ROUNDS`` overrides)."""
    try:
        return max(1, int(os.environ.get("REPRO_PERF_ROUNDS",
                                         DEFAULT_ROUNDS)))
    except ValueError:
        return DEFAULT_ROUNDS


def run(name: str, workload) -> dict:
    """Measure ``workload`` (a zero-arg callable returning
    ``{"ops", "wall_s", "meta"}``) over :func:`rounds` rounds, record
    the best round and apply the gate to it.

    Workloads build their fixtures inside the callable, so every round
    is an independent, deterministic measurement; the recorded entry is
    the fastest one (see ``DEFAULT_ROUNDS`` for why best-of, not last).
    """
    best = None
    for _ in range(rounds()):
        result = workload()
        if best is None or (result["ops"] / result["wall_s"]
                            > best["ops"] / best["wall_s"]):
            best = result
    meta = dict(best.get("meta") or {})
    meta["rounds"] = rounds()
    entry = record(name, best["ops"], best["wall_s"], meta)
    print(f"[perf] {name}: {entry['ops_per_sec']:.0f} ops/s "
          f"({entry['wall_s']:.3f}s for {entry['ops']} ops, "
          f"best of {meta['rounds']})")
    enforce(name, entry["ops_per_sec"])
    return entry


# -- CI entry point ----------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    """``python -m benchmarks.perf.harness --check``: validate the
    committed BENCH_perf.json and gate each bench's *latest* entry
    against its baseline floor. Exit 0 on pass, 1 on any breach or
    schema error."""
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv != ["--check"]:
        print("usage: python -m benchmarks.perf.harness [--check]",
              file=sys.stderr)
        return 2
    try:
        document = load_document()
    except (ValueError, json.JSONDecodeError) as error:
        print(f"[perf] schema error: {error}", file=sys.stderr)
        return 1
    failures = 0
    for name, entries in sorted(document["benches"].items()):
        latest = entries[-1]
        message = check(name, latest["ops_per_sec"])
        status = "FAIL" if message else "ok"
        floor = baseline_for(name)
        floor_text = f"floor {floor:.0f}" if floor else "no floor"
        print(f"[perf] {status:>4} {name}: "
              f"{latest['ops_per_sec']:.0f} ops/s ({floor_text})")
        if message:
            print(f"[perf]      {message}", file=sys.stderr)
            failures += 1
    if not document["benches"]:
        print("[perf] no recorded benches", file=sys.stderr)
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
