"""TAB-COST — total cost of ownership (§4.4, Eq. 4).

Paper: "Salamander achieves 13% and 25% cost savings for ShrinkS and RegenS
accordingly", and "if we assume half the cost is operational costs,
Salamander lowers costs by 6-14%". The bench evaluates Eq. 4 with the
paper's constants and sweeps the operational share.
"""

import numpy as np
import pytest

from repro.models.tco import (
    RU_REGENS,
    RU_SHRINKS,
    TCOParams,
    cost_upgrade_rate,
    opex_sensitivity,
    tco_savings,
)
from repro.reporting.tables import format_table


def compute_tco():
    headline = {}
    for mode, ru in (("shrinks", RU_SHRINKS), ("regens", RU_REGENS)):
        params = TCOParams(upgrade_rate=ru)
        headline[mode] = (cost_upgrade_rate(params), tco_savings(params))
    sweeps = {mode: opex_sensitivity(ru, np.linspace(0.0, 0.8, 9))
              for mode, ru in (("shrinks", RU_SHRINKS),
                               ("regens", RU_REGENS))}
    return headline, sweeps


@pytest.mark.benchmark(group="tab-cost")
def test_tco_savings(benchmark, experiment_output):
    headline, sweeps = benchmark(compute_tco)
    rows = [[mode, f"{cru:.3f}", f"{savings:+.1%}"]
            for mode, (cru, savings) in headline.items()]
    experiment_output(
        "TAB-COST — Eq. 4 headline (paper: 13 % ShrinkS, 25 % RegenS at "
        "f_opex = 0.14)",
        format_table(["mode", "CRu", "TCO savings"], rows))
    sweep_rows = []
    for f_opex, shrink_savings in sweeps["shrinks"]:
        regen_savings = dict(sweeps["regens"])[f_opex]
        sweep_rows.append([f"{f_opex:.2f}", f"{shrink_savings:+.1%}",
                           f"{regen_savings:+.1%}"])
    experiment_output(
        "TAB-COST (sensitivity) — savings vs operational cost share "
        "(paper: 6-14 % at f_opex = 0.5)",
        format_table(["f_opex", "shrinks", "regens"], sweep_rows))

    assert headline["shrinks"][1] == pytest.approx(0.13, abs=0.01)
    assert headline["regens"][1] == pytest.approx(0.25, abs=0.015)
    shrink_half = dict(sweeps["shrinks"])[0.5]
    regen_half = dict(sweeps["regens"])[0.5]
    assert 0.05 <= shrink_half <= regen_half <= 0.16
