"""Wear-ledger overhead: off must cost ~nothing, installed ≤ ~5%.

The endurance contract (docs/OBSERVABILITY.md) mirrors reqtrace's:

* **Disabled** — chips and FTLs bind ``endurance.ledger()`` once at
  construction; with nothing installed the program/erase hot path is a
  single ``is None`` test. The write loop here must match the
  committed ``ftl_write_micro`` floor untouched.
* **Installed** — every program and erase pays two dict increments and
  a cause-stack read; no RNG, no clock, no allocation. That bounded
  cost is the ≤5% target the ``ftl_write_endurance_micro`` perf floor
  enforces in CI.

Both sides run on one fixture so the pytest-benchmark table shows the
delta directly; the hard gate lives in ``benchmarks/perf/`` (floors
under ``REPRO_PERF_ENFORCE=1``).
"""

from __future__ import annotations

import pytest

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.obs import endurance
from repro.ssd.ftl import FTLConfig, PageMappedFTL

WRITES = 4_000


def _build_ftl() -> PageMappedFTL:
    """A small device sized so the write loop forces steady GC."""
    geometry = FlashGeometry(blocks=32, fpages_per_block=32, channels=2)
    chip = FlashChip(geometry, seed=23, variation_sigma=0.2)
    return PageMappedFTL.for_chip(
        chip, FTLConfig(overprovision=0.25, buffer_opages=16))


def _write_loop(ftl: PageMappedFTL) -> int:
    payload = bytes(32)
    half = ftl.n_lbas // 2
    for i in range(WRITES):
        ftl.write((i * 7) % half, payload)
    ftl.flush()
    return ftl.stats.host_writes


@pytest.mark.no_obs
def test_ftl_write_ledger_disabled(benchmark):
    assert endurance.ledger() is None
    ftl = _build_ftl()
    # Bound off at construction: pure is-None hot path on both layers.
    assert ftl._endurance is None
    assert ftl.chip._endurance is None
    host_writes = benchmark(_write_loop, ftl)
    assert host_writes >= WRITES


@pytest.mark.no_obs
def test_ftl_write_ledger_installed(benchmark):
    with endurance.installed() as led:
        ftl = _build_ftl()
        handle = ftl.chip._endurance
        assert handle is led.devices["wear0"]
        host_writes = benchmark(_write_loop, ftl)
    assert host_writes >= WRITES
    # The bench measured a live ledger, not a silently unbound one —
    # and its counters still tie out exactly against the chip.
    assert handle.total_programs == ftl.chip.stats.programs > 0
    assert handle.total_erases == ftl.chip.stats.erases > 0
    assert sum(handle.program_opages.values()) \
        == handle.total_program_opages
