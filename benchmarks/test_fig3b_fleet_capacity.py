"""FIG3B — available fleet capacity over time (Fig. 3b).

Same fleet as FIG3A; the y-axis is total advertised capacity. The paper's
point: the baseline loses capacity in device-sized cliffs, Salamander
drains gradually and retains more capacity at every age.
"""

import numpy as np
import pytest

from benchmarks.fleet_common import fleet_result
from repro.reporting.series import Series
from repro.reporting.tables import render_series
from repro.units import GIB


@pytest.mark.benchmark(group="fig3b")
def test_fig3b_fleet_capacity(benchmark, experiment_output):
    results = benchmark.pedantic(
        lambda: {mode: fleet_result(mode)
                 for mode in ("baseline", "cvss", "shrink", "regen")},
        rounds=1, iterations=1)
    series = [Series(mode, r.days / 365.0,
                     r.capacity_bytes / r.initial_capacity_bytes,
                     x_label="years", y_label="capacity fraction")
              for mode, r in results.items()]
    experiment_output(
        "FIG3B — fleet capacity over time (paper Fig. 3b; gradual decline "
        "instead of cliffs)",
        render_series(series, points=12))

    # Shape assertions: at the baseline's mean lifetime, Salamander fleets
    # retain strictly more capacity, regen the most.
    day = results["baseline"].mean_lifetime_days()
    fractions = {m: r.capacity_fraction_at(day) for m, r in results.items()}
    assert fractions["baseline"] < fractions["shrink"] <= 1.0
    assert fractions["shrink"] <= fractions["regen"]
    # Baseline declines in whole-device steps; shrink in smaller slivers.
    base_drops = results["baseline"].capacity_lost_bytes
    shrink_drops = results["shrink"].capacity_lost_bytes
    assert np.count_nonzero(shrink_drops) > np.count_nonzero(base_drops)
