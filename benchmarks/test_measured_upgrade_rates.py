"""EXT-RU — measuring the upgrade rates the paper assumes (§2.1, §4.1, §4.4).

The paper plugs assumed upgrade rates (Ru = 0.9/0.8 conservative, 0.83/0.66
raw) into Eq. 3/Eq. 4. This extension *measures* Ru with a datacenter
replacement simulation: monolithic fleets are preemptively retired at five
years (§2.1's field practice), Salamander fleets run to their capacity
floor, and every discipline's purchases over 15 years are counted. The
measured Ru and the measured mean shrunk capacity (Cap(B_new) in Eq. 4)
then feed the paper's own carbon/cost models.
"""

import pytest

from repro.flash.geometry import FlashGeometry
from repro.models.carbon import CarbonParams, carbon_savings
from repro.models.tco import TCOParams, tco_savings
from repro.reporting.tables import format_table
from repro.sim.fleet import FleetConfig
from repro.sim.replacement import ReplacementConfig, measured_upgrade_rates

CONFIG = ReplacementConfig(
    fleet=FleetConfig(
        devices=32,
        geometry=FlashGeometry(blocks=64, fpages_per_block=32),
        pec_limit_l0=3000, dwpd=0.7, afr=0.01, step_days=10),
    slots=100, horizon_years=15, age_limit_years=5)


@pytest.mark.benchmark(group="ext-ru")
def test_measured_upgrade_rates(benchmark, experiment_output):
    results = benchmark.pedantic(
        lambda: measured_upgrade_rates(CONFIG, seed=9),
        rounds=1, iterations=1)
    base = results["baseline"].purchases
    rows = []
    for mode, r in results.items():
        ru = r.purchases / base
        carbon = carbon_savings(CarbonParams(upgrade_rate=min(1.0, ru)))
        cost = tco_savings(TCOParams(
            upgrade_rate=min(1.0, ru),
            cap_new=round(1 - r.mean_capacity_fraction, 2)))
        rows.append([
            mode, r.purchases, f"{ru:.2f}",
            f"{r.mean_service_life_days:.0f}",
            f"{r.preempted_fraction:.0%}",
            f"{r.mean_capacity_fraction:.2f}",
            f"{carbon:+.1%}", f"{cost:+.1%}",
        ])
    experiment_output(
        "EXT-RU — measured upgrade rates -> Eq. 3 / Eq. 4 "
        "(paper assumed Ru = 0.83/0.66; preemptive retirement at 5 y)",
        format_table(["mode", "purchases (15 y)", "measured Ru",
                      "mean life (d)", "preempted", "mean capacity",
                      "CO2e savings", "TCO savings"], rows))

    ru = {mode: r.purchases / base for mode, r in results.items()}
    # The paper's assumed rates should be conservative relative to a
    # datacenter that actually retires monolithic drives preemptively.
    assert ru["shrink"] < 0.85
    assert ru["regen"] < ru["shrink"]
    assert ru["cvss"] > ru["shrink"]  # CVSS is still preemptively retired
    assert results["baseline"].preempted_fraction > 0.2
