"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP 660
editable installs fail; this shim lets ``pip install -e .`` fall back to
``setup.py develop``. All metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
