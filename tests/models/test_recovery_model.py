"""Unit tests for the §4.3 recovery-traffic model."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.flash.geometry import FlashGeometry
from repro.models.recovery import (
    RecoveryModel,
    recovery_traffic_summary,
    total_failed_capacity_fraction,
)
from repro.sim.fleet import FleetConfig, simulate_fleet


class TestAnalyticBound:
    def test_shrink_equals_baseline(self):
        # §4.3: "the same total number of LBAs fail over time".
        assert total_failed_capacity_fraction(regen_max_level=0) == 1.0

    def test_regen_l1_adds_three_quarters(self):
        assert total_failed_capacity_fraction(regen_max_level=1) == \
            pytest.approx(1.75)

    def test_regen_l2_adds_half_more(self):
        assert total_failed_capacity_fraction(regen_max_level=2) == \
            pytest.approx(2.25)

    def test_validation(self):
        with pytest.raises(ConfigError):
            total_failed_capacity_fraction(regen_max_level=4)
        with pytest.raises(ConfigError):
            total_failed_capacity_fraction(opages_per_fpage=0)


class TestTrafficModel:
    def test_bytes_scaling(self):
        model = RecoveryModel(utilization=0.5, read_write_cost=2.0)
        assert model.traffic_bytes(1000) == pytest.approx(1000.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            RecoveryModel().traffic_bytes(-1)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RecoveryModel(utilization=0.0)
        with pytest.raises(ConfigError):
            RecoveryModel(read_write_cost=0.0)


class TestFleetIntegration:
    @pytest.fixture(scope="class")
    def results(self):
        config = FleetConfig(
            devices=12, geometry=FlashGeometry(blocks=64, fpages_per_block=32),
            pec_limit_l0=300, afr=0.0, horizon_days=1200, step_days=20)
        return {mode: simulate_fleet(config, mode, seed=5)
                for mode in ("baseline", "shrink", "regen")}

    def test_totals_comparable_without_regen(self, results):
        model = RecoveryModel()
        base = model.traffic_series(results["baseline"]).sum()
        shrink = model.traffic_series(results["shrink"]).sum()
        assert shrink == pytest.approx(base, rel=0.05)

    def test_salamander_peak_much_lower(self, results):
        model = RecoveryModel()
        assert (model.peak_step_traffic(results["shrink"])
                < model.peak_step_traffic(results["baseline"]))

    def test_cumulative_is_monotone(self, results):
        model = RecoveryModel()
        cumulative = model.cumulative_traffic(results["shrink"])
        assert np.all(np.diff(cumulative) >= 0)

    def test_summary_rows(self, results):
        rows = recovery_traffic_summary(results)
        by_mode = {row["mode"]: row for row in rows}
        assert by_mode["regen"]["analytic_failed_fraction"] == \
            pytest.approx(1.75)
        assert by_mode["baseline"]["analytic_failed_fraction"] == 1.0
        assert by_mode["shrink"]["total_traffic_bytes"] > 0
