"""Unit tests for the Fig. 2 trade-off model."""

import pytest

from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.models.lifetime import tiredness_tradeoff


class TestFig2Curve:
    def test_default_reproduces_paper_anchors(self):
        points = tiredness_tradeoff()
        by_level = {p.level: p for p in points}
        assert by_level[0].pec_gain == pytest.approx(0.0)
        assert by_level[0].capacity_fraction == 1.0
        assert by_level[0].code_rate == pytest.approx(16 / 18)
        # The paper's Fig. 2 anchor: +50 % lifetime at L1.
        assert by_level[1].pec_gain == pytest.approx(0.5, abs=1e-6)
        assert by_level[1].capacity_fraction == 0.75

    def test_diminishing_marginal_gains(self):
        points = tiredness_tradeoff()
        marginals = [p.marginal_gain for p in points[1:]]
        assert all(m > 0 for m in marginals)
        assert all(a > b for a, b in zip(marginals, marginals[1:]))

    def test_l2_marginal_smaller_than_l1(self):
        # "realistically, RegenS should limit itself to L < 2": the L2 step
        # buys less extra lifetime than L1 while costing the same capacity.
        points = {p.level: p for p in tiredness_tradeoff()}
        assert points[2].marginal_gain < points[1].marginal_gain

    def test_respects_custom_anchor(self):
        policy = TirednessPolicy()
        model = calibrate_power_law(policy, pec_limit_l0=1000, l1_gain=0.25)
        points = tiredness_tradeoff(policy, model)
        assert points[1].pec_gain == pytest.approx(0.25, abs=1e-6)
        assert points[0].pec_limit == pytest.approx(1000)

    def test_other_fpage_sizes(self):
        # §4.2 mentions fPage < 16 KiB; an 8 KiB fPage has two oPages.
        geometry = FlashGeometry(opages_per_fpage=2, spare_bytes=1024)
        policy = TirednessPolicy(geometry=geometry)
        points = tiredness_tradeoff(policy)
        assert len(points) == 2
        assert points[1].capacity_fraction == 0.5

    def test_pec_limit_column_consistent_with_gain(self):
        points = tiredness_tradeoff(pec_limit_l0=2000)
        for point in points:
            assert point.pec_limit == pytest.approx(
                2000 * (1 + point.pec_gain), rel=1e-6)
