"""Unit tests for the Eq. 4 cost model."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models.tco import (
    RU_REGENS,
    RU_SHRINKS,
    TCOParams,
    cost_upgrade_rate,
    opex_sensitivity,
    tco_relative,
    tco_savings,
)


class TestEq4:
    def test_paper_shrinks_savings_about_13_percent(self):
        assert tco_savings(TCOParams(upgrade_rate=RU_SHRINKS)) == \
            pytest.approx(0.13, abs=0.01)

    def test_paper_regens_savings_about_25_percent(self):
        assert tco_savings(TCOParams(upgrade_rate=RU_REGENS)) == \
            pytest.approx(0.25, abs=0.015)

    def test_cru_decomposition(self):
        params = TCOParams(upgrade_rate=0.83, ce_new=0.25, cap_new=0.4)
        assert cost_upgrade_rate(params) == pytest.approx(
            0.83 + 0.17 * 0.25 * 0.4)

    def test_eq4_algebra(self):
        params = TCOParams(f_opex=0.14, upgrade_rate=0.83)
        cru = cost_upgrade_rate(params)
        assert tco_relative(params) == pytest.approx(0.14 + 0.86 * cru)

    def test_half_opex_still_saves(self):
        # §4.4: "if we assume half the cost is operational costs,
        # Salamander lowers costs by 6-14 %".
        shrink = tco_savings(TCOParams(f_opex=0.5, upgrade_rate=RU_SHRINKS))
        regen = tco_savings(TCOParams(f_opex=0.5, upgrade_rate=RU_REGENS))
        assert 0.05 <= shrink <= 0.09
        assert 0.12 <= regen <= 0.16

    def test_free_replacements_remove_backfill_penalty(self):
        with_backfill = TCOParams(upgrade_rate=0.8, ce_new=0.25, cap_new=0.4)
        no_backfill = TCOParams(upgrade_rate=0.8, ce_new=0.0, cap_new=0.4)
        assert tco_savings(no_backfill) > tco_savings(with_backfill)

    @pytest.mark.parametrize("kwargs", [
        {"f_opex": 1.0},
        {"upgrade_rate": 0},
        {"ce_new": 1.5},
        {"cap_new": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            TCOParams(**kwargs)


class TestSensitivity:
    def test_savings_shrink_as_opex_share_grows(self):
        rows = opex_sensitivity(RU_REGENS, np.linspace(0.0, 0.9, 10))
        savings = [s for _, s in rows]
        assert all(a > b for a, b in zip(savings, savings[1:]))

    def test_rows_carry_inputs(self):
        rows = opex_sensitivity(RU_SHRINKS, [0.14])
        assert rows[0][0] == pytest.approx(0.14)
        assert rows[0][1] == pytest.approx(0.13, abs=0.01)
