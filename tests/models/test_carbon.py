"""Unit tests for the Eq. 3 carbon model."""

import pytest

from repro.errors import ConfigError
from repro.models.carbon import (
    RU_REGENS,
    RU_SHRINKS,
    CarbonParams,
    carbon_savings,
    fig4_configurations,
    relative_footprint,
)


class TestEq3:
    def test_paper_regens_savings_about_8_percent(self):
        params = CarbonParams(upgrade_rate=RU_REGENS)
        assert carbon_savings(params) == pytest.approx(0.08, abs=0.005)

    def test_paper_shrinks_savings_about_3_percent(self):
        params = CarbonParams(upgrade_rate=RU_SHRINKS)
        assert carbon_savings(params) == pytest.approx(0.03, abs=0.005)

    def test_eq3_algebra(self):
        params = CarbonParams(f_op=0.5, power_effectiveness=1.1,
                              upgrade_rate=0.8)
        assert relative_footprint(params) == pytest.approx(
            0.5 * 1.1 + 0.5 * 0.8)

    def test_renewable_reduces_to_embodied_term(self):
        params = CarbonParams(upgrade_rate=0.8, renewable_operational=True)
        assert relative_footprint(params) == pytest.approx(0.8)
        assert carbon_savings(params) == pytest.approx(0.2)

    def test_no_upgrade_benefit_means_net_cost(self):
        # Keeping old drives with no lifetime gain only burns more power.
        params = CarbonParams(upgrade_rate=1.0)
        assert carbon_savings(params) < 0

    @pytest.mark.parametrize("kwargs", [
        {"f_op": 1.0},
        {"f_op": -0.1},
        {"power_effectiveness": 0},
        {"upgrade_rate": 0},
        {"upgrade_rate": 2.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            CarbonParams(**kwargs)


class TestFig4:
    def test_bar_set_shape(self):
        bars = fig4_configurations()
        assert set(bars) == {"shrinks/current", "shrinks/renewable",
                             "regens/current", "regens/renewable"}

    def test_paper_ranges(self):
        bars = fig4_configurations()
        # "3-8 % CO2e savings in current designs"
        assert 0.02 <= bars["shrinks/current"] <= 0.04
        assert 0.07 <= bars["regens/current"] <= 0.09
        # "these gains increase to 11-20 %" with renewables
        assert 0.09 <= bars["shrinks/renewable"] <= 0.12
        assert 0.18 <= bars["regens/renewable"] <= 0.22

    def test_ordering_within_figure(self):
        bars = fig4_configurations()
        assert bars["regens/current"] > bars["shrinks/current"]
        assert bars["shrinks/renewable"] > bars["shrinks/current"]
        assert bars["regens/renewable"] == max(bars.values())
