"""Unit tests for the §4.2 performance model."""

import pytest

from repro.errors import ConfigError
from repro.models.performance import (
    PerformanceModel,
    latency_factor,
    throughput_factor,
)


class TestSingleLevelFactors:
    def test_paper_numbers_for_l1(self):
        # §4.2: degradation by 4/(4-L), "e.g., 25 % reduction for L1".
        assert throughput_factor(1) == pytest.approx(0.75)
        assert latency_factor(1) == pytest.approx(4 / 3)

    def test_l0_is_unity(self):
        assert throughput_factor(0) == 1.0
        assert latency_factor(0) == 1.0

    def test_l3_is_4x(self):
        assert latency_factor(3) == pytest.approx(4.0)
        assert throughput_factor(3) == pytest.approx(0.25)

    def test_other_page_sizes(self):
        assert latency_factor(1, opages_per_fpage=2) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            throughput_factor(4)
        with pytest.raises(ConfigError):
            latency_factor(-1)
        with pytest.raises(ConfigError):
            throughput_factor(0, opages_per_fpage=0)


class TestMixedLevels:
    def test_all_l0_mix_is_unity(self):
        model = PerformanceModel()
        assert model.sequential_throughput_factor({0: 1.0}) == 1.0
        assert model.large_access_latency_factor({0: 1.0}) == 1.0

    def test_all_l1_mix_matches_single_level(self):
        model = PerformanceModel()
        assert model.sequential_throughput_factor({1: 1.0}) == \
            pytest.approx(0.75)
        assert model.large_access_latency_factor({1: 1.0}) == \
            pytest.approx(4 / 3)

    def test_mix_interpolates_monotonically(self):
        model = PerformanceModel()
        factors = [model.sequential_throughput_factor({0: 1 - f, 1: f})
                   for f in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert all(a > b for a, b in zip(factors, factors[1:]))

    def test_mix_must_sum_to_one(self):
        model = PerformanceModel()
        with pytest.raises(ConfigError):
            model.sequential_throughput_factor({0: 0.5})
        with pytest.raises(ConfigError):
            model.large_access_latency_factor({})


class TestAbsoluteLatencies:
    def test_large_read_slower_at_l1(self):
        model = PerformanceModel()
        assert (model.large_read_latency_us(1)
                > model.large_read_latency_us(0))

    def test_small_reads_unaffected_by_level(self):
        # §4.2: "small, random accesses ... likely have the same latency".
        model = PerformanceModel()
        l0 = model.small_read_latency_us(0)
        l1 = model.small_read_latency_us(1)
        assert l1 == pytest.approx(l0, rel=0.05)

    def test_sequential_throughput_scales_with_channels(self):
        model = PerformanceModel()
        one = model.sequential_throughput_mbps({0: 1.0}, channels=1)
        eight = model.sequential_throughput_mbps({0: 1.0}, channels=8)
        assert eight == pytest.approx(8 * one)

    def test_sequential_throughput_drops_with_l1_fraction(self):
        model = PerformanceModel()
        fresh = model.sequential_throughput_mbps({0: 1.0}, channels=8)
        tired = model.sequential_throughput_mbps({1: 1.0}, channels=8)
        assert tired < fresh
        # Sense-dominated regime: the drop approaches the 25 % of Fig. 3c.
        assert tired / fresh == pytest.approx(0.75, abs=0.03)

    def test_sequential_throughput_validates_channels(self):
        model = PerformanceModel()
        with pytest.raises(ConfigError):
            model.sequential_throughput_mbps({0: 1.0}, channels=0)

    def test_lower_code_rate_mitigates_retries(self):
        # A worn L1 page retries *less* than the same RBER would cost at L0.
        model = PerformanceModel()
        policy = model.policy
        rber = policy.max_rber(0) * 0.95
        l0_latency = model.small_read_latency_us(0, rber=rber)
        l1_latency = model.small_read_latency_us(1, rber=rber)
        assert l1_latency < l0_latency
