"""Unit tests for the constant-capacity planner."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.flash.geometry import FlashGeometry
from repro.models.capacity import (
    embodied_purchase_ratio,
    plan_constant_capacity,
)
from repro.sim.fleet import FleetConfig, simulate_fleet


@pytest.fixture(scope="module")
def fleets():
    config = FleetConfig(
        devices=16, geometry=FlashGeometry(blocks=64, fpages_per_block=32),
        pec_limit_l0=300, dwpd=1.0, afr=0.0,
        horizon_days=1500, step_days=20)
    return {mode: simulate_fleet(config, mode, seed=5)
            for mode in ("baseline", "shrink", "regen")}


class TestPlanner:
    def test_capacity_held_constant(self, fleets):
        for mode, result in fleets.items():
            plan = plan_constant_capacity(result, fleets["baseline"])
            delivered = plan.delivered_capacity()
            assert np.all(delivered >= result.initial_capacity_bytes
                          * 0.999), mode

    def test_purchases_nonnegative_and_cumulative(self, fleets):
        plan = plan_constant_capacity(fleets["shrink"], fleets["baseline"])
        assert np.all(plan.purchases_bytes >= 0)
        assert np.all(np.diff(plan.cumulative_purchases_bytes) >= 0)
        assert plan.cumulative_purchases_bytes[-1] == pytest.approx(
            plan.total_purchases_bytes)

    def test_no_purchases_while_fleet_healthy(self, fleets):
        plan = plan_constant_capacity(fleets["regen"], fleets["baseline"])
        # Early steps: original batch still covers the target.
        assert plan.purchases_bytes[0] == 0.0

    def test_longer_lived_fleets_buy_less(self, fleets):
        purchases = {
            mode: plan_constant_capacity(result,
                                         fleets["baseline"]).total_purchases_bytes
            for mode, result in fleets.items()}
        assert purchases["regen"] < purchases["shrink"] \
            < purchases["baseline"]

    def test_embodied_ratio_ordering(self, fleets):
        base_plan = plan_constant_capacity(fleets["baseline"],
                                           fleets["baseline"])
        ratios = {
            mode: embodied_purchase_ratio(
                plan_constant_capacity(result, fleets["baseline"]),
                base_plan)
            for mode, result in fleets.items()}
        assert ratios["baseline"] == pytest.approx(1.0)
        assert ratios["regen"] < ratios["shrink"] < 1.0

    def test_mismatched_grids_rejected(self, fleets):
        from dataclasses import replace
        config = FleetConfig(
            devices=8, geometry=FlashGeometry(blocks=32,
                                              fpages_per_block=16),
            pec_limit_l0=300, horizon_days=800, step_days=40)
        other = simulate_fleet(config, "baseline", seed=1)
        with pytest.raises(ConfigError):
            plan_constant_capacity(fleets["shrink"], other)
