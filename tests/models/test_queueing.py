"""Unit tests for the M/D/c load model."""

import math

import pytest

from repro.errors import ConfigError
from repro.models.queueing import (
    md1_wait_us,
    mdc_latency_quantile_us,
    mdc_latency_us,
    mdc_wait_quantile_us,
    saturation_iops,
)


class TestMD1:
    def test_no_load_no_wait(self):
        assert md1_wait_us(60.0, 0.0) == 0.0
        assert mdc_latency_us(60.0, 0.0) == pytest.approx(60.0)

    def test_half_load_known_value(self):
        # P-K at rho = 0.5: wait = 0.5 * S / (2 * 0.5) = S / 2.
        assert md1_wait_us(60.0, 0.5 / 60.0) == pytest.approx(30.0)

    def test_latency_monotone_in_load(self):
        latencies = [mdc_latency_us(60.0, iops)
                     for iops in (0, 4000, 8000, 12000, 16000)]
        assert all(a < b for a, b in zip(latencies, latencies[1:]))

    def test_diverges_at_saturation(self):
        sat = saturation_iops(60.0)
        assert sat == pytest.approx(1e6 / 60.0)
        assert mdc_latency_us(60.0, sat) == math.inf
        assert mdc_latency_us(60.0, sat * 0.99) < math.inf


class TestMDC:
    def test_channels_raise_saturation_linearly(self):
        assert saturation_iops(60.0, channels=8) == pytest.approx(
            8 * saturation_iops(60.0, channels=1))

    def test_more_channels_less_wait_at_same_iops(self):
        iops = 10_000
        assert (mdc_latency_us(60.0, iops, channels=8)
                < mdc_latency_us(60.0, iops, channels=1))

    def test_mdc_never_below_service_time(self):
        assert mdc_latency_us(60.0, 1000, channels=8) >= 60.0

    def test_worn_device_saturates_earlier(self):
        # A worn page's retries raise the service time; the same IOPS that
        # a fresh device absorbs can saturate a worn one.
        from repro.models.performance import PerformanceModel
        model = PerformanceModel()
        fresh_service = model.small_read_latency_us(0, rber=0.0)
        worn_service = model.small_read_latency_us(
            0, rber=model.policy.max_rber(0) * 0.98)
        assert saturation_iops(worn_service) < saturation_iops(fresh_service)
        iops = saturation_iops(worn_service) * 1.01
        assert mdc_latency_us(worn_service, iops) == math.inf
        assert mdc_latency_us(fresh_service, iops) < math.inf

    def test_validation(self):
        with pytest.raises(ConfigError):
            mdc_latency_us(0.0, 100)
        with pytest.raises(ConfigError):
            mdc_latency_us(60.0, -1)
        with pytest.raises(ConfigError):
            mdc_latency_us(60.0, 100, channels=0)
        with pytest.raises(ConfigError):
            saturation_iops(-1)


class TestWaitQuantile:
    def test_light_load_quantile_is_zero(self):
        """When the probability of queueing is below the tail mass,
        the wait quantile is exactly zero (most requests never wait)."""
        assert mdc_wait_quantile_us(60.0, 100.0, channels=4,
                                    percentile=99.0) == 0.0
        assert mdc_latency_quantile_us(60.0, 100.0, channels=4,
                                       percentile=99.0) == 60.0

    def test_quantile_above_mean_at_moderate_load(self):
        service, iops, c = 60.0, 0.6 * 2 * 1e6 / 60.0, 2
        p99 = mdc_latency_quantile_us(service, iops, channels=c,
                                      percentile=99.0)
        mean = mdc_latency_us(service, iops, channels=c)
        assert p99 > mean > service

    def test_quantile_monotone_in_percentile(self):
        service, iops, c = 60.0, 0.7 * 1e6 / 60.0, 1
        values = [mdc_latency_quantile_us(service, iops, channels=c,
                                          percentile=p)
                  for p in (50.0, 90.0, 99.0, 99.9)]
        assert all(a <= b for a, b in zip(values, values[1:]))
        assert values[-1] > values[0]

    def test_quantile_monotone_in_load(self):
        service, c = 60.0, 2
        sat = saturation_iops(service, c)
        values = [mdc_wait_quantile_us(service, rho * sat, channels=c)
                  for rho in (0.3, 0.5, 0.7, 0.9)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_infinite_at_saturation(self):
        sat = saturation_iops(60.0, 2)
        assert mdc_wait_quantile_us(60.0, sat, channels=2) == math.inf
        assert mdc_latency_quantile_us(60.0, sat, channels=2) == math.inf

    def test_exponential_tail_matches_mm1_closed_form(self):
        """For c = 1 the approximation is the textbook M/M/1 tail with
        the deterministic-service halving: scale = s / (2 (1 - rho))."""
        service, rho = 50.0, 0.8
        iops = rho * 1e6 / service
        scale = service / (2 * (1 - rho))
        expected = scale * math.log(rho / 0.01)
        assert mdc_wait_quantile_us(service, iops, channels=1,
                                    percentile=99.0) == \
            pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ConfigError):
            mdc_wait_quantile_us(0.0, 100.0)
        with pytest.raises(ConfigError):
            mdc_wait_quantile_us(60.0, -1.0)
        with pytest.raises(ConfigError):
            mdc_wait_quantile_us(60.0, 100.0, channels=0)
        with pytest.raises(ConfigError):
            mdc_wait_quantile_us(60.0, 100.0, percentile=100.0)
        with pytest.raises(ConfigError):
            mdc_wait_quantile_us(60.0, 100.0, percentile=0.0)


class TestEdgeCases:
    """Property tests pinning the saturation boundary and large-c maths."""

    CHANNELS = [1, 2, 3, 4, 8, 16, 32, 48, 64]

    @pytest.mark.parametrize("channels", CHANNELS)
    def test_no_overflow_large_c(self, channels):
        # The naive offered**k / k! evaluation overflows long before
        # c = 64 at high utilisation; the recurrence must not.
        service = 250.0
        sat = saturation_iops(service, channels=channels)
        latency = mdc_latency_us(service, sat * 0.95, channels=channels)
        assert math.isfinite(latency)
        assert latency >= service

    def test_no_overflow_very_large_c(self):
        # Far past where math.factorial(c) leaves the double range.
        for channels in (128, 200, 400):
            sat = saturation_iops(60.0, channels=channels)
            latency = mdc_latency_us(60.0, sat * 0.9, channels=channels)
            assert math.isfinite(latency)
            assert latency >= 60.0

    @pytest.mark.parametrize("channels", CHANNELS)
    def test_consistent_at_and_over_saturation(self, channels):
        """inf exactly from the saturation point on, for every c."""
        service = 80.0
        sat = saturation_iops(service, channels=channels)
        assert mdc_latency_us(service, sat, channels=channels) == math.inf
        assert mdc_latency_us(service, sat * 2, channels=channels) == math.inf
        assert math.isfinite(
            mdc_latency_us(service, sat * 0.999, channels=channels))

    @pytest.mark.parametrize("channels", CHANNELS)
    def test_finite_and_monotone_as_utilisation_approaches_one(
            self, channels):
        """Walking rho -> 1 from below stays finite and non-decreasing."""
        service = 100.0
        sat = saturation_iops(service, channels=channels)
        rhos = [0.1, 0.5, 0.9, 0.99, 0.999, 0.9999]
        latencies = [mdc_latency_us(service, sat * rho, channels=channels)
                     for rho in rhos]
        assert all(math.isfinite(lat) for lat in latencies)
        assert all(a <= b for a, b in zip(latencies, latencies[1:]))
        # ... and genuinely diverging, not plateauing.
        assert latencies[-1] > 10 * service

    @pytest.mark.parametrize("channels", CHANNELS)
    def test_zero_load_is_pure_service(self, channels):
        assert mdc_latency_us(42.0, 0.0, channels=channels) == \
            pytest.approx(42.0)

    def test_erlang_c_matches_naive_form_small_c(self):
        """The recurrence equals the literal formula where both work."""
        from repro.models.queueing import _erlang_c

        for c in (1, 2, 4, 8, 16):
            for rho in (0.1, 0.5, 0.9, 0.99):
                offered = rho * c
                total = sum(offered**k / math.factorial(k)
                            for k in range(c))
                tail = offered**c / (math.factorial(c)
                                     * (1 - offered / c))
                naive = tail / (total + tail)
                assert _erlang_c(c, offered) == pytest.approx(
                    naive, rel=1e-12)

    def test_erlang_c_bounds(self):
        from repro.models.queueing import _erlang_c

        assert _erlang_c(8, 0.0) == 0.0
        assert _erlang_c(8, 8.0) == 1.0
        assert _erlang_c(8, 12.0) == 1.0
        for c in (1, 4, 64):
            for rho in (0.2, 0.7, 0.95):
                p = _erlang_c(c, rho * c)
                assert 0.0 <= p <= 1.0

    def test_mdc_c1_equals_md1_exact(self):
        """The c = 1 fast path and the Erlang route agree: M/D/1 is exact."""
        service = 60.0
        for rho in (0.1, 0.5, 0.9):
            iops = rho * saturation_iops(service)
            expected = md1_wait_us(service, iops / 1e6) + service
            assert mdc_latency_us(service, iops, channels=1) == \
                pytest.approx(expected)
