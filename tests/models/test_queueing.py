"""Unit tests for the M/D/c load model."""

import math

import pytest

from repro.errors import ConfigError
from repro.models.queueing import (
    md1_wait_us,
    mdc_latency_us,
    saturation_iops,
)


class TestMD1:
    def test_no_load_no_wait(self):
        assert md1_wait_us(60.0, 0.0) == 0.0
        assert mdc_latency_us(60.0, 0.0) == pytest.approx(60.0)

    def test_half_load_known_value(self):
        # P-K at rho = 0.5: wait = 0.5 * S / (2 * 0.5) = S / 2.
        assert md1_wait_us(60.0, 0.5 / 60.0) == pytest.approx(30.0)

    def test_latency_monotone_in_load(self):
        latencies = [mdc_latency_us(60.0, iops)
                     for iops in (0, 4000, 8000, 12000, 16000)]
        assert all(a < b for a, b in zip(latencies, latencies[1:]))

    def test_diverges_at_saturation(self):
        sat = saturation_iops(60.0)
        assert sat == pytest.approx(1e6 / 60.0)
        assert mdc_latency_us(60.0, sat) == math.inf
        assert mdc_latency_us(60.0, sat * 0.99) < math.inf


class TestMDC:
    def test_channels_raise_saturation_linearly(self):
        assert saturation_iops(60.0, channels=8) == pytest.approx(
            8 * saturation_iops(60.0, channels=1))

    def test_more_channels_less_wait_at_same_iops(self):
        iops = 10_000
        assert (mdc_latency_us(60.0, iops, channels=8)
                < mdc_latency_us(60.0, iops, channels=1))

    def test_mdc_never_below_service_time(self):
        assert mdc_latency_us(60.0, 1000, channels=8) >= 60.0

    def test_worn_device_saturates_earlier(self):
        # A worn page's retries raise the service time; the same IOPS that
        # a fresh device absorbs can saturate a worn one.
        from repro.models.performance import PerformanceModel
        model = PerformanceModel()
        fresh_service = model.small_read_latency_us(0, rber=0.0)
        worn_service = model.small_read_latency_us(
            0, rber=model.policy.max_rber(0) * 0.98)
        assert saturation_iops(worn_service) < saturation_iops(fresh_service)
        iops = saturation_iops(worn_service) * 1.01
        assert mdc_latency_us(worn_service, iops) == math.inf
        assert mdc_latency_us(fresh_service, iops) < math.inf

    def test_validation(self):
        with pytest.raises(ConfigError):
            mdc_latency_us(0.0, 100)
        with pytest.raises(ConfigError):
            mdc_latency_us(60.0, -1)
        with pytest.raises(ConfigError):
            mdc_latency_us(60.0, 100, channels=0)
        with pytest.raises(ConfigError):
            saturation_iops(-1)
