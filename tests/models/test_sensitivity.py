"""Unit tests for the sensitivity-analysis sweeps."""

import pytest

from repro.errors import ConfigError
from repro.flash.geometry import FlashGeometry
from repro.models.sensitivity import (
    SWEEPABLE,
    gains_are_robust,
    sweep_parameter,
)
from repro.sim.fleet import FleetConfig


@pytest.fixture(scope="module")
def quick_config():
    return FleetConfig(
        devices=12, geometry=FlashGeometry(blocks=64, fpages_per_block=32),
        pec_limit_l0=300, dwpd=1.0, afr=0.0,
        horizon_days=2000, step_days=25)


class TestSweep:
    def test_points_carry_all_fields(self, quick_config):
        points = sweep_parameter(quick_config, "variation_sigma",
                                 [0.2, 0.4])
        assert [p.value for p in points] == [0.2, 0.4]
        for point in points:
            assert point.baseline_days > 0
            assert point.regen_gain > 1.0

    def test_ordering_robust_across_sigma(self, quick_config):
        points = sweep_parameter(quick_config, "variation_sigma",
                                 [0.2, 0.35, 0.5])
        assert gains_are_robust(points)

    def test_more_variation_hurts_baseline_more(self, quick_config):
        points = sweep_parameter(quick_config, "variation_sigma",
                                 [0.15, 0.5])
        # The weak-page tail bricks the baseline earlier, so the gain grows.
        assert points[1].regen_gain > points[0].regen_gain

    def test_looser_brick_threshold_narrows_the_gap(self, quick_config):
        points = sweep_parameter(quick_config, "brick_threshold",
                                 [0.01, 0.10])
        assert points[1].baseline_days > points[0].baseline_days
        assert points[1].regen_gain < points[0].regen_gain

    def test_validation(self, quick_config):
        with pytest.raises(ConfigError):
            sweep_parameter(quick_config, "nonsense", [1])
        with pytest.raises(ConfigError):
            sweep_parameter(quick_config, "dwpd", [])
        with pytest.raises(ConfigError):
            gains_are_robust([])

    def test_sweepable_list_matches_fleet_config(self, quick_config):
        from dataclasses import fields
        names = {f.name for f in fields(FleetConfig)}
        assert set(SWEEPABLE) <= names
