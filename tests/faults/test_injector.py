"""FaultInjector dispatch, windows, singleton lifecycle, metrics."""

import pytest

from repro import faults, obs
from repro.errors import ConfigError, PowerLossError
from repro.faults import FaultInjector, FaultPlan, FaultSpec


def plan_of(*specs, seed=None):
    return FaultPlan(events=tuple(specs), seed=seed)


class TestDispatch:
    def test_hit_counter_is_one_based(self):
        injector = FaultInjector(plan_of(
            FaultSpec(site="chip.program", fault="fail", when=3)))
        assert injector.check("chip.program") is None
        assert injector.check("chip.program") is None
        assert injector.check("chip.program") is not None
        assert injector.check("chip.program") is None
        assert injector.hits("chip.program") == 4

    def test_count_widens_window(self):
        injector = FaultInjector(plan_of(
            FaultSpec(site="chip.read", fault="uncorrectable",
                      when=2, count=3)))
        fired = [injector.check("chip.read") is not None
                 for _ in range(6)]
        assert fired == [False, True, True, True, False, False]

    def test_counters_are_per_site(self):
        injector = FaultInjector(plan_of(
            FaultSpec(site="chip.erase", fault="fail", when=1)))
        injector.check("chip.program")
        injector.check("chip.program")
        assert injector.check("chip.erase") is not None
        assert injector.hits("chip.program") == 2
        assert injector.hits("chip.erase") == 1

    def test_match_filters_but_still_counts(self):
        injector = FaultInjector(plan_of(
            FaultSpec(site="chip.read", fault="corrupt", when=2,
                      match={"fpage": 9})))
        # Hit 1: wrong page. Hit 2: right page -> fires.
        assert injector.check("chip.read", fpage=5) is None
        assert injector.check("chip.read", fpage=9) is not None
        # The window has passed: hit 3 on the matching page stays quiet.
        assert injector.check("chip.read", fpage=9) is None

    def test_nonmatching_hit_inside_window_does_not_fire(self):
        injector = FaultInjector(plan_of(
            FaultSpec(site="chip.read", fault="corrupt", when=1,
                      match={"fpage": 9})))
        assert injector.check("chip.read", fpage=5) is None

    def test_first_matching_spec_wins(self):
        injector = FaultInjector(plan_of(
            FaultSpec(site="difs.recovery.event", fault="delay", when=1),
            FaultSpec(site="difs.recovery.event", fault="duplicate",
                      when=1)))
        spec = injector.check("difs.recovery.event", kind="chunk", id="c0")
        assert spec.fault == "delay"

    def test_fired_log_records_context(self):
        injector = FaultInjector(plan_of(
            FaultSpec(site="chip.program", fault="fail", when=1)))
        injector.check("chip.program", fpage=11, block=2)
        assert len(injector.fired) == 1
        record = injector.fired[0]
        assert record.site == "chip.program"
        assert record.fault == "fail"
        assert record.hit == 1
        assert record.context == {"fpage": 11, "block": 2}

    def test_crash_if_raises_with_site(self):
        injector = FaultInjector(plan_of(
            FaultSpec(site="gc.pre_erase", fault="crash", when=2)))
        injector.crash_if("gc.pre_erase", block=4)
        with pytest.raises(PowerLossError) as excinfo:
            injector.crash_if("gc.pre_erase", block=4)
        assert excinfo.value.site == "gc.pre_erase"

    def test_crash_if_ignores_non_crash_faults(self):
        injector = FaultInjector(plan_of(
            FaultSpec(site="chip.program", fault="fail", when=1)))
        injector.crash_if("chip.program")  # returns quietly

    def test_summary_tallies(self):
        injector = FaultInjector(plan_of(
            FaultSpec(site="chip.program", fault="fail", when=1, count=2)))
        for _ in range(3):
            injector.check("chip.program")
        summary = injector.summary()
        assert summary["hits"] == {"chip.program": 3}
        assert summary["fired"] == {"chip.program:fail": 2}
        assert summary["total_fired"] == 2

    def test_deterministic_replay(self):
        plan = FaultPlan.random(77, n_events=5)
        trace_a, trace_b = [], []
        for trace in (trace_a, trace_b):
            injector = FaultInjector(plan)
            for i in range(300):
                site = list(plan.sites())[i % len(plan.sites())]
                spec = injector.check(site, i=i)
                trace.append(None if spec is None else spec.fault)
        assert trace_a == trace_b


class TestNodeOutages:
    def test_outage_window_measured_in_polls(self):
        injector = FaultInjector(plan_of(
            FaultSpec(site="difs.node", fault="outage", when=2, count=2,
                      match={"node": "n1"})))
        injector.note_poll()  # poll 1: window not open
        assert not injector.node_down("n1")
        injector.note_poll()  # poll 2: down
        assert injector.node_down("n1")
        assert not injector.node_down("n2")
        injector.note_poll()  # poll 3: still down
        assert injector.node_down("n1")
        injector.note_poll()  # poll 4: recovered
        assert not injector.node_down("n1")

    def test_queries_do_not_advance_the_clock(self):
        injector = FaultInjector(plan_of(
            FaultSpec(site="difs.node", fault="outage", when=1,
                      match={"node": "n1"})))
        injector.note_poll()
        for _ in range(50):  # query frequency must not end the outage
            assert injector.node_down("n1")

    def test_matchless_outage_downs_every_node(self):
        injector = FaultInjector(plan_of(
            FaultSpec(site="difs.node", fault="outage", when=1)))
        injector.note_poll()
        assert injector.node_down("n1")
        assert injector.node_down("anything")


class TestSingleton:
    def test_disabled_by_default(self):
        assert faults.injector() is None
        assert not faults.enabled()

    def test_install_uninstall(self):
        injector = faults.install(FaultPlan.random(1))
        try:
            assert faults.injector() is injector
            assert faults.enabled()
        finally:
            faults.uninstall()
        assert faults.injector() is None

    def test_install_accepts_injector(self):
        mine = FaultInjector(FaultPlan.random(2))
        try:
            assert faults.install(mine) is mine
        finally:
            faults.uninstall()

    def test_install_rejects_other_types(self):
        with pytest.raises(ConfigError, match="FaultPlan or FaultInjector"):
            faults.install({"schema": "repro.faults/v1"})

    def test_installed_restores_previous(self):
        outer = faults.install(FaultPlan.random(3))
        try:
            with faults.installed(FaultPlan.random(4)) as inner:
                assert faults.injector() is inner
                assert inner is not outer
            assert faults.injector() is outer
        finally:
            faults.uninstall()

    def test_installed_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with faults.installed(FaultPlan.random(5)):
                raise RuntimeError("boom")
        assert faults.injector() is None


class TestMetrics:
    def test_fault_counters_exported(self):
        registry = obs.enable_metrics()
        try:
            injector = FaultInjector(plan_of(
                FaultSpec(site="chip.program", fault="fail", when=1),
                FaultSpec(site="ftl.write", fault="crash", when=1)))
            injector.check("chip.program")
            with pytest.raises(PowerLossError):
                injector.crash_if("ftl.write")
            injector.record_degraded("retire_program_fail")
            document = registry.to_dict()
            flat = {(family["name"], tuple(sorted(
                        sample["labels"].items()))): sample["value"]
                    for family in document["metrics"]
                    for sample in family["samples"]}
            assert flat[("repro_faults_injected_total",
                         (("fault", "fail"), ("site", "chip.program")))] == 1
            assert flat[("repro_faults_injected_total",
                         (("fault", "crash"), ("site", "ftl.write")))] == 1
            assert flat[("repro_faults_crashes_total",
                         (("site", "ftl.write"),))] == 1
            assert flat[("repro_faults_degraded_total",
                         (("action", "retire_program_fail"),))] == 1
        finally:
            obs.disable()
