"""Disabled injection must cost nothing: one bound None, one `is` check.

Every layer binds ``faults.injector()`` once at construction; with no
plan installed that binding is ``None`` and the hot paths reduce to a
single identity test. These tests pin the binding discipline so a
future refactor cannot quietly re-introduce per-op singleton lookups
(the perf harness guards the wall-clock side; see docs/PERFORMANCE.md).
"""

from __future__ import annotations

from repro import faults
from repro.difs.cluster import Cluster, ClusterConfig
from repro.faults import FaultPlan
from repro.sim.engine import Engine
from repro.ssd.ftl import PageMappedFTL


class TestDisabledBindings:
    def test_nothing_installed_by_default(self):
        assert faults.injector() is None
        assert not faults.enabled()

    def test_every_layer_binds_none_when_disabled(self, make_chip,
                                                  ftl_config, make_baseline,
                                                  make_salamander):
        chip = make_chip()
        ftl = PageMappedFTL.for_chip(make_chip(), ftl_config)
        baseline = make_baseline()
        salamander = make_salamander()
        cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4),
                          seed=1)
        engine = Engine()
        for layer in (chip, ftl, baseline, salamander, salamander.chip,
                      cluster, cluster.recovery, engine):
            assert layer._faults is None, type(layer).__name__

    def test_binding_happens_at_construction_not_per_call(self, make_chip,
                                                          ftl_config):
        # A device built *before* install never sees the plan (documented
        # contract: install first, construct second)...
        before = PageMappedFTL.for_chip(make_chip(), ftl_config)
        with faults.installed(FaultPlan.random(1)):
            assert before._faults is None
            # ...and one built under the plan keeps its injector even
            # after uninstall (it never re-reads the singleton).
            during = PageMappedFTL.for_chip(make_chip(), ftl_config)
            bound = during._faults
            assert bound is faults.injector()
        assert during._faults is bound
        assert faults.injector() is None

    def test_disabled_device_behaves_identically(self, make_chip,
                                                 ftl_config):
        # Behavioural zero-cost: op-for-op identical results with the
        # subsystem absent vs merely disabled is what lets the perf
        # floors in benchmarks/ apply unchanged.
        outputs = []
        for _ in range(2):
            device = PageMappedFTL.for_chip(
                make_chip(seed=5, inject_errors=False), ftl_config)
            for lba in range(32):
                device.write(lba % 12, f"z{lba}".encode())
            device.flush()
            device.background_tick()
            outputs.append([device.read(lba) for lba in range(12)])
        assert outputs[0] == outputs[1]
        assert faults.injector() is None
