"""Sim-level faults: fleet device losses, engine crashes, jobs invariance."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import faults
from repro.errors import PowerLossError
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.flash.geometry import FlashGeometry
from repro.sim.engine import Engine
from repro.sim.fleet import FleetConfig, simulate_fleet
from repro.sim.parallel import fleet_tasks, run_fleet_grid, sweep_document


def plan_of(*specs, seed=None):
    return FaultPlan(events=tuple(specs), seed=seed)


@pytest.fixture(scope="module")
def quick_config():
    # Endurance far beyond the horizon and afr=0: nobody dies naturally,
    # so every death in these tests is an injected one.
    return FleetConfig(devices=12,
                       geometry=FlashGeometry(blocks=64, fpages_per_block=32),
                       pec_limit_l0=50_000, dwpd=1.0, afr=0.0,
                       horizon_days=1000, step_days=20)


LOSS_PLAN = FaultPlan(events=(
    FaultSpec(site="fleet.step", fault="device_loss", when=5,
              args={"devices": 3}),
    FaultSpec(site="fleet.step", fault="device_loss", when=20,
              args={"devices": 2}),
))


class TestFleetDeviceLoss:
    def test_losses_land_on_the_specified_steps(self, quick_config):
        clean = simulate_fleet(quick_config, "baseline", seed=9)
        faulty = simulate_fleet(quick_config, "baseline", seed=9,
                                faults=LOSS_PLAN)
        # Step 5 ends on day 100: three devices die there, two more at
        # step 20 (day 400).
        assert np.isinf(clean.death_day).all()
        assert (faulty.death_day == 100.0).sum() == 3
        assert (faulty.death_day == 400.0).sum() == 2
        assert np.isinf(faulty.death_day).sum() == 7
        assert faulty.survivors_at(100.0) == clean.survivors_at(100.0) - 3
        assert faulty.survivors_at(400.0) == clean.survivors_at(400.0) - 5

    def test_plan_argument_beats_installed_singleton(self, quick_config):
        # An explicit plan wins; the installed singleton is the default.
        with faults.installed(plan_of()):
            result = simulate_fleet(quick_config, "baseline", seed=9,
                                    faults=LOSS_PLAN)
        assert (result.death_day == 100.0).sum() == 3

    def test_injector_instance_is_accepted_and_tallied(self, quick_config):
        injector = FaultInjector(LOSS_PLAN)
        simulate_fleet(quick_config, "baseline", seed=9, faults=injector)
        assert injector.summary()["fired"] == {
            "fleet.step:device_loss": 2}

    def test_deterministic_replay_with_faults(self, quick_config):
        a = simulate_fleet(quick_config, "shrink", seed=3,
                           faults=LOSS_PLAN)
        b = simulate_fleet(quick_config, "shrink", seed=3,
                           faults=LOSS_PLAN)
        np.testing.assert_array_equal(a.death_day, b.death_day)
        np.testing.assert_array_equal(a.capacity_bytes, b.capacity_bytes)


class TestJobsInvariance:
    def test_sweep_document_identical_across_job_counts(self, quick_config):
        # Each task carries the *plan* (picklable) and builds a fresh
        # injector per run, so worker scheduling cannot leak hit-counter
        # state between grid points.
        modes, seeds = ("baseline", "shrink"), (1, 2)
        tasks = fleet_tasks(quick_config, modes, seeds, faults=LOSS_PLAN)
        assert all(task.faults == LOSS_PLAN for task in tasks)
        documents = []
        for jobs in (1, 2):
            results = run_fleet_grid(quick_config, modes, seeds, jobs=jobs,
                                     faults=LOSS_PLAN)
            document = sweep_document(quick_config, modes, seeds, results,
                                      faults=LOSS_PLAN)
            documents.append(json.dumps(document, sort_keys=True))
        assert documents[0] == documents[1]

    def test_fault_free_document_has_no_faults_key(self, quick_config):
        modes, seeds = ("baseline",), (1,)
        results = run_fleet_grid(quick_config, modes, seeds, jobs=1)
        document = sweep_document(quick_config, modes, seeds, results)
        assert "faults" not in document
        faulty = sweep_document(quick_config, modes, seeds, results,
                                faults=LOSS_PLAN)
        assert faulty["faults"]["schema"] == "repro.faults/v1"


class TestEngineCrash:
    def test_step_crash_halts_between_events(self):
        plan = plan_of(FaultSpec(site="engine.step", fault="crash", when=3))
        with faults.installed(plan):
            engine = Engine()
            ran = []
            for i in range(6):
                engine.schedule_at(float(i), lambda i=i: ran.append(i))
            with pytest.raises(PowerLossError) as excinfo:
                engine.run()
            assert excinfo.value.site == "engine.step"
        # The third popped event was charged but its callback never ran:
        # the discrete-event analogue of losing power mid-step.
        assert ran == [0, 1]
