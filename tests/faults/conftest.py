"""Fault-injection test fixtures.

The module-level injector is process-global state (like the obs
singletons); the autouse guard below makes leaking one from a test a
loud failure instead of a heisenbug in whatever test runs next.
"""

from __future__ import annotations

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    assert faults.injector() is None, (
        "a previous test leaked an installed fault injector")
    yield
    faults.uninstall()
