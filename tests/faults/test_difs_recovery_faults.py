"""diFS recovery under injected faults: bounded retry, outages, events.

The cluster binds the installed injector at construction (like every
other layer), so each test builds its cluster inside
``faults.installed(plan)``.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.difs.cluster import Cluster, ClusterConfig
from repro.errors import ChunkLostError
from repro.faults import FaultPlan, FaultSpec


def plan_of(*specs):
    return FaultPlan(events=tuple(specs))


def build_cluster(make_salamander, nodes=4, replication=2):
    cluster = Cluster(ClusterConfig(replication=replication, chunk_lbas=4),
                      seed=11)
    for n in range(nodes):
        cluster.add_node(f"n{n}")
        cluster.add_device(f"n{n}", make_salamander(seed=n + 1))
    return cluster


def fail_first_replica_volume(cluster, chunk_id):
    volume_id = cluster.namespace[chunk_id].replicas[0].volume_id
    cluster.recovery.volume_failed(volume_id)
    return volume_id


class TestRecoveryReadRetry:
    def test_transient_burst_within_budget_succeeds(self, make_salamander):
        # Fail 2 consecutive recovery-read attempts; the default budget
        # (recovery_read_retries=3) absorbs them.
        plan = plan_of(FaultSpec(site="difs.recovery.read", fault="fail",
                                 when=1, count=2))
        with faults.installed(plan):
            cluster = build_cluster(make_salamander)
            cluster.create_chunk("c0", b"survives-retries")
            fail_first_replica_volume(cluster, "c0")
            cluster.run_recovery()
            stats = cluster.recovery.stats
            assert cluster.namespace["c0"].replica_count == 2
            assert cluster.read_chunk("c0").rstrip(b"\0") == \
                b"survives-retries"
            assert stats.chunks_lost == 0
            assert stats.read_retries == 2
            # Retries move no data: accounting is exactly one source read
            # plus one replacement write.
            chunk_bytes = cluster.config.chunk_bytes
            assert stats.bytes_read == chunk_bytes
            assert stats.bytes_written == chunk_bytes

    def test_permanently_down_source_loses_chunk_without_hanging(
            self, make_salamander):
        # A burst longer than the retry budget models a source that never
        # comes back: the chunk must be *lost*, not retried forever.
        plan = plan_of(FaultSpec(site="difs.recovery.read", fault="fail",
                                 when=1, count=50))
        with faults.installed(plan):
            cluster = build_cluster(make_salamander)
            cluster.create_chunk("c0", b"doomed")
            fail_first_replica_volume(cluster, "c0")
            cluster.run_recovery()  # returns: bounded, never hangs
            stats = cluster.recovery.stats
            assert stats.chunks_lost == 1
            # budget (3) + the failing attempt that exhausted it
            assert stats.read_retries == 4
            assert stats.bytes_read == 0  # failed attempts move no bytes
            assert cluster.namespace["c0"].replica_count == 0
            with pytest.raises(ChunkLostError):
                cluster.read_chunk("c0")

    def test_accounting_matches_fault_free_run(self, make_salamander):
        # Differential accounting: retries must not perturb the traffic
        # totals the paper's recovery argument is built on.
        totals = {}
        for label, events in (
                ("faulty", (FaultSpec(site="difs.recovery.read",
                                      fault="fail", when=1, count=3),)),
                ("clean", ())):
            with faults.installed(plan_of(*events)):
                cluster = build_cluster(make_salamander)
                for i in range(4):
                    cluster.create_chunk(f"c{i}", f"data-{i}".encode())
                fail_first_replica_volume(cluster, "c0")
                cluster.run_recovery()
                stats = cluster.recovery.stats
                assert stats.chunks_lost == 0
                totals[label] = (stats.bytes_read, stats.bytes_written)
        assert totals["faulty"] == totals["clean"]


class TestRecoveryEventFaults:
    def test_delayed_event_still_converges(self, make_salamander):
        plan = plan_of(FaultSpec(site="difs.recovery.event", fault="delay",
                                 when=1, match={"kind": "volume"}))
        with faults.installed(plan):
            cluster = build_cluster(make_salamander)
            cluster.create_chunk("c0", b"late-but-fine")
            fail_first_replica_volume(cluster, "c0")
            cluster.run_recovery()
            assert cluster.namespace["c0"].replica_count == 2
            assert cluster.read_chunk("c0").rstrip(b"\0") == b"late-but-fine"
            summary = faults.injector().summary()
            assert summary["fired"] == {"difs.recovery.event:delay": 1}

    def test_duplicated_event_is_idempotent(self, make_salamander):
        plan = plan_of(FaultSpec(site="difs.recovery.event",
                                 fault="duplicate", when=1,
                                 match={"kind": "volume"}))
        with faults.installed(plan):
            cluster = build_cluster(make_salamander)
            cluster.create_chunk("c0", b"exactly-once")
            fail_first_replica_volume(cluster, "c0")
            cluster.run_recovery()
            stats = cluster.recovery.stats
            # Processed twice, converged once: no extra replicas, no
            # double-counted repair, and the second pass moved no bytes.
            assert cluster.namespace["c0"].replica_count == 2
            assert stats.chunks_recovered == 1
            assert len(stats.events) == 2
            assert stats.events[1].bytes_moved == 0
            assert cluster.read_chunk("c0").rstrip(b"\0") == b"exactly-once"


class TestNodeOutages:
    def _chunk_with_replica_on(self, cluster, node_id):
        for i in range(12):
            cluster.create_chunk(f"c{i}", f"data-{i}".encode())
        for i in range(12):
            chunk = cluster.namespace[f"c{i}"]
            for replica in chunk.replicas:
                if cluster.volumes[replica.volume_id].node_id == node_id:
                    return chunk, replica
        raise AssertionError(f"no replica landed on {node_id}")

    def test_outage_skips_replica_without_forgetting_it(
            self, make_salamander):
        plan = plan_of(FaultSpec(site="difs.node", fault="outage",
                                 when=1, count=1, match={"node": "n0"}))
        with faults.installed(plan):
            cluster = build_cluster(make_salamander)
            chunk, replica = self._chunk_with_replica_on(cluster, "n0")
            cluster.poll_failures()  # poll 1: n0 goes dark
            assert faults.injector().node_down("n0")
            # Reads are served from the other replica; the unreachable
            # one is skipped, not written off.
            data = cluster.read_chunk(chunk.chunk_id)
            assert data.rstrip(b"\0").endswith(b"-" + chunk.chunk_id[1:]
                                               .encode())
            assert replica in chunk.replicas
            assert chunk.replica_count == 2
            cluster.poll_failures()  # poll 2: outage window over
            assert not faults.injector().node_down("n0")
            assert cluster.read_chunk(chunk.chunk_id) == data
