"""Chip-level faults end to end: what the FTL does when media misbehaves.

These are behaviour tests, not dispatch tests (those live in
``test_injector.py``): each one installs a targeted plan, drives the
device through its public API and asserts the firmware-level response —
lose-and-report for uncorrectable reads, silent persistence for
injected corruption, retire-and-retry for program failures, and
condemn-the-block for erase failures.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.errors import UncorrectableError
from repro.faults import FaultPlan, FaultSpec
from repro.ssd.ftl import PageMappedFTL

RETIRED = 2  # chip state code for retired fPages


def plan_of(*specs):
    return FaultPlan(events=tuple(specs))


def make_ftl(make_chip, ftl_config, seed=1):
    return PageMappedFTL.for_chip(
        make_chip(seed=seed, inject_errors=False), ftl_config)


class TestReadFaults:
    def test_uncorrectable_read_loses_lba_until_rewritten(self, make_chip,
                                                          ftl_config):
        plan = plan_of(FaultSpec(site="chip.read", fault="uncorrectable",
                                 when=1))
        with faults.installed(plan):
            device = make_ftl(make_chip, ftl_config)
            device.write(5, b"fragile")
            device.flush()  # off NVRAM, onto flash
            with pytest.raises(UncorrectableError):
                device.read(5)
            # The mapping now records the loss: later reads fail fast
            # (and deterministically) instead of re-sensing the page.
            with pytest.raises(UncorrectableError, match="lost"):
                device.read(5)
            device.write(5, b"replacement")
            opage = device.geometry.opage_bytes
            assert device.read(5) == b"replacement".ljust(opage, b"\0")
            device._audit_fastpath()

    def test_corruption_is_silent_and_persistent(self, make_chip,
                                                 ftl_config):
        plan = plan_of(FaultSpec(site="chip.read", fault="corrupt", when=1,
                                 args={"byte": 2, "mask": 0x01}))
        with faults.installed(plan):
            device = make_ftl(make_chip, ftl_config)
            device.write(5, b"abcd")
            device.flush()
            opage = device.geometry.opage_bytes
            first = device.read(5)
            expected = bytearray(b"abcd".ljust(opage, b"\0"))
            expected[2] ^= 0x01
            # No error raised — that is the point of silent corruption —
            # but the payload is wrong...
            assert first == bytes(expected)
            # ...and *stays* wrong: the flip damaged the stored media,
            # it is not a per-read disturbance.
            assert device.read(5) == first
            summary = faults.injector().summary()
            assert summary["fired"] == {"chip.read:corrupt": 1}


class TestProgramAndEraseFaults:
    def test_program_failure_retires_page_and_keeps_data(self, make_chip,
                                                         ftl_config):
        plan = plan_of(FaultSpec(site="chip.program", fault="fail", when=1))
        with faults.installed(plan):
            device = make_ftl(make_chip, ftl_config)
            writes = {}
            for lba in range(ftl_config.buffer_opages + 1):  # forces drain
                device.write(lba, f"d{lba}".encode())
                writes[lba] = f"d{lba}".encode()
            device.flush()
            # The failed program retired its fPage and the drain retried
            # on a fresh one: every acked write is durable.
            opage = device.geometry.opage_bytes
            for lba, data in writes.items():
                assert device.read(lba) == data.ljust(opage, b"\0")
            assert (device.chip.state_array() == RETIRED).sum() >= 1
            assert device.stats.retired_fpages >= 1
            device._audit_fastpath()

    def test_erase_failure_condemns_block_without_data_loss(self, make_chip,
                                                            ftl_config):
        plan = plan_of(FaultSpec(site="chip.erase", fault="fail", when=1))
        with faults.installed(plan):
            device = make_ftl(make_chip, ftl_config)
            writes = {}
            serial = 0
            # Churn a small LBA window until GC has to erase (and the
            # injected failure condemns that block).
            for round_index in range(60):
                for lba in range(24):
                    serial += 1
                    device.write(lba, f"r{serial}".encode())
                    writes[lba] = f"r{serial}".encode()
                device.background_tick(max_collections=2)
                if device._dead_blocks:
                    break
            assert device._dead_blocks, "GC never attempted an erase"
            condemned = next(iter(device._dead_blocks))
            pages = device.geometry.fpage_range_of_block(condemned)
            assert all(device.chip.state_array()[p] == RETIRED
                       for p in pages)
            opage = device.geometry.opage_bytes
            for lba, data in writes.items():
                assert device.read(lba) == data.ljust(opage, b"\0")
            device._audit_fastpath()
            summary = faults.injector().summary()
            assert summary["fired"] == {"chip.erase:fail": 1}

    def test_forced_gc_victim_steers_but_never_corrupts(self, make_chip,
                                                        ftl_config):
        # ``gc.pick``/``force_victim`` overrides the policy with the
        # fullest candidate — the worst case for write amplification.
        # Pathological scheduling must degrade performance only, never
        # durability.
        plan = plan_of(FaultSpec(site="gc.pick", fault="force_victim",
                                 when=1, count=3))
        with faults.installed(plan):
            device = make_ftl(make_chip, ftl_config)
            writes = {}
            serial = 0
            for _round in range(40):
                for lba in range(24):
                    serial += 1
                    device.write(lba, f"v{serial}".encode())
                    writes[lba] = f"v{serial}".encode()
                device.background_tick(max_collections=2)
            summary = faults.injector().summary()
            assert summary["fired"].get("gc.pick:force_victim", 0) >= 1
            for record in faults.injector().fired:
                assert record.site == "gc.pick"
                assert "victim" in record.context
            opage = device.geometry.opage_bytes
            for lba, data in writes.items():
                assert device.read(lba) == data.ljust(opage, b"\0")
            device._audit_fastpath()
