"""Ack-before-persist regressions: an acked op survives any crash.

Each test pins one historical durability hazard with a targeted crash:

* drain **pre**-program — acked writes still live only in NVRAM;
* drain **post**-program — data on flash *and* in NVRAM (the discard
  never ran): remount must neither lose nor duplicate it;
* Salamander immediate (grace=0) decommission — the NVRAM minidisk
  table records the decommission *before* the mappings are dropped, so
  a crash in between must remount to a DECOMMISSIONED mDisk, never an
  ACTIVE one whose acked data is already gone;
* Salamander regeneration — the crash point sits before the atomic
  NVRAM mint, so a crash never leaves a half-minted mDisk.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.errors import (
    DeviceBrickedError,
    MinidiskDecommissionedError,
    OutOfSpaceError,
    PowerLossError,
)
from repro.faults import FaultPlan, FaultSpec
from repro.faults.harness import remount_after_crash, run_to_crash
from repro.ssd.ftl import PageMappedFTL


def plan_of(*specs):
    return FaultPlan(events=tuple(specs))


def payloads_for(device, writes):
    opage = device.geometry.opage_bytes
    return {lba: data.ljust(opage, b"\0") for lba, data in writes.items()}


class TestDrainCrashes:
    def _fill_buffer(self, device, n):
        writes = {}
        for lba in range(n):
            device.write(lba, f"acked-{lba}".encode())
            writes[lba] = f"acked-{lba}".encode()
        return writes

    def test_pre_program_crash_keeps_every_acked_write(self, make_chip,
                                                       ftl_config):
        plan = plan_of(FaultSpec(site="ftl.drain.pre_program",
                                 fault="crash", when=1))
        with faults.installed(plan):
            device = PageMappedFTL.for_chip(
                make_chip(inject_errors=False), ftl_config)
            writes = self._fill_buffer(device, ftl_config.buffer_opages)
            # The next write needs buffer space -> drain -> crash. It is
            # *not* acked, so only the first 8 must survive.
            device, crashed, site = run_to_crash(
                lambda: device.write(99, b"never-acked"), device)
            assert crashed and site == "ftl.drain.pre_program"
            for lba, expected in payloads_for(device, writes).items():
                assert device.read(lba) == expected
            assert device.read(99) == bytes(device.geometry.opage_bytes)
            device._audit_fastpath()

    def test_post_program_crash_loses_nothing_duplicates_nothing(
            self, make_chip, ftl_config):
        plan = plan_of(FaultSpec(site="ftl.drain.post_program",
                                 fault="crash", when=1))
        with faults.installed(plan):
            device = PageMappedFTL.for_chip(
                make_chip(inject_errors=False), ftl_config)
            writes = self._fill_buffer(device, ftl_config.buffer_opages)
            device, crashed, site = run_to_crash(device.flush, device)
            assert crashed and site == "ftl.drain.post_program"
            # The drained fPage is on flash AND still in the NVRAM
            # buffer (its discard never ran). The buffered copy shadows
            # the flash copy, then a later drain re-programs it with a
            # newer write sequence — either way each LBA reads back its
            # single acked payload.
            expected = payloads_for(device, writes)
            for lba, want in expected.items():
                assert device.read(lba) == want
            device.flush()
            for lba, want in expected.items():
                assert device.read(lba) == want
            device._audit_fastpath()
            # And a second power cycle straight after also converges.
            remounted = remount_after_crash(device)
            for lba, want in expected.items():
                assert remounted.read(lba) == want
            remounted._audit_fastpath()


class TestSalamanderLifecycleCrashes:
    def test_decommission_crash_is_recorded_before_data_drop(
            self, make_salamander):
        plan = plan_of(FaultSpec(site="salamander.decommission",
                                 fault="crash", when=1))
        with faults.installed(plan):
            device = make_salamander(mode="shrink", inject_errors=False)
            survivors = {}
            for mdisk in device.active_minidisks():
                device.write(mdisk.mdisk_id, 0,
                             f"m{mdisk.mdisk_id}".encode())
                survivors[mdisk.mdisk_id] = f"m{mdisk.mdisk_id}".encode()
            victim = device.minidisk(0)
            with pytest.raises(PowerLossError) as excinfo:
                device._decommission(victim, reason="wear")
            assert excinfo.value.site == "salamander.decommission"
            device = remount_after_crash(device)
            # The NVRAM table already says DECOMMISSIONED: the remount
            # re-runs the invalidation instead of resurrecting an ACTIVE
            # mDisk whose acked data was (about to be) dropped.
            assert not device.minidisk(0).is_readable
            with pytest.raises(MinidiskDecommissionedError):
                device.read(0, 0)
            opage = device.geometry.opage_bytes
            for mdisk_id, data in survivors.items():
                if mdisk_id == 0:
                    continue
                assert device.read(mdisk_id, 0) == data.ljust(opage, b"\0")
            device._audit_fastpath()

    def test_regenerate_crash_leaves_no_half_minted_minidisk(
            self, make_salamander):
        plan = plan_of(FaultSpec(site="salamander.regenerate",
                                 fault="crash", when=1))
        with faults.installed(plan):
            device = make_salamander(mode="regen", seed=3,
                                     inject_errors=False)
            rng = np.random.default_rng(7)
            crash = None
            for i in range(20000):
                active = device.active_minidisks()
                if not active:
                    break
                mdisk = active[int(rng.integers(len(active)))]
                lba = int(rng.integers(mdisk.size_lbas))
                try:
                    device.write(mdisk.mdisk_id, lba, f"p{i}".encode())
                except PowerLossError as loss:
                    crash = loss.site
                    break
                except (MinidiskDecommissionedError, OutOfSpaceError):
                    continue
                except DeviceBrickedError:
                    break
            assert crash == "salamander.regenerate", (
                "write churn never reached a regeneration; "
                "retune the wear parameters")
            minted_before = len(device.minidisks)
            device = remount_after_crash(device)
            # The mint is one atomic NVRAM transaction after the crash
            # point: no new mDisk, no limbo pages half-removed, flat
            # space consistent with the minidisk table.
            assert len(device.minidisks) == minted_before
            assert device.stats.regenerated_minidisks == 0
            assert device.n_lbas == sum(m.size_lbas
                                        for m in device.minidisks)
            device._audit_fastpath()
            # The device keeps working after the power cycle: the next
            # rebalance retries the regeneration (the plan's single
            # event is spent).
            active = device.active_minidisks()
            assert active
            device.write(active[0].mdisk_id, 1, b"post-crash")
            opage = device.geometry.opage_bytes
            assert device.read(active[0].mdisk_id, 1) == \
                b"post-crash".ljust(opage, b"\0")
