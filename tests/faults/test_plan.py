"""FaultPlan / FaultSpec: validation, serialisation, derivation."""

import json

import pytest

from repro.errors import ConfigError
from repro.faults import (
    CRASH_SITES,
    FAULTS_SCHEMA,
    SITES,
    FaultPlan,
    FaultSpec,
    validate_fault_document,
)


class TestFaultSpec:
    def test_minimal_spec_defaults(self):
        spec = FaultSpec(site="chip.program", fault="fail")
        assert spec.when == 1
        assert spec.count == 1
        assert spec.match == {}
        assert spec.args == {}

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError, match="unknown injection site"):
            FaultSpec(site="chip.nonsense", fault="fail")

    def test_unknown_fault_for_site_rejected(self):
        with pytest.raises(ConfigError, match="does not support"):
            FaultSpec(site="chip.program", fault="crash")

    @pytest.mark.parametrize("when", [0, -1, 1.5, "2"])
    def test_bad_when_rejected(self, when):
        with pytest.raises(ConfigError, match="when"):
            FaultSpec(site="chip.program", fault="fail", when=when)

    @pytest.mark.parametrize("count", [0, -3, "1"])
    def test_bad_count_rejected(self, count):
        with pytest.raises(ConfigError, match="count"):
            FaultSpec(site="chip.program", fault="fail", count=count)

    def test_match_values_must_be_scalars(self):
        with pytest.raises(ConfigError, match="JSON scalar"):
            FaultSpec(site="chip.read", fault="corrupt",
                      match={"fpage": [1, 2]})

    def test_matches_is_subset_semantics(self):
        spec = FaultSpec(site="chip.read", fault="uncorrectable",
                         match={"fpage": 3})
        assert spec.matches({"fpage": 3, "slot": 0})
        assert not spec.matches({"fpage": 4})
        assert not spec.matches({})

    def test_roundtrip_omits_defaults(self):
        spec = FaultSpec(site="gc.pre_erase", fault="crash", when=7)
        record = spec.to_dict()
        assert record == {"site": "gc.pre_erase", "fault": "crash",
                          "when": 7}
        assert FaultSpec.from_dict(record) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            FaultSpec.from_dict({"site": "chip.read",
                                 "fault": "corrupt", "extra": 1})

    def test_from_dict_requires_site_and_fault(self):
        with pytest.raises(ConfigError, match="missing"):
            FaultSpec.from_dict({"site": "chip.read"})


class TestSiteRegistry:
    def test_crash_sites_only_support_crash(self):
        for site in CRASH_SITES:
            assert SITES[site] == ("crash",)

    def test_every_site_names_at_least_one_fault(self):
        for site, kinds in SITES.items():
            assert kinds, f"site {site} has no fault kinds"

    def test_expected_layers_present(self):
        # One representative per layer; docs/FAULTS.md lists them all.
        for site in ("chip.read", "ftl.drain.post_program", "gc.pre_erase",
                     "salamander.decommission", "difs.recovery.read",
                     "fleet.step", "engine.step"):
            assert site in SITES


class TestFaultPlan:
    def test_events_must_be_specs(self):
        with pytest.raises(ConfigError, match="FaultSpec"):
            FaultPlan(events=({"site": "chip.read"},))

    def test_json_roundtrip_byte_stable(self):
        plan = FaultPlan(events=(
            FaultSpec(site="chip.read", fault="corrupt", when=5,
                      args={"byte": 3, "mask": 129}),
            FaultSpec(site="ftl.write", fault="crash", when=2, count=1),
        ), seed=99)
        text = plan.to_json()
        again = FaultPlan.from_json(text)
        assert again == plan
        assert again.to_json() == text
        assert text.endswith("\n")
        assert json.loads(text)["schema"] == FAULTS_SCHEMA

    def test_save_load(self, tmp_path):
        plan = FaultPlan.random(31, n_events=4)
        path = plan.save(tmp_path / "sub" / "plan.json")
        assert FaultPlan.load(path) == plan

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            FaultPlan.load(tmp_path / "nope.json")

    def test_bad_schema_rejected(self):
        with pytest.raises(ConfigError, match="schema"):
            FaultPlan.from_dict({"schema": "repro.faults/v0", "events": []})

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_validate_fault_document(self):
        validate_fault_document(FaultPlan.random(1).to_dict())
        with pytest.raises(ConfigError):
            validate_fault_document({"schema": FAULTS_SCHEMA,
                                     "events": "zap"})

    def test_random_is_deterministic(self):
        a = FaultPlan.random(1234, n_events=6)
        b = FaultPlan.random(1234, n_events=6)
        assert a == b
        assert a.to_json() == b.to_json()
        assert a.seed == 1234
        assert FaultPlan.random(1235, n_events=6) != a

    def test_random_respects_site_pool(self):
        plan = FaultPlan.random(7, n_events=10, sites=CRASH_SITES)
        assert plan.sites() <= set(CRASH_SITES)
        for spec in plan:
            assert spec.fault == "crash"

    def test_random_unknown_site_rejected(self):
        with pytest.raises(ConfigError, match="unknown injection site"):
            FaultPlan.random(7, sites=("chip.warp",))

    def test_extended_and_for_site(self):
        base = FaultPlan(seed=5)
        plan = base.extended(FaultSpec(site="chip.erase", fault="fail"),
                             FaultSpec(site="chip.read", fault="corrupt"))
        assert len(plan) == 2
        assert plan.seed == 5
        assert [s.site for s in plan.for_site("chip.erase")] == ["chip.erase"]
        assert len(base) == 0  # immutable
