"""Crash-consistency fuzz harness: write → crash → remount → verify.

Each episode walks one device flavour through a seeded op stream while
a ``FaultPlan`` injects power losses at FTL/GC/Salamander crash sites;
:mod:`tests.faults.walk` holds the engine and the oracle rules. The
matrix is sized so a default run banks well over 200 crash/remount
episodes across the four flavours; set ``REPRO_FUZZ_BUDGET`` to scale
the seed count up for soak runs (or down, at the cost of the episode
floor test skipping itself).

On any invariant failure the assertion is re-raised with the flavour,
seed and the plan's JSON so the exact episode can be replayed:

    plan = FaultPlan.from_json(reproducer)
    with faults.installed(plan): ...
"""

from __future__ import annotations

import os

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultSpec
from repro.ssd.ftl import PageMappedFTL

from .walk import (
    FTL_CRASH_SITES,
    SALAMANDER_CRASH_SITES,
    replay_reference,
    run_episode,
    run_episode_batched,
    verify_invariants,
)

FLAVOURS = ("ftl", "baseline", "shrink", "regen")


def fuzz_budget() -> int:
    """Seeds per flavour; REPRO_FUZZ_BUDGET scales soak runs."""
    return max(1, int(os.environ.get("REPRO_FUZZ_BUDGET", "17")))


SEEDS = tuple(range(100, 100 + fuzz_budget()))

#: Deterministic anchors guaranteeing >= 3 crashes per episode on top of
#: whatever the random plan contributes: the 13th host write, the 4th
#: and 9th buffer drains. (GC/scrub/decommission sites fire only when
#: the walk happens to reach them, so they cannot be anchors.)
ANCHORS = (
    FaultSpec(site="ftl.write", fault="crash", when=13),
    FaultSpec(site="ftl.drain.pre_program", fault="crash", when=4),
    FaultSpec(site="ftl.drain.post_program", fault="crash", when=9),
)

MIN_EPISODES = 200

_TALLY = {"episodes": 0, "runs": 0, "sites": set()}


def build_device(flavour, make_chip, ftl_config, make_baseline,
                 make_salamander, seed):
    """Fault-free chips only: random media errors would blur the oracle."""
    if flavour == "ftl":
        return PageMappedFTL.for_chip(
            make_chip(seed=seed, inject_errors=False), ftl_config)
    if flavour == "baseline":
        return make_baseline(seed=seed, inject_errors=False)
    return make_salamander(mode=flavour, seed=seed, inject_errors=False)


def episode_plan(flavour, seed) -> FaultPlan:
    sites = (SALAMANDER_CRASH_SITES if flavour in ("shrink", "regen")
             else FTL_CRASH_SITES)
    return FaultPlan.random(seed, n_events=5, sites=sites,
                            max_when=60, max_count=2).extended(*ANCHORS)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("flavour", FLAVOURS)
def test_fuzz_episode(flavour, seed, make_chip, ftl_config, make_baseline,
                      make_salamander):
    plan = episode_plan(flavour, seed)
    with faults.installed(plan):
        device = build_device(flavour, make_chip, ftl_config,
                              make_baseline, make_salamander, seed)
        try:
            result = run_episode(device, plan, seed)
            verify_invariants(result)
        except AssertionError as failure:
            raise AssertionError(
                f"{failure}\n--- reproducer: flavour={flavour} "
                f"walk_seed={seed} plan ---\n{plan.to_json()}") from failure
    assert result.crashes >= 3, (
        f"anchor crashes did not fire (got {result.crashes}); "
        f"sites seen: {result.crash_sites}")
    _TALLY["episodes"] += result.crashes
    _TALLY["runs"] += 1
    _TALLY["sites"].update(result.crash_sites)


@pytest.mark.parametrize("seed", SEEDS[:8])
@pytest.mark.parametrize("flavour", ("ftl", "baseline"))
def test_fuzz_episode_batched(flavour, seed, make_chip, ftl_config,
                              make_baseline, make_salamander):
    """Crash fuzz through ``execute_vector``: power losses surfacing as
    per-member batch errors must leave the same acked-durability and
    trim guarantees as the scalar submission path."""
    plan = episode_plan(flavour, seed)
    with faults.installed(plan):
        device = build_device(flavour, make_chip, ftl_config,
                              make_baseline, make_salamander, seed)
        try:
            result = run_episode_batched(device, plan, seed)
            verify_invariants(result)
        except AssertionError as failure:
            raise AssertionError(
                f"{failure}\n--- reproducer: flavour={flavour} "
                f"walk_seed={seed} batched plan ---\n"
                f"{plan.to_json()}") from failure
    assert result.crashes >= 3, (
        f"anchor crashes did not fire (got {result.crashes}); "
        f"sites seen: {result.crash_sites}")


def test_crash_episode_floor():
    """CI smoke banks >= 200 crash/remount episodes across flavours."""
    full_matrix = len(FLAVOURS) * len(SEEDS)
    if _TALLY["runs"] < full_matrix:
        pytest.skip(f"only {_TALLY['runs']}/{full_matrix} episodes ran "
                    "(filtered or reduced REPRO_FUZZ_BUDGET)")
    assert _TALLY["episodes"] >= MIN_EPISODES, _TALLY
    # The matrix must exercise more than the anchor sites.
    assert len(_TALLY["sites"]) >= 4, sorted(_TALLY["sites"])


@pytest.mark.parametrize("flavour", FLAVOURS)
def test_episode_is_deterministic(flavour, make_chip, ftl_config,
                                  make_baseline, make_salamander):
    """Same plan + walk seed twice => byte-identical surviving state."""
    states = []
    for _ in range(2):
        plan = episode_plan(flavour, 4242)
        with faults.installed(plan):
            device = build_device(flavour, make_chip, ftl_config,
                                  make_baseline, make_salamander, 4242)
            result = run_episode(device, plan, 4242)
        reads = {}
        for key in sorted(result.oracle):
            from .walk import _read_key
            reads[str(key)] = _read_key(result.device, key)
        states.append((result.crashes, tuple(result.crash_sites),
                       sorted(result.oracle.items()), reads))
    assert states[0] == states[1]


@pytest.mark.parametrize("flavour", ["ftl", "baseline"])
@pytest.mark.parametrize("seed", SEEDS[:5])
def test_differential_replay(flavour, seed, make_chip, ftl_config,
                             make_baseline, make_salamander):
    """Replaying the acked op stream on a fault-free reference device
    reproduces every surviving acked payload byte for byte."""
    plan = episode_plan(flavour, seed)
    with faults.installed(plan):
        device = build_device(flavour, make_chip, ftl_config,
                              make_baseline, make_salamander, seed)
        result = run_episode(device, plan, seed)

    # Fresh chip, same geometry, no faults installed.
    reference = build_device(flavour, make_chip, ftl_config,
                             make_baseline, make_salamander, seed)
    applied = replay_reference(reference, result.acked_ops)

    # Keys whose last acked op made it into the replayed prefix must
    # read identically on both devices. Trimmed keys are excluded: the
    # reference never crashed, so its trims never resurrect.
    last_index = {}
    for index, (op, key, _payload) in enumerate(result.acked_ops):
        last_index[key] = index
    compared = 0
    opage = reference.geometry.opage_bytes
    for key, payload in sorted(result.oracle.items()):
        if last_index[key] >= applied:
            continue
        assert reference.read(key) == payload.ljust(opage, b"\0")
        assert result.device.read(key) == reference.read(key)
        compared += 1
    assert compared > 0, "differential test compared nothing"
    assert result.crashes >= 3
