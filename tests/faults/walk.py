"""Random-walk engine shared by the crash-consistency fuzz tests.

An *episode* drives one device through a seeded stream of host
operations (write / trim / flush / background GC / scrub) while a
:class:`~repro.faults.FaultPlan` injects power losses at crash sites
across the FTL, GC and Salamander layers. Every injected crash is
absorbed by :func:`repro.faults.harness.remount_after_crash`; the walk
then continues against the remounted device.

The oracle follows the ack rule used by real storage test harnesses:

* a write counts only once ``write()`` *returned* — data lost with an
  un-acked write is correct behaviour, losing an acked write is a bug;
* a trimmed LBA must read as zeros while no crash intervened, but may
  *resurrect* after a remount (trims live in DRAM; the OOB replay finds
  old programs of that LBA — see docs/FAULTS.md). A resurrected LBA may
  carry any formerly written payload, because GC is free to erase newer
  invalid versions while an older one survives in a cold block.

Salamander devices are keyed by ``(mdisk_id, lba)``; a key whose
minidisk was decommissioned leaves the oracle — that data was
re-replicated by the diFS layer by design, not lost by the device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    DeviceBrickedError,
    DeviceReadOnlyError,
    MinidiskDecommissionedError,
    OutOfSpaceError,
    PowerLossError,
)
from repro.faults import FaultPlan
from repro.faults.harness import remount_after_crash
from repro.rng import fork_rng, make_rng
from repro.salamander.device import SalamanderSSD

#: Crash sites exercised on plain-FTL and baseline devices.
FTL_CRASH_SITES = (
    "ftl.write",
    "ftl.drain.pre_program",
    "ftl.drain.post_program",
    "ftl.scrub",
    "gc.pre_relocate",
    "gc.pre_erase",
    "gc.post_erase",
)

#: Salamander devices additionally crash inside capacity transitions.
SALAMANDER_CRASH_SITES = FTL_CRASH_SITES + (
    "salamander.decommission",
    "salamander.regenerate",
)

#: Errors that legitimately end an episode (device reached end of life).
END_OF_LIFE = (DeviceBrickedError, DeviceReadOnlyError, OutOfSpaceError)


@dataclass
class WalkResult:
    """Everything an episode learned, for verification and replay."""

    device: object
    oracle: dict = field(default_factory=dict)       # key -> acked payload
    trimmed: dict = field(default_factory=dict)      # key -> resurrectable
    history: dict = field(default_factory=dict)      # key -> all payloads
    acked_ops: list = field(default_factory=list)    # (op, key, payload)
    crashes: int = 0
    crash_sites: list = field(default_factory=list)
    steps: int = 0


def _read_key(device, key):
    """Read one oracle key; None when the backing minidisk is gone."""
    if isinstance(device, SalamanderSSD):
        mdisk_id, lba = key
        if device._exhausted:
            return None
        if not device.minidisk(mdisk_id).is_readable:
            return None
        return device.read(mdisk_id, lba)
    return device.read(key)


def _pick_key(device, rng):
    """Pick a host address: plain LBA, or (mdisk_id, lba) on Salamander."""
    if isinstance(device, SalamanderSSD):
        active = device.active_minidisks()
        if not active:
            return None
        mdisk = active[int(rng.integers(len(active)))]
        return (mdisk.mdisk_id, int(rng.integers(mdisk.size_lbas)))
    return int(rng.integers(device.n_lbas))


def _apply(device, op, key, payload):
    """Run one host op; Salamander keys unpack to (mdisk_id, lba)."""
    if isinstance(device, SalamanderSSD):
        if op == "write":
            device.write(key[0], key[1], payload)
        else:
            device.trim(key[0], key[1])
    elif op == "write":
        device.write(key, payload)
    else:
        device.trim(key)


def run_episode(device, plan: FaultPlan, seed: int,
                n_ops: int = 520) -> WalkResult:
    """Drive ``device`` through ``n_ops`` seeded host operations.

    The fault ``plan`` must already be installed (the device was
    constructed under it); remounted devices re-bind the same injector,
    so hit counters — and therefore crash schedules — continue across
    power cycles.
    """
    rng = fork_rng(make_rng(seed), "fuzz-ops")
    result = WalkResult(device=device)
    serial = 0

    for step in range(n_ops):
        result.steps = step + 1
        roll = float(rng.random())
        device = result.device
        try:
            if roll < 0.62:
                key = _pick_key(device, rng)
                if key is None:
                    break  # no active minidisks left
                serial += 1
                payload = f"{key}#{serial}@{seed}".encode()
                _apply(device, "write", key, payload)
                # Acked: from here on, losing this payload is a bug.
                result.oracle[key] = payload
                result.trimmed.pop(key, None)
                result.history.setdefault(key, []).append(payload)
                result.acked_ops.append(("write", key, payload))
            elif roll < 0.74:
                key = _pick_key(device, rng)
                if key is None:
                    break
                _apply(device, "trim", key, None)
                result.oracle.pop(key, None)
                result.trimmed[key] = False  # strict zeros until a crash
                result.acked_ops.append(("trim", key, None))
            elif roll < 0.82:
                device.flush()
            elif roll < 0.94:
                device.background_tick(max_collections=2)
            else:
                device.scrub(max_fpages=4)
            # Occasional mid-walk probe: acked data must be readable at
            # any instant, not just at the end of the episode.
            if result.oracle and roll > 0.97:
                keys = sorted(result.oracle)
                probe = keys[int(rng.integers(len(keys)))]
                _probe_key(result, probe)
        except PowerLossError as loss:
            result.crashes += 1
            result.crash_sites.append(loss.site)
            result.device = remount_after_crash(result.device)
            # Any trimmed LBA may now resurrect via the OOB replay.
            for key in result.trimmed:
                result.trimmed[key] = True
        except MinidiskDecommissionedError:
            continue  # the pick raced a wear-driven decommission
        except END_OF_LIFE:
            break
    return result


def run_episode_batched(device, plan: FaultPlan, seed: int,
                        n_ops: int = 520, batch: int = 8) -> WalkResult:
    """The batched-submission twin of :func:`run_episode`.

    Host writes and trims are staged into :class:`IOVector` batches and
    dispatched through ``DeviceQueue.execute_vector`` — the cluster's
    batched hot path. ``execute_vector`` records per-member errors
    instead of raising, so crashes surface *inside* a batch; the walk
    follows the host retry protocol a real initiator uses after a
    device reset: members before the crash are acked, the crash member
    and everything after it are re-driven against the remounted device
    (their first execution is void — the crashed object is discarded,
    though any flash it programmed stays durable, which is exactly the
    ambiguity the trim-resurrection rules already allow for).

    Flat-LBA devices only (plain FTL / baseline): Salamander keys need
    per-member minidisk liveness tracking that the scalar walk handles
    by racing decommissions, which has no batched analogue yet.
    """
    from repro.io import DeviceQueue
    from repro.io.vector import IOVector

    rng = fork_rng(make_rng(seed), "fuzz-ops")
    result = WalkResult(device=device)
    queue = DeviceQueue(device)
    serial = 0
    staged: list[tuple[str, int, bytes | None]] = []

    def ack(op, key, payload):
        if op == "write":
            result.oracle[key] = payload
            result.trimmed.pop(key, None)
            result.history.setdefault(key, []).append(payload)
            result.acked_ops.append(("write", key, payload))
        else:
            result.oracle.pop(key, None)
            result.trimmed[key] = False
            result.acked_ops.append(("trim", key, None))

    def absorb_crash(loss: PowerLossError):
        nonlocal queue
        result.crashes += 1
        result.crash_sites.append(loss.site)
        result.device = remount_after_crash(result.device)
        for key in result.trimmed:
            result.trimmed[key] = True
        queue = DeviceQueue(result.device)

    def dispatch():
        pending = staged[:]
        staged.clear()
        while pending:
            vector = IOVector(capacity=len(pending))
            for op, key, payload in pending:
                vector.append(op, lba=key,
                              payloads=[payload] if op == "write" else None)
            completions = queue.execute_vector(vector)
            crash_at = None
            for index, (op, key, payload) in enumerate(pending):
                error = completions.errors[index]
                if isinstance(error, PowerLossError):
                    crash_at = index
                    absorb_crash(error)
                    break
                if error is not None:
                    raise error  # END_OF_LIFE or a real model bug
                ack(op, key, payload)
            if crash_at is None:
                return
            pending = pending[crash_at:]  # host retry after the reset

    for step in range(n_ops):
        result.steps = step + 1
        roll = float(rng.random())
        device = result.device
        try:
            if roll < 0.62:
                serial += 1
                key = int(rng.integers(device.n_lbas))
                staged.append(
                    ("write", key, f"{key}#{serial}@{seed}".encode()))
            elif roll < 0.74:
                staged.append(
                    ("trim", int(rng.integers(device.n_lbas)), None))
            else:
                # Maintenance ops run scalar; staged host ops must land
                # first so flush/GC/scrub observe them.
                dispatch()
                if roll < 0.82:
                    result.device.flush()
                elif roll < 0.94:
                    result.device.background_tick(max_collections=2)
                else:
                    result.device.scrub(max_fpages=4)
                if result.oracle and roll > 0.97:
                    keys = sorted(result.oracle)
                    probe = keys[int(rng.integers(len(keys)))]
                    _probe_key(result, probe)
            if len(staged) >= batch:
                dispatch()
        except PowerLossError as loss:
            absorb_crash(loss)
        except END_OF_LIFE:
            return result
    try:
        dispatch()
    except END_OF_LIFE:
        pass
    return result


def _probe_key(result: WalkResult, key) -> None:
    data = _read_key(result.device, key)
    if data is None:
        # Backing minidisk decommissioned: the key leaves the oracle.
        result.oracle.pop(key, None)
        return
    expected = result.oracle[key]
    opage = result.device.geometry.opage_bytes
    assert data == expected.ljust(opage, b"\0"), (
        f"mid-walk probe: acked write to {key} lost")


def verify_invariants(result: WalkResult) -> None:
    """Post-episode checks: acked durability, trim semantics, audit."""
    device = result.device
    opage = device.geometry.opage_bytes
    zeros = bytes(opage)
    for key, payload in sorted(result.oracle.items()):
        data = _read_key(device, key)
        if data is None:
            continue  # minidisk decommissioned: dropped by design
        assert data == payload.ljust(opage, b"\0"), (
            f"acked write to {key} lost or corrupted after "
            f"{result.crashes} crash(es): "
            f"got {data[:24]!r}..., want {payload!r}")
    for key, resurrectable in sorted(result.trimmed.items()):
        if key in result.oracle:
            continue  # rewritten since the trim
        data = _read_key(device, key)
        if data is None:
            continue
        if data == zeros:
            continue
        assert resurrectable, (
            f"trimmed LBA {key} returned data with no intervening crash")
        stale = {p.ljust(opage, b"\0") for p in result.history.get(key, [])}
        assert data in stale, (
            f"trimmed LBA {key} resurrected with never-written data")
    # The incremental fast-path indexes must agree with a full recompute
    # even after arbitrary crash/remount interleavings.
    device._audit_fastpath()


def replay_reference(reference, acked_ops) -> int:
    """Replay an acked op stream on a fault-free device.

    Returns the number of ops applied (the reference can reach end of
    life earlier or later than the faulty device, because crash-induced
    rewrites wear the two chips differently).
    """
    applied = 0
    for op, key, payload in acked_ops:
        try:
            _apply(reference, op, key, payload)
        except MinidiskDecommissionedError:
            applied += 1  # key dropped on the reference; still in step
            continue
        except END_OF_LIFE:
            break
        applied += 1
    return applied
