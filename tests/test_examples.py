"""Every shipped example runs and tells its story.

Examples are documentation that executes; these tests keep them green by
running each script end to end and checking for the line that carries its
point.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": ["REGENERATED", "RegenS in action"],
    "distributed_cluster.py": ["chunks intact",
                               "every acknowledged write survived"],
    "endurance_tournament.py": ["lifetime tournament", "regens"],
    "fleet_sustainability.py": ["sustainability summary", "regen"],
    "failure_prediction.py": ["predictor", "run-to-failure"],
    "erasure_coded_cluster.py": ["RS(3,2)", "30/30 chunks decodable"],
    "power_loss.py": ["POWER LOSS", "exactly the contract"],
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.parametrize("name", sorted(EXPECTED_MARKERS))
def test_example_runs_and_makes_its_point(name):
    output = run_example(name)
    for marker in EXPECTED_MARKERS[name]:
        assert marker in output, (name, marker)


def test_every_example_file_is_covered():
    shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert shipped == set(EXPECTED_MARKERS), (
        "new examples must be added to EXPECTED_MARKERS")
