"""The package's public API surface is importable and coherent."""

import pytest

import repro


class TestPublicAPI:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__ == "0.1.0"

    def test_quickstart_from_docstring(self):
        # The module docstring's example must actually work.
        from repro import SalamanderConfig, SalamanderSSD
        from repro import FlashGeometry, FTLConfig

        geometry = FlashGeometry(blocks=16, fpages_per_block=8)
        config = SalamanderConfig(
            mode="regen", msize_lbas=32, headroom_fraction=0.25,
            ftl=FTLConfig(overprovision=0.25, buffer_opages=8))
        device = SalamanderSSD.create(geometry, config, seed=0)
        device.write(0, 0, b"hello")
        assert device.read(0, 0).rstrip(b"\0") == b"hello"

    def test_paper_constants_exposed(self):
        from repro import CarbonParams, TCOParams, carbon_savings, tco_savings
        assert 0.0 < carbon_savings(CarbonParams()) < 0.1
        assert 0.1 < tco_savings(TCOParams()) < 0.2

    def test_fig2_helper_exposed(self):
        points = repro.tiredness_tradeoff()
        assert points[1].pec_gain == pytest.approx(0.5, abs=1e-6)
