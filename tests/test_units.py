"""Unit tests for size/time helpers."""

import pytest

from repro.units import (
    DAY,
    GIB,
    KIB,
    MIB,
    YEAR,
    format_duration,
    format_size,
    require_fraction,
    require_multiple,
    require_positive,
)


class TestFormatSize:
    @pytest.mark.parametrize("value,expected", [
        (0, "0 B"),
        (512, "512 B"),
        (KIB, "1.0 KiB"),
        (3 * MIB, "3.0 MiB"),
        (int(2.5 * GIB), "2.5 GiB"),
        (-2 * KIB, "-2.0 KiB"),
    ])
    def test_examples(self, value, expected):
        assert format_size(value) == expected


class TestFormatDuration:
    @pytest.mark.parametrize("value,expected", [
        (0.5e-6, "0.50 us"),
        (2.5e-3, "2.50 ms"),
        (1.5, "1.50 s"),
        (90, "1.5 min"),
        (2 * 3600, "2.0 h"),
        (3 * DAY, "3.0 d"),
        (2 * YEAR, "2.00 yr"),
        (-90, "-1.5 min"),
    ])
    def test_examples(self, value, expected):
        assert format_duration(value) == expected


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("4096", 4096),
        ("4KiB", 4 * KIB),
        ("4 kib", 4 * KIB),
        ("1.5M", int(1.5 * MIB)),
        ("2GiB", 2 * GIB),
        ("0B", 0),
    ])
    def test_examples(self, text, expected):
        from repro.units import parse_size
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "KiB", "4XB", "-1KiB", "1.0001B"])
    def test_rejects_garbage(self, bad):
        from repro.units import parse_size
        with pytest.raises(ValueError):
            parse_size(bad)

    def test_roundtrips_format_size(self):
        from repro.units import format_size, parse_size
        for value in (KIB, 3 * MIB, 2 * GIB):
            assert parse_size(format_size(value)) == value


class TestValidators:
    def test_require_positive(self):
        require_positive("x", 1)
        with pytest.raises(ValueError):
            require_positive("x", 0)

    def test_require_fraction(self):
        require_fraction("x", 0.0)
        require_fraction("x", 1.0)
        with pytest.raises(ValueError):
            require_fraction("x", 1.01)

    def test_require_multiple(self):
        require_multiple("x", 8, 4)
        with pytest.raises(ValueError):
            require_multiple("x", 9, 4)
        with pytest.raises(ValueError):
            require_multiple("x", 0, 4)
