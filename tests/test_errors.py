"""The exception hierarchy behaves as a hierarchy."""

import pytest

import repro.errors as E


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        E.ConfigError, E.FlashError, E.ProgramError, E.EraseError,
        E.UncorrectableError, E.SSDError, E.DeviceBrickedError,
        E.DeviceReadOnlyError, E.OutOfSpaceError, E.InvalidLBAError,
        E.MinidiskError, E.MinidiskDecommissionedError, E.DiFSError,
        E.ChunkLostError, E.NoPlacementError, E.SimulationError,
    ])
    def test_everything_is_repro_error(self, exc):
        assert issubclass(exc, E.ReproError)

    def test_config_error_is_value_error(self):
        assert issubclass(E.ConfigError, ValueError)

    def test_invalid_lba_is_index_error(self):
        assert issubclass(E.InvalidLBAError, IndexError)

    def test_uncorrectable_carries_context(self):
        error = E.UncorrectableError("boom", bit_errors=12, correctable=10)
        assert error.bit_errors == 12
        assert error.correctable == 10
        assert issubclass(E.UncorrectableError, E.FlashError)

    def test_minidisk_errors_are_ssd_errors(self):
        assert issubclass(E.MinidiskDecommissionedError, E.SSDError)
