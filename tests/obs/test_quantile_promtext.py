"""Histogram quantile interpolation and promtext parser robustness."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import (
    MetricsRegistry,
    quantile_from_cumulative,
    quantile_from_sample,
)
from repro.obs.promtext import parse_prometheus_text, render_prometheus


class TestQuantileFromCumulative:
    # Cumulative (le, count): 10 obs <= 1, 30 <= 2, 40 <= +Inf.
    BUCKETS = [(1.0, 10), (2.0, 30), (math.inf, 40)]

    def test_linear_interpolation_within_bucket(self):
        # Median rank 20 lands in the (1, 2] bucket holding 20 obs;
        # (20 - 10) / 20 of the way through -> 1.5.
        assert quantile_from_cumulative(self.BUCKETS, 0.5) == \
            pytest.approx(1.5)

    def test_first_bucket_interpolates_from_zero(self):
        # Rank 4 in the first bucket: lower bound is 0.
        assert quantile_from_cumulative(self.BUCKETS, 0.1) == \
            pytest.approx(0.4)

    def test_overflow_clamps_to_last_finite_bound(self):
        assert quantile_from_cumulative(self.BUCKETS, 0.99) == 2.0
        assert quantile_from_cumulative(self.BUCKETS, 1.0) == 2.0

    def test_empty_and_zero_total(self):
        with pytest.raises(ConfigError, match="at least one bucket"):
            quantile_from_cumulative([], 0.5)
        assert quantile_from_cumulative([(1.0, 0), (math.inf, 0)],
                                        0.5) == 0.0

    def test_q_out_of_range(self):
        with pytest.raises(ConfigError):
            quantile_from_cumulative(self.BUCKETS, 1.5)
        with pytest.raises(ConfigError):
            quantile_from_cumulative(self.BUCKETS, -0.1)

    def test_empty_middle_bucket_returns_upper_bound(self):
        buckets = [(1.0, 10), (2.0, 10), (4.0, 20), (math.inf, 20)]
        # Rank 15 falls in the (2, 4] bucket.
        assert quantile_from_cumulative(buckets, 0.75) == \
            pytest.approx(3.0)


class TestHistogramQuantile:
    def test_live_histogram_matches_exported_sample(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "repro_latency_us", "latency", buckets=[1.0, 2.0, 4.0])
        for value in [0.5, 1.5, 1.5, 3.0, 10.0]:
            hist.observe(value)
        live = hist.quantile(0.5)
        sample = registry.to_dict()["metrics"][0]["samples"][0]
        assert quantile_from_sample(sample, 0.5) == pytest.approx(live)
        # p100 of an overflowed histogram clamps to the last bound.
        assert hist.quantile(1.0) == 4.0

    def test_quantile_from_sample_requires_buckets(self):
        with pytest.raises(ConfigError, match="buckets"):
            quantile_from_sample({"sum": 1.0, "count": 2}, 0.5)


class TestPromtextLabelParsing:
    def test_trailing_comma_is_legal(self):
        # The exposition format explicitly permits {a="1",}.
        parsed = parse_prometheus_text('m{a="1",} 2.0\n')
        assert parsed["m"]["samples"][(("a", "1"),)] == 2.0

    def test_escape_round_trip(self):
        nasty = 'back\\slash "quote"\nnewline'
        document = {"metrics": [{
            "type": "gauge", "name": "m", "help": "",
            "samples": [{"labels": {"path": nasty}, "value": 1.0}],
        }]}
        text = render_prometheus(document)
        parsed = parse_prometheus_text(text)
        assert parsed["m"]["samples"][(("path", nasty),)] == 1.0

    @pytest.mark.parametrize("line", [
        'm{a} 1.0',            # no '='
        'm{a=1} 1.0',          # unquoted value
        'm{a="1} 1.0',         # unterminated value
        'm{="1"} 1.0',         # empty label name
        'm{a="1" 1.0',         # missing '}'
        'm 1.0 extra junk',    # too many fields
        'm not-a-number',      # bad sample value
        '# TYPE m',            # malformed TYPE comment
    ])
    def test_malformed_input_raises_config_error(self, line):
        with pytest.raises(ConfigError):
            parse_prometheus_text(line + "\n")

    def test_special_values_round_trip(self):
        parsed = parse_prometheus_text(
            "m_nan NaN\nm_pinf +Inf\nm_ninf -Inf\n")
        assert math.isnan(parsed["m_nan"]["samples"][()])
        assert parsed["m_pinf"]["samples"][()] == math.inf
        assert parsed["m_ninf"]["samples"][()] == -math.inf

    def test_counter_total_suffix_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("repro_ops", "ops").inc(3)
        parsed = parse_prometheus_text(
            render_prometheus(registry.to_dict()))
        assert parsed["repro_ops_total"]["type"] == "counter"
        assert parsed["repro_ops_total"]["samples"][()] == 3.0
