"""Wear provenance acceptance: the ledger is *exact*, not approximate.

The contract under test (docs/OBSERVABILITY.md): with a ledger
installed before device construction, the per-cause program/erase
counters sum to the chip's own counters on every device flavour —
including under injected program/erase faults — the per-block ledger
view equals ``pec_array()``, the measured WAF obeys
``1 + overhead/host`` against :mod:`repro.ssd.stats`, artifacts are
byte-identical for any ``--jobs`` fan-out, and forecast rows agree
with :func:`repro.models.lifetime.tiredness_tradeoff` limits exactly.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import faults
from repro.errors import (
    ConfigError,
    DeviceBrickedError,
    DeviceReadOnlyError,
    MinidiskError,
    OutOfSpaceError,
)
from repro.faults import FaultPlan, FaultSpec
from repro.obs import endurance
from repro.obs.endurance import (
    CAUSES,
    ENDURANCE_SCHEMA,
    EnduranceLedger,
    fleet_survival,
    forecast_rows,
    load_endurance,
    validate_endurance_records,
    write_endurance,
)
from repro.ssd.ftl import FTLConfig, PageMappedFTL
from repro.ssd.wear import select_cold_closed_block

FLAVOURS = ("ftl", "baseline", "cvss", "salamander", "regen")

#: Device-side failures the churn workload rides through, exactly like
#: the probe: a tired tiny device legitimately shrinks or fills up.
_CHURN_ERRORS = (DeviceBrickedError, DeviceReadOnlyError,
                 MinidiskError, OutOfSpaceError)


@pytest.fixture
def make_flavour(make_chip, ftl_config, make_baseline, make_cvss,
                 make_salamander):
    """One identically-configured device of any flavour."""

    def factory(flavour: str, seed: int = 7, **chip_kwargs):
        if flavour == "ftl":
            return PageMappedFTL.for_chip(
                make_chip(seed=seed, **chip_kwargs), ftl_config)
        if flavour == "baseline":
            return make_baseline(seed=seed, **chip_kwargs)
        if flavour == "cvss":
            return make_cvss(seed=seed, **chip_kwargs)
        if flavour == "salamander":
            return make_salamander(seed=seed, **chip_kwargs)
        if flavour == "regen":
            return make_salamander(mode="regen", seed=seed, **chip_kwargs)
        raise ValueError(flavour)

    return factory


def churn(device, passes: int = 6) -> None:
    """Overwrite the whole logical space repeatedly: forces GC/erases."""
    salamander = getattr(device, "device_kind", None) == "salamander"
    for p in range(passes):
        if salamander:
            targets = [(m.mdisk_id, m.size_lbas)
                       for m in device.active_minidisks()]
        else:
            targets = [(None, int(device.capacity_lbas))]
        for mdisk, span in targets:
            try:
                for lba in range(span):
                    if p and (lba + p) % 4 == 0:
                        continue  # leave cold data so GC must relocate
                    payload = bytes([(lba + p) & 0xFF]) * 8
                    if mdisk is None:
                        device.write(lba, payload)
                    else:
                        device.write(mdisk, lba, payload)
            except _CHURN_ERRORS:
                break
    try:
        device.flush()
    except _CHURN_ERRORS:
        pass


def assert_ledger_matches_chip(device) -> None:
    """The acceptance identity: ledger == chip counters, exactly."""
    chip = device.chip
    handle = chip._endurance
    assert handle is not None
    assert sum(handle.programs.values()) == handle.total_programs \
        == chip.stats.programs
    assert sum(handle.erases.values()) == handle.total_erases \
        == chip.stats.erases
    # pec_array() is per-fPage; every fPage of a block shares its PEC,
    # so striding by fpages_per_block yields the per-block view.
    per_block = chip.pec_array()[::chip.geometry.fpages_per_block]
    assert [int(c) for c in per_block] == handle.block_erases
    assert sum(handle.block_erases) == handle.total_erases
    validate_endurance_records([handle.document(12.0)])


class TestLedgerMatchesChip:
    @pytest.mark.parametrize("flavour", FLAVOURS)
    def test_cause_sums_equal_chip_counters(self, make_flavour, flavour):
        with endurance.installed(pec_limit=12.0) as led:
            device = make_flavour(flavour)
            churn(device)
        handle = device.chip._endurance
        assert handle is led.devices["wear0"]
        assert handle.total_erases > 0, "churn produced no erases"
        assert_ledger_matches_chip(device)
        validate_endurance_records(led.device_records())

    @pytest.mark.parametrize("flavour", FLAVOURS)
    def test_exact_under_injected_program_and_erase_faults(
            self, make_flavour, flavour):
        # Injected failures raise before the chip mutates anything, so
        # neither PEC nor the ledger may advance for the failed op —
        # the equality has to survive the fault plan untouched.
        plan = FaultPlan(events=(
            FaultSpec(site="chip.program", fault="fail", when=40),
            FaultSpec(site="chip.program", fault="fail", when=90),
            FaultSpec(site="chip.erase", fault="fail", when=3),
        ))
        with faults.installed(plan) as injector, \
                endurance.installed() as led:
            device = make_flavour(flavour, inject_errors=False)
            churn(device)
            fired = injector.summary()["fired"]
        assert sum(fired.values()) >= 1, "no scheduled fault fired"
        assert_ledger_matches_chip(device)
        validate_endurance_records(led.device_records())

    @pytest.mark.parametrize("flavour", ("ftl", "baseline", "cvss"))
    def test_salamander_causes_zero_on_other_flavours(self, make_flavour,
                                                      flavour):
        with endurance.installed():
            device = make_flavour(flavour)
            churn(device)
        handle = device.chip._endurance
        for cause in ("shrink", "regen", "meta", "remount"):
            assert handle.programs[cause] == 0
            assert handle.erases[cause] == 0


class TestWAFDecomposition:
    def test_identity_against_stats_counters(self, make_chip):
        # Scrub on, so host / gc / scrub all contribute: the ledger's
        # decomposition must tie out against the SSDStats counters.
        config = FTLConfig(overprovision=0.25, buffer_opages=8,
                           gc_reserve_blocks=2, scrub_interval_writes=40,
                           scrub_batch_fpages=16)
        with endurance.installed():
            device = PageMappedFTL.for_chip(make_chip(seed=5), config)
            churn(device, passes=8)
        handle = device.chip._endurance
        stats = device.stats
        assert handle.total_program_opages == stats.flash_writes
        relocated = stats.gc_relocations + stats.wear_relocations
        overhead = sum(handle.program_opages[c] for c in CAUSES
                       if c != "host")
        assert overhead == relocated
        host = handle.program_opages["host"]
        assert host == stats.flash_writes - relocated
        assert host > 0 and relocated > 0
        assert handle.waf() == pytest.approx(
            1.0 + overhead / host, rel=1e-12)
        assert handle.waf_terms() == handle.program_opages

    def test_waf_none_until_host_opages(self):
        led = EnduranceLedger()
        dev = led.register_device(blocks=4, name="d")
        assert dev.waf() is None
        with led.cause("gc"):
            dev.record_program(4)
        assert dev.waf() is None  # overhead only, denominator still 0
        dev.record_program(4)
        assert dev.waf() == pytest.approx(2.0)


class TestCauseStack:
    def test_default_cause_is_host(self):
        led = EnduranceLedger()
        assert led.current_cause() == "host"

    def test_innermost_cause_wins(self):
        led = EnduranceLedger()
        dev = led.register_device(blocks=2, name="d")
        with led.cause("scrub"):
            dev.record_program(1)
            with led.cause("gc"):
                dev.record_program(1)
                dev.record_erase(0)
            dev.record_erase(1)
        assert dev.programs["scrub"] == dev.programs["gc"] == 1
        assert dev.erases["gc"] == dev.erases["scrub"] == 1
        assert led.current_cause() == "host"

    def test_unknown_cause_rejected(self):
        led = EnduranceLedger()
        with pytest.raises(ConfigError, match="unknown wear cause"):
            with led.cause("cosmic_rays"):
                pass
        assert led.current_cause() == "host"

    def test_duplicate_device_name_rejected(self):
        led = EnduranceLedger()
        led.register_device(blocks=2, name="d")
        with pytest.raises(ConfigError, match="already registered"):
            led.register_device(blocks=2, name="d")

    def test_auto_names_follow_registration_order(self):
        led = EnduranceLedger()
        assert led.register_device(blocks=2).name == "wear0"
        assert led.register_device(blocks=2).name == "wear1"
        led.clear()
        assert led.register_device(blocks=2).name == "wear0"

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ConfigError, match="snapshot_every"):
            EnduranceLedger(snapshot_every=0)
        led = EnduranceLedger()
        with pytest.raises(ConfigError, match="blocks"):
            led.register_device(blocks=0)


class TestSingleton:
    def test_disabled_by_default(self, make_flavour):
        assert endurance.ledger() is None
        assert not endurance.enabled()
        # Zero-cost contract: with nothing installed, devices bind None
        # at construction and the hot path is one attribute test.
        device = make_flavour("ftl")
        assert device.chip._endurance is None
        assert device._endurance is None
        churn(device, passes=2)
        assert device.chip._endurance is None

    def test_installed_scope_restores_previous(self):
        outer = EnduranceLedger()
        with endurance.installed(outer):
            assert endurance.ledger() is outer
            with endurance.installed() as inner:
                assert endurance.ledger() is inner
                assert inner is not outer
            assert endurance.ledger() is outer
        assert endurance.ledger() is None

    def test_install_uninstall(self):
        led = endurance.install(pec_limit=9.0)
        try:
            assert endurance.enabled()
            assert endurance.ledger() is led
            assert led.pec_limit == 9.0
        finally:
            endurance.uninstall()
        assert not endurance.enabled()


class TestForecasting:
    def _burned_device(self):
        led = EnduranceLedger()
        dev = led.register_device(blocks=4, name="d", snapshot_every=1)
        # 8 host programs of 5 oPages, one erase each: snapshots run
        # (1, 5, 0.25) ... (8, 40, 2.0), a slope of 1.75/35 = 0.05
        # mean-PEC per host oPage.
        for i in range(8):
            dev.record_program(5)
            dev.record_erase(i % 4)
        return dev

    def test_burn_slope_is_first_to_last_snapshot(self):
        dev = self._burned_device()
        assert dev.snapshots[0] == (1, 5, 0.25)
        assert dev.snapshots[-1] == (8, 40, 2.0)
        assert dev.burn_slope() == pytest.approx(0.05)

    def test_forecast_eta_is_exact(self):
        dev = self._burned_device()
        forecast = dev.forecast(pec_limit=3.0)
        assert forecast["mean_pec"] == pytest.approx(2.0)
        assert forecast["eta_host_opages"] == pytest.approx(20.0)
        # Already past the limit: ETA clamps to zero, never negative.
        assert dev.forecast(pec_limit=1.0)["eta_host_opages"] == 0.0

    def test_no_slope_cases_yield_none(self):
        led = EnduranceLedger()
        fresh = led.register_device(blocks=2, name="fresh",
                                    snapshot_every=1)
        assert fresh.burn_slope() is None  # no snapshots at all
        fresh.record_erase(0)
        assert fresh.burn_slope() is None  # one snapshot: no baseline
        housekeeping = led.register_device(blocks=2, name="gc-only",
                                           snapshot_every=1)
        with led.cause("gc"):
            housekeeping.record_program(4)
            housekeeping.record_erase(0)
            housekeeping.record_erase(1)
        # Two snapshots but zero host progress: no host-work axis.
        assert housekeeping.burn_slope() is None
        assert housekeeping.forecast(pec_limit=5.0) is None
        assert housekeeping.document(5.0)["forecast"] is None

    def test_forecast_rows_match_tiredness_tradeoff(self):
        from repro.models.lifetime import tiredness_tradeoff

        doc = self._burned_device().document(pec_limit=3.0)
        rows = forecast_rows([doc])
        levels = tiredness_tradeoff(pec_limit_l0=3.0)
        assert [row["level"] for row in rows] == \
            [level.level for level in levels]
        assert [row["pec_limit"] for row in rows] == \
            [level.pec_limit for level in levels]
        for row in rows:
            assert row["eta_host_opages"] == max(
                0.0, (row["pec_limit"] - row["mean_pec"])
                / row["slope_pec_per_host_opage"])
        etas = [row["eta_host_opages"] for row in rows]
        assert etas == sorted(etas), \
            "higher tiredness levels must never shorten the ETA"

    def test_forecast_rows_l0_override(self):
        from repro.models.lifetime import tiredness_tradeoff

        doc = self._burned_device().document(pec_limit=3.0)
        rows = forecast_rows([doc], pec_limit_l0=6.0)
        assert [row["pec_limit"] for row in rows] == \
            [level.pec_limit for level in tiredness_tradeoff(
                pec_limit_l0=6.0)]

    def test_forecast_rows_skip_unforecastable_devices(self):
        led = EnduranceLedger()
        dev = led.register_device(blocks=2, name="fresh")
        assert forecast_rows([dev.document(5.0)]) == []
        assert forecast_rows([dev.document()]) == []

    def test_fleet_survival_counts_clearing_etas(self):
        docs = []
        for name, eta in (("a", 10.0), ("b", 100.0)):
            dev = self._burned_device()
            doc = dev.document(pec_limit=3.0)
            doc["name"] = name
            doc["forecast"]["eta_host_opages"] = eta
            docs.append(doc)
        docs.append({"name": "c", "forecast": None})
        survival = fleet_survival(docs, horizon_host_opages=50.0)
        assert survival["devices"] == 3
        assert survival["forecastable"] == 2
        assert survival["surviving"] == 1
        assert survival["survival_fraction"] == pytest.approx(0.5)
        empty = fleet_survival([], horizon_host_opages=50.0)
        assert empty["survival_fraction"] is None

    def test_churned_device_forecast_ties_to_lifetime_model(
            self, make_flavour):
        # End to end: a real churned device's artifact record yields
        # one forecast row per tiredness level, each recomputable from
        # the record's own slope and mean — the "stated tolerance" is
        # exact recomputation.
        from repro.models.lifetime import tiredness_tradeoff

        with endurance.installed(pec_limit=12.0) as led:
            device = make_flavour("ftl")
            churn(device, passes=8)
        (record,) = led.device_records()
        assert record["forecast"] is not None, \
            "churn produced too few snapshots for a burn slope"
        rows = forecast_rows([record])
        assert len(rows) == len(tiredness_tradeoff(pec_limit_l0=12.0))
        slope = record["forecast"]["slope_pec_per_host_opage"]
        mean = record["forecast"]["mean_pec"]
        for row in rows:
            assert row["eta_host_opages"] == max(
                0.0, (row["pec_limit"] - mean) / slope)


class TestArtifacts:
    def _churned_ledger(self, make_flavour):
        with endurance.installed(pec_limit=12.0) as led:
            device = make_flavour("ftl")
            churn(device, passes=4)
        return led

    def test_round_trip(self, make_flavour, tmp_path):
        led = self._churned_ledger(make_flavour)
        path = led.export_jsonl(tmp_path / "e.jsonl", meta={"seed": 7})
        header, records = load_endurance(path)
        assert header["schema"] == ENDURANCE_SCHEMA
        assert header["meta"]["seed"] == 7
        assert header["meta"]["devices"] == 1
        assert header["meta"]["causes"] == list(CAUSES)
        assert records == led.device_records()
        validate_endurance_records(records)

    def test_writes_are_deterministic_bytes(self, make_flavour, tmp_path):
        led = self._churned_ledger(make_flavour)
        a = led.export_jsonl(tmp_path / "a.jsonl")
        b = led.export_jsonl(tmp_path / "b.jsonl")
        assert a.read_bytes() == b.read_bytes()

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            load_endurance(tmp_path / "nope.jsonl")

    def test_corrupt_line(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"kind": "header"\n')
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_endurance(path)

    def test_non_object_line(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text("42\n")
        with pytest.raises(ConfigError, match="not a JSON object"):
            load_endurance(path)

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text(json.dumps(
            {"kind": "header", "schema": "repro.obs.bogus/v9"}) + "\n")
        with pytest.raises(ConfigError, match="unsupported endurance"):
            load_endurance(path)

    def test_headerless(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text(json.dumps({"kind": "device", "name": "d"}) + "\n")
        with pytest.raises(ConfigError, match="no .* header"):
            load_endurance(path)

    def test_write_endurance_standalone_header(self, tmp_path):
        led = EnduranceLedger()
        dev = led.register_device(blocks=2, name="d")
        dev.record_program(1)
        dev.record_erase(0)
        path = write_endurance(tmp_path / "w.jsonl", [dev.document()],
                               meta={"modes": ["baseline"]})
        header, records = load_endurance(path)
        assert header["meta"]["modes"] == ["baseline"]
        validate_endurance_records(records)


class TestValidation:
    @pytest.fixture
    def record(self):
        led = EnduranceLedger()
        dev = led.register_device(blocks=2, name="d")
        dev.record_program(3)
        with led.cause("gc"):
            dev.record_program(2)
            dev.record_erase(0)
        return dev.document()

    def test_valid_record_passes(self, record):
        validate_endurance_records([record])

    def test_missing_key(self, record):
        del record["waf"]
        with pytest.raises(ConfigError, match="missing 'waf'"):
            validate_endurance_records([record])

    def test_cause_set_mismatch(self, record):
        record["programs"].pop("meta")
        with pytest.raises(ConfigError, match="causes"):
            validate_endurance_records([record])

    def test_sum_total_mismatch(self, record):
        record["total_erases"] += 1
        with pytest.raises(ConfigError, match="sum"):
            validate_endurance_records([record])

    def test_histogram_must_cover_blocks(self, record):
        record["pec_histogram"] = {"0": 1}
        with pytest.raises(ConfigError, match="pec_histogram covers"):
            validate_endurance_records([record])

    def test_waf_identity_enforced(self, record):
        record["waf"] += 0.5
        with pytest.raises(ConfigError, match="breaks the identity"):
            validate_endurance_records([record])

    def test_waf_forbidden_without_host_opages(self):
        led = EnduranceLedger()
        dev = led.register_device(blocks=2, name="d")
        record = dev.document()
        record["waf"] = 1.0
        with pytest.raises(ConfigError, match="no host oPages"):
            validate_endurance_records([record])


class TestJobsInvariance:
    def test_merged_endurance_identical_across_jobs(self):
        from repro.io.probe import (
            ProbeConfig,
            merged_endurance,
            run_probes,
        )

        config = ProbeConfig(n_requests=120, every=4, age_passes=8)
        one = run_probes(("baseline", "shrink"), seed=11, config=config,
                         jobs=1)
        two = run_probes(("baseline", "shrink"), seed=11, config=config,
                         jobs=2)
        merged = merged_endurance(one)
        assert json.dumps(merged, sort_keys=True) == \
            json.dumps(merged_endurance(two), sort_keys=True)
        assert [record["name"] for record in merged] == \
            ["baseline/wear0", "shrink/wear0"]
        validate_endurance_records(merged)
        # The probes' scope-installed ledgers must not leak.
        assert not endurance.enabled()


class TestWearLeveling:
    def test_level_wear_charged_to_wear_level_cause(self, make_chip,
                                                    ftl_config):
        with endurance.installed():
            device = PageMappedFTL.for_chip(make_chip(seed=9), ftl_config)
            churn(device, passes=4)
            # Free up logical space so the leveler's relocation target
            # allocation cannot hit the GC reserve.
            for lba in range(int(device.capacity_lbas) // 2):
                device.trim(lba)
            device.flush()
            handle = device.chip._endurance
            assert handle.erases["wear_level"] == 0
            moved = device.level_wear(min_spread=0)
            # A victim existed (churn left closed blocks), so its erase
            # and every survivor relocation land on the wear_level
            # cause — and nowhere else.
            assert handle.erases["wear_level"] == 1
            assert handle.program_opages["wear_level"] == moved
            assert moved > 0, "cold victim held no survivors"
        assert_ledger_matches_chip(device)

    def test_select_cold_closed_block(self):
        assert select_cold_closed_block(
            np.array([], dtype=np.int64),
            np.array([3, 1, 2], dtype=np.int64)) is None
        closed = np.array([0, 1, 2], dtype=np.int64)
        counts = np.array([5, 2, 2, 9], dtype=np.int64)
        # Ties break to the lowest block id, deterministically.
        assert select_cold_closed_block(closed, counts) == 1


class TestClusterWear:
    def test_wear_stats_aggregate_each_chip_once(self, make_baseline,
                                                 make_salamander):
        from repro.difs.cluster import Cluster, ClusterConfig

        with endurance.installed():
            cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4),
                              seed=11)
            cluster.add_node("n0")
            cluster.add_node("n1")
            cluster.add_device("n0", make_salamander(seed=1))
            cluster.add_device("n1", make_baseline(seed=2))
            for i in range(12):
                cluster.create_chunk(f"c{i}", bytes([i]) * 16)
            stats = cluster.wear_stats()
        # The Salamander device contributes many minidisk volumes but
        # exactly one chip: it must be counted once.
        assert stats["devices"] == 2
        assert sum(stats["program_opages"].values()) == \
            stats["total_program_opages"]
        assert sum(stats["erases"].values()) == stats["total_erases"]
        host = stats["program_opages"]["host"]
        assert host > 0
        assert stats["waf"] == pytest.approx(
            1.0 + (stats["total_program_opages"] - host) / host)

    def test_wear_stats_zero_without_ledger(self, make_baseline):
        from repro.difs.cluster import Cluster, ClusterConfig

        cluster = Cluster(ClusterConfig(replication=1, chunk_lbas=4),
                          seed=3)
        cluster.add_node("n0")
        cluster.add_device("n0", make_baseline())
        cluster.create_chunk("c", b"x")
        stats = cluster.wear_stats()
        assert stats["devices"] == 0
        assert stats["total_program_opages"] == 0
        assert stats["waf"] is None
