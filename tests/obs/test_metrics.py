"""Registry semantics: registration, labels, histograms, export."""

import json
import math

import pytest

from repro import obs
from repro.errors import ConfigError
from repro.obs import (
    MetricsRegistry,
    parse_prometheus_text,
    render_prometheus,
    validate_metrics_document,
)


class TestRegistration:
    def test_idempotent_registration_returns_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", help="h", labelnames=("device",))
        b = registry.counter("x_total", help="other",
                             labelnames=("device",))
        assert a is b
        assert len(registry) == 1

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ConfigError):
            registry.gauge("x_total")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labelnames=("device",))
        with pytest.raises(ConfigError):
            registry.counter("x_total", labelnames=("mode",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigError):
            registry.counter("2bad")
        with pytest.raises(ConfigError):
            registry.counter("ok_total", labelnames=("bad-label",))

    def test_get_and_families_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_total")
        registry.gauge("a")
        assert [f.name for f in registry.families()] == ["a", "b_total"]
        assert registry.get("a").kind == "gauge"
        assert registry.get("missing") is None


class TestChildren:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total")
        family.inc()
        family.inc(2.5)
        assert family.value == 3.5
        with pytest.raises(ConfigError):
            family.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4.0

    def test_labelled_children_are_distinct_and_cached(self):
        family = MetricsRegistry().counter("c_total",
                                           labelnames=("device",))
        family.labels(device="dev0").inc()
        family.labels(device="dev1").inc(2)
        assert family.labels(device="dev0").value == 1.0
        assert family.labels(device="dev1").value == 2.0
        assert family.labels(device="dev0") is family.labels(device="dev0")

    def test_wrong_labels_rejected(self):
        family = MetricsRegistry().counter("c_total",
                                           labelnames=("device",))
        with pytest.raises(ConfigError):
            family.labels(mode="x")
        with pytest.raises(ConfigError):
            family.inc()  # labelled family has no default child

    def test_label_cardinality_bounded(self):
        family = MetricsRegistry().counter("c_total", labelnames=("k",))
        family.max_label_sets = 8
        for i in range(8):
            family.labels(k=str(i)).inc()
        with pytest.raises(ConfigError):
            family.labels(k="overflow")


class TestHistogram:
    def test_buckets_cumulative_and_exported(self):
        registry = MetricsRegistry()
        family = registry.histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 1.7, 10.0):
            family.observe(value)
        child = family.labels()
        assert child.count == 4
        assert child.sum == pytest.approx(13.7)
        assert child.cumulative_buckets() == [
            (1.0, 1), (2.0, 3), (5.0, 3), (math.inf, 4)]

    def test_percentile_estimates(self):
        family = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 1.7, 3.0):
            family.observe(value)
        child = family.labels()
        assert child.percentile(50) == 2.0
        assert child.percentile(100) == 5.0
        assert MetricsRegistry().histogram("h2").labels().percentile(50) \
            == 0.0

    def test_bad_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigError):
            registry.histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ConfigError):
            registry.histogram("h2", buckets=(1.0, 1.0))
        # An empty bucket tuple falls back to the defaults.
        from repro.obs.metrics import DEFAULT_BUCKETS
        assert registry.histogram("h3", buckets=()).buckets \
            == DEFAULT_BUCKETS


class TestExport:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("repro_x_total", help="a counter", unit="opages",
                         labelnames=("device",)).labels(device="dev0").inc(3)
        registry.gauge("repro_g", help="a gauge").set(1.5)
        histogram = registry.histogram("repro_h", help="a histogram",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(5.0)
        return registry

    def test_document_validates(self):
        document = self._populated().to_dict()
        assert validate_metrics_document(document) is document

    def test_document_is_json_round_trippable(self, tmp_path):
        registry = self._populated()
        path = registry.write_json(tmp_path / "m.json")
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(registry.to_dict()))
        validate_metrics_document(loaded)

    def test_validation_rejects_corruption(self):
        document = self._populated().to_dict()
        document["metrics"][0]["type"] = "mystery"
        with pytest.raises(ConfigError):
            validate_metrics_document(document)
        with pytest.raises(ConfigError):
            validate_metrics_document({"schema": "nope", "metrics": []})

    def test_prometheus_round_trip(self):
        registry = self._populated()
        text = registry.to_prometheus()
        parsed = parse_prometheus_text(text)
        assert parsed["repro_x_total"]["type"] == "counter"
        assert parsed["repro_x_total"]["samples"][
            (("device", "dev0"),)] == 3.0
        assert parsed["repro_g"]["samples"][()] == 1.5
        histogram = parsed["repro_h_bucket"]["samples"]
        assert histogram[(("le", "0.1"),)] == 1.0
        assert histogram[(("le", "+Inf"),)] == 2.0
        assert parsed["repro_h_count"]["samples"][()] == 2.0

    def test_prometheus_render_parse_identity(self):
        text = render_prometheus(self._populated().to_dict())
        assert parse_prometheus_text(text) == parse_prometheus_text(
            render_prometheus(self._populated().to_dict()))

    def test_collect_hook_runs_at_export(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("lazy")
        state = {"n": 0}
        registry.add_collect_hook(lambda: gauge.set(state["n"]))
        state["n"] = 7
        document = registry.to_dict()
        (sample,) = [m for m in document["metrics"]
                     if m["name"] == "lazy"][0]["samples"]
        assert sample["value"] == 7.0


class TestGlobalSingletons:
    def test_noop_by_default(self):
        assert not obs.metrics_enabled()
        # No-op calls must be safe and free of side effects.
        obs.metrics().counter("whatever_total").inc()
        assert obs.metrics().to_dict()["metrics"] == []
        assert obs.metrics().to_prometheus() == ""

    def test_enable_disable_cycle(self):
        registry = obs.enable_metrics()
        try:
            assert obs.metrics() is registry
            assert obs.metrics_enabled()
        finally:
            obs.disable()
        assert not obs.metrics_enabled()

    def test_scoped_enable_restores_previous(self):
        assert not obs.metrics_enabled()
        with obs.enabled() as (registry, tracer):
            assert obs.metrics() is registry
            assert obs.tracer() is tracer
        assert not obs.metrics_enabled()
        assert not obs.tracing_enabled()
