"""SMART catalog contract: names, version, and artifact round-trips.

The catalog (:mod:`repro.obs.smart`) is the vocabulary every telemetry
producer emits into timeseries buffers; these tests pin the version-2
wear-provenance fields, the only-grows compatibility rule (version-1
artifacts still load and validate), and loud rejection of unknown
names.
"""

import pytest

from repro.errors import ConfigError
from repro.obs.smart import (
    SMART_CATALOG_VERSION,
    SMART_FIELDS,
    is_smart_series,
    smart_field,
)
from repro.obs.timeseries import (
    TimeseriesSampler,
    load_timeseries,
    merge_documents,
    validate_timeseries_document,
)

#: Catalog-version-1 fields (the pre-wear-provenance vocabulary).
V1_FIELDS = (
    "repro_smart_age_days",
    "repro_smart_host_writes_bytes",
    "repro_smart_bad_blocks",
    "repro_smart_mean_pec",
    "repro_smart_wear_percentile",
)

#: Fields added by catalog version 2.
V2_FIELDS = (
    "repro_smart_waf",
    "repro_smart_wear_burn_rate",
    "repro_smart_lifetime_eta_days",
)


class TestCatalog:
    def test_version_bumped_for_wear_fields(self):
        assert SMART_CATALOG_VERSION == 2

    def test_wear_fields_present_with_units(self):
        assert smart_field("repro_smart_waf").unit == "ratio"
        assert smart_field("repro_smart_wear_burn_rate").unit == \
            "cycles_per_day"
        assert smart_field("repro_smart_lifetime_eta_days").unit == "days"
        for name in V2_FIELDS:
            assert smart_field(name).kind == "gauge"

    def test_v1_vocabulary_still_present(self):
        # The catalog only grows: every v1 name must keep resolving.
        for name in V1_FIELDS:
            assert smart_field(name).name == name
            assert is_smart_series(name)

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown SMART field"):
            smart_field("repro_smart_flux_capacitance")
        assert not is_smart_series("repro_smart_flux_capacitance")

    def test_catalog_is_keyed_by_name(self):
        for name, field in SMART_FIELDS.items():
            assert field.name == name
            assert field.kind in ("gauge", "counter")


class TestArtifactRoundTrip:
    def _record(self, sampler, names, device):
        for t in (0.0, 10.0):
            for i, name in enumerate(names):
                meta = smart_field(name)
                sampler.record(name, t, float(i + t),
                               labels={"device": device},
                               unit=meta.unit, kind=meta.kind)

    def test_old_and_new_artifacts_load_and_validate(self, tmp_path):
        # A version-1-era artifact (no wear fields) and a version-2
        # artifact must both load and validate — and so must their
        # merge, the mixed-fleet case.
        old_sampler = TimeseriesSampler(cadence=0.0)
        self._record(old_sampler, V1_FIELDS, device="dev0")
        old_path = old_sampler.export_jsonl(tmp_path / "old.jsonl")

        new_sampler = TimeseriesSampler(cadence=0.0)
        self._record(new_sampler, V1_FIELDS + V2_FIELDS, device="dev1")
        new_path = new_sampler.export_jsonl(tmp_path / "new.jsonl")

        old_doc = validate_timeseries_document(load_timeseries(old_path))
        new_doc = validate_timeseries_document(load_timeseries(new_path))
        old_names = {s["name"] for s in old_doc["series"]}
        new_names = {s["name"] for s in new_doc["series"]}
        assert not old_names & set(V2_FIELDS)
        assert set(V2_FIELDS) <= new_names

        merged = validate_timeseries_document(
            merge_documents([old_doc, new_doc]))
        merged_names = {s["name"] for s in merged["series"]}
        assert set(V1_FIELDS) | set(V2_FIELDS) <= merged_names

    def test_wear_series_round_trip_values(self, tmp_path):
        sampler = TimeseriesSampler(cadence=0.0)
        sampler.record("repro_smart_waf", 1.0, 1.25,
                       labels={"device": "dev0"}, unit="ratio")
        sampler.record("repro_smart_lifetime_eta_days", 1.0, 420.0,
                       labels={"device": "dev0"}, unit="days")
        path = sampler.export_jsonl(tmp_path / "wear.jsonl")
        doc = validate_timeseries_document(load_timeseries(path))
        by_name = {s["name"]: s for s in doc["series"]}
        assert by_name["repro_smart_waf"]["v"] == [1.25]
        assert by_name["repro_smart_lifetime_eta_days"]["v"] == [420.0]


class TestProducers:
    def test_salamander_smart_sample_includes_waf(self, make_salamander):
        device = make_salamander()
        mdisk = device.active_minidisks()[0].mdisk_id
        for lba in range(16):
            device.write(mdisk, lba, bytes([lba]) * 8)
        device.flush()
        sample = device.smart_sample()
        for name in sample:
            assert is_smart_series(name), name
        # Buffered writes may still hold WAF below 1; it must be the
        # stats view either way.
        assert sample["repro_smart_waf"] == pytest.approx(
            device.stats.write_amplification)
        assert sample["repro_smart_waf"] > 0.0

    def test_fleet_emits_wear_forecast_series(self):
        from repro import obs
        from repro.flash.geometry import FlashGeometry
        from repro.sim.fleet import FleetConfig, simulate_fleet

        sampler = TimeseriesSampler(cadence=50.0)
        config = FleetConfig(
            devices=4, horizon_days=600, step_days=10,
            geometry=FlashGeometry(blocks=64, fpages_per_block=32))
        with obs.enabled(timeseries_sampler=sampler):
            simulate_fleet(config, "baseline", seed=5)
        names = sampler.series_names()
        for required in V2_FIELDS:
            assert required in names, required
        waf = sampler.get_series("repro_smart_waf", {"mode": "baseline"})
        assert waf.values[-1] == pytest.approx(
            config.write_amplification)
        eta = sampler.get_series("repro_smart_lifetime_eta_days",
                                 {"mode": "baseline"})
        assert eta.values[-1] >= 0.0
