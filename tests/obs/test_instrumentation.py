"""One instrumented path per layer: FTL/GC, salamander, diFS, fleet.

Instruments are bound at construction time, so every test constructs
its subject *inside* an ``obs.enabled()`` scope; the no-op test checks
the opposite — that a run outside the scope leaves nothing behind and
produces bit-identical results.
"""

import numpy as np
import pytest

from repro import obs
from repro.difs.cluster import Cluster, ClusterConfig
from repro.flash.geometry import FlashGeometry
from repro.sim.fleet import FleetConfig, simulate_fleet
from repro.workloads.generators import stamp_payload


@pytest.fixture
def scoped_obs():
    with obs.enabled() as (registry, tracer):
        yield registry, tracer


def _value(registry, name, **labels):
    family = registry.get(name)
    assert family is not None, f"metric {name} never registered"
    return family.labels(**labels).value


class TestFTLLayer:
    def test_host_and_flash_writes_counted(self, scoped_obs, make_baseline):
        registry, _ = scoped_obs
        ssd = make_baseline()
        device = ssd.obs_name
        for lba in range(16):
            ssd.write(lba, stamp_payload(lba, ssd.geometry.opage_bytes))
        ssd.flush()
        assert _value(registry, "repro_ftl_host_writes_total",
                      device=device) == 16.0
        assert _value(registry, "repro_ftl_flash_writes_total",
                      device=device) >= 16.0

    def test_gc_victim_picks_feed_the_histogram(self, scoped_obs,
                                                make_baseline):
        registry, _ = scoped_obs
        ssd = make_baseline()
        payload = stamp_payload(0, ssd.geometry.opage_bytes)
        lbas = ssd.n_lbas
        for round_ in range(6):  # sustained overwrites force GC
            for lba in range(int(lbas * 0.8)):
                ssd.write(lba, payload)
        picks = registry.get("repro_gc_victim_picks_total")
        assert picks is not None
        total = sum(s["value"] for s in picks.samples())
        assert total > 0
        histogram = registry.get("repro_gc_victim_valid_fraction")
        (sample,) = histogram.samples()
        assert sample["count"] == total


class TestSalamanderLayer:
    def test_lifecycle_gauges_track_device(self, scoped_obs,
                                           make_salamander):
        registry, _ = scoped_obs
        device = make_salamander()
        name = device.obs_name
        assert _value(registry, "repro_salamander_active_minidisks",
                      device=name) == len(device.active_minidisks())
        assert _value(registry, "repro_salamander_advertised_bytes",
                      device=name) == device.advertised_bytes
        assert _value(registry, "repro_salamander_limbo_capacity_opages",
                      device=name) == device.limbo.capacity_opages()

    def test_decommission_counted_by_reason(self, scoped_obs,
                                            make_salamander):
        registry, _ = scoped_obs
        device = make_salamander()
        name = device.obs_name
        before = len(device.active_minidisks())
        victim = device.active_minidisks()[0]
        device._decommission(victim, reason="test")
        assert _value(registry, "repro_salamander_decommissions_total",
                      device=name, reason="test") == 1.0
        assert _value(registry, "repro_salamander_active_minidisks",
                      device=name) == before - 1


class TestDiFSLayer:
    def _cluster(self, make_salamander):
        cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4),
                          seed=11)
        for n in range(4):
            cluster.add_node(f"n{n}")
            cluster.add_device(f"n{n}", make_salamander(seed=n + 1))
        return cluster

    def test_recovery_path_counted(self, scoped_obs, make_salamander):
        registry, _ = scoped_obs
        cluster = self._cluster(make_salamander)
        cluster.create_chunk("c0", b"data")
        volume_id = cluster.namespace["c0"].replicas[0].volume_id
        cluster.time = 3.0
        cluster.recovery.volume_failed(volume_id)
        assert _value(registry, "repro_difs_recovery_queue_depth",
                      kind="volume") == 1.0
        cluster.run_recovery()
        assert _value(registry, "repro_difs_volume_failures_total") == 1.0
        assert _value(registry, "repro_difs_chunks_recovered_total") == 1.0
        read = _value(registry, "repro_difs_recovery_bytes_total",
                      direction="read")
        written = _value(registry, "repro_difs_recovery_bytes_total",
                         direction="write")
        assert read == written == cluster.config.chunk_bytes
        assert _value(registry, "repro_difs_recovery_queue_depth",
                      kind="volume") == 0.0

    def test_recovery_spans_are_traced(self, scoped_obs, make_salamander):
        _, tracer = scoped_obs
        cluster = self._cluster(make_salamander)
        cluster.create_chunk("c0", b"data")
        volume_id = cluster.namespace["c0"].replicas[0].volume_id
        cluster.recovery.volume_failed(volume_id)
        cluster.run_recovery()
        names = {r.name for r in tracer.records()}
        assert "difs.recover_volume" in names

    def test_live_volumes_sampled_at_export(self, scoped_obs,
                                            make_salamander):
        registry, _ = scoped_obs
        cluster = self._cluster(make_salamander)
        document = registry.to_dict()
        (family,) = [f for f in document["metrics"]
                     if f["name"] == "repro_difs_live_volumes"]
        assert family["samples"][0]["value"] == cluster.live_volume_count()


class TestFleetLayer:
    CONFIG = FleetConfig(
        devices=8,
        geometry=FlashGeometry(blocks=64, fpages_per_block=32),
        dwpd=2.0, afr=0.0, horizon_days=400, step_days=20)

    def test_step_metrics_and_final_gauges(self, scoped_obs):
        registry, _ = scoped_obs
        result = simulate_fleet(self.CONFIG, "regen", seed=7)
        steps = len(result.days)
        histogram = registry.get("repro_fleet_step_duration_seconds")
        assert histogram.labels(mode="regen").count == steps
        assert _value(registry, "repro_fleet_devices_functioning",
                      mode="regen") == result.functioning[-1]
        assert _value(registry, "repro_fleet_capacity_bytes",
                      mode="regen") == result.capacity_bytes[-1]
        assert _value(registry, "repro_fleet_capacity_lost_bytes_total",
                      mode="regen") == pytest.approx(
            float(np.sum(result.capacity_lost_bytes)))

    def test_trace_is_sim_day_stamped_and_ordered(self, scoped_obs):
        _, tracer = scoped_obs
        config = FleetConfig(
            devices=8,
            geometry=FlashGeometry(blocks=64, fpages_per_block=32),
            pec_limit_l0=300, dwpd=1.0, afr=0.0,
            horizon_days=1200, step_days=20)
        simulate_fleet(config, "baseline", seed=7)
        records = tracer.records()
        deaths = [r for r in records if r.name == "fleet.device_death"]
        assert deaths, "horizon chosen to wear devices out"
        times = [r.time for r in deaths]
        assert times == sorted(times)
        assert all(0.0 <= t <= config.horizon_days for t in times)
        assert {r.attrs["cause"] for r in deaths} == {"wear"}


class TestDisabledPath:
    def test_disabled_run_registers_nothing(self, make_baseline):
        assert not obs.metrics_enabled()
        ssd = make_baseline()
        ssd.write(0, stamp_payload(0, ssd.geometry.opage_bytes))
        assert len(obs.metrics()) == 0
        assert obs.metrics().to_dict()["metrics"] == []

    def test_instrumentation_does_not_perturb_results(self):
        config = FleetConfig(
            devices=4,
            geometry=FlashGeometry(blocks=64, fpages_per_block=32),
            dwpd=2.0, afr=0.02, horizon_days=200, step_days=20)
        plain = simulate_fleet(config, "shrink", seed=5)
        with obs.enabled():
            observed = simulate_fleet(config, "shrink", seed=5)
        np.testing.assert_array_equal(plain.functioning,
                                      observed.functioning)
        np.testing.assert_array_equal(plain.capacity_bytes,
                                      observed.capacity_bytes)
