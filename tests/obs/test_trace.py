"""Sim-time tracer: spans, events, clocks, ring buffers, export."""

import json

import pytest

from repro import obs
from repro.errors import ConfigError
from repro.obs import SimTimeTracer
from repro.sim.clock import SimClock


class FakeClock:
    def __init__(self):
        self.now = 0.0


class TestClock:
    def test_defaults_to_zero(self):
        tracer = SimTimeTracer()
        assert tracer.now() == 0.0

    def test_accepts_callable(self):
        time = [3.0]
        tracer = SimTimeTracer(clock=lambda: time[0])
        assert tracer.now() == 3.0
        time[0] = 4.5
        assert tracer.now() == 4.5

    def test_accepts_now_attribute_object(self):
        clock = FakeClock()
        tracer = SimTimeTracer(clock=clock)
        clock.now = 9.0
        assert tracer.now() == 9.0

    def test_accepts_sim_clock(self):
        clock = SimClock()
        tracer = SimTimeTracer(clock=clock)
        clock.advance(2.5)
        assert tracer.now() == 2.5

    def test_set_clock_swaps_source(self):
        tracer = SimTimeTracer()
        tracer.set_clock(lambda: 7.0)
        assert tracer.now() == 7.0

    def test_bad_clock_rejected(self):
        with pytest.raises(ConfigError):
            SimTimeTracer(clock="wall")

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError):
            SimTimeTracer(capacity=0)


class TestSpans:
    def test_nested_spans_record_parentage(self):
        clock = FakeClock()
        tracer = SimTimeTracer(clock=clock)
        with tracer.span("outer") as outer:
            clock.now = 1.0
            with tracer.span("inner", device="dev0") as inner:
                clock.now = 2.0
        records = tracer.records()
        assert [r.name for r in records] == ["outer", "inner"]
        by_name = {r.name: r for r in records}
        assert by_name["inner"].parent_id == outer.span_id
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].span_id == inner.span_id
        assert by_name["inner"].start == 1.0
        assert by_name["inner"].end == 2.0
        assert by_name["inner"].attrs == {"device": "dev0"}

    def test_active_depth_tracks_stack(self):
        tracer = SimTimeTracer()
        assert tracer.active_depth == 0
        with tracer.span("a"):
            assert tracer.active_depth == 1
            with tracer.span("b"):
                assert tracer.active_depth == 2
        assert tracer.active_depth == 0

    def test_set_attaches_attrs_mid_flight(self):
        tracer = SimTimeTracer()
        with tracer.span("s") as span:
            span.set(pages=4)
        (record,) = tracer.records()
        assert record.attrs == {"pages": 4}

    def test_exception_marks_error_attr(self):
        tracer = SimTimeTracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (record,) = tracer.records()
        assert record.attrs["error"] == "ValueError"

    def test_events_attach_to_enclosing_span(self):
        tracer = SimTimeTracer()
        tracer.event("orphan")
        with tracer.span("s") as span:
            tracer.event("child", n=1)
        events = [r for r in tracer.records() if not hasattr(r, "end")]
        by_name = {e.name: e for e in events}
        assert by_name["orphan"].span_id is None
        assert by_name["child"].span_id == span.span_id
        assert by_name["child"].attrs == {"n": 1}


class TestRingBuffer:
    def test_oldest_records_evicted_and_counted(self):
        tracer = SimTimeTracer(capacity=4)
        for i in range(6):
            tracer.event(f"e{i}")
        assert tracer.dropped == 2
        assert [r.name for r in tracer.records()] == [
            "e2", "e3", "e4", "e5"]

    def test_clear_resets_everything(self):
        tracer = SimTimeTracer(capacity=2)
        for i in range(4):
            tracer.event(f"e{i}")
        tracer.clear()
        assert tracer.records() == []
        assert tracer.dropped == 0
        assert tracer.active_depth == 0


class TestExport:
    def test_records_ordered_by_time_then_seq(self):
        clock = FakeClock()
        tracer = SimTimeTracer(clock=clock)
        tracer.event("first")
        tracer.event("second")  # same instant: seq breaks the tie
        clock.now = 5.0
        with tracer.span("late"):
            pass
        clock.now = 1.0
        tracer.event("middle")
        assert [r.name for r in tracer.records()] == [
            "first", "second", "middle", "late"]

    def test_export_jsonl_shape(self, tmp_path):
        clock = FakeClock()
        tracer = SimTimeTracer(clock=clock)
        with tracer.span("work", device="dev0"):
            clock.now = 2.0
            tracer.event("tick")
        path = tracer.export_jsonl(tmp_path / "sub" / "trace.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 2
        span = next(line for line in lines if line["kind"] == "span")
        event = next(line for line in lines if line["kind"] == "event")
        assert span["name"] == "work"
        assert span["time"] == 0.0
        assert span["end_time"] == 2.0
        assert span["attrs"] == {"device": "dev0"}
        assert event["span_id"] == span["span_id"]
        # Every record carries a sim timestamp under the same key, and
        # the file is ordered by it (the CI smoke contract).
        times = [line["time"] for line in lines]
        assert times == sorted(times)


    def test_round_trip_after_ring_overflow(self, tmp_path):
        # Eviction must leave a loadable, analyzable artifact: orphaned
        # children (parent evicted) and survivors all round-trip.
        from repro.obs.analyze import analyze_trace, load_trace_jsonl

        clock = FakeClock()
        tracer = SimTimeTracer(clock=clock, capacity=8)
        for i in range(20):
            clock.now = float(i)
            with tracer.span(f"op{i % 2}"):
                clock.now = float(i) + 0.5
                tracer.event("tick")
        # Spans and events ring separately: 8 of each survive, the
        # other 24 are dropped and counted.
        assert tracer.dropped == 24
        assert len(tracer.records()) == 16
        path = tracer.export_jsonl(tmp_path / "overflow.jsonl")
        loaded = load_trace_jsonl(path)
        assert len(loaded) == 16
        assert [r["name"] for r in loaded] == \
            [r.to_json()["name"] for r in tracer.records()]
        summary = analyze_trace(loaded)
        assert summary["record_count"] == 16
        assert summary["span_count"] == 8
        assert summary["event_count"] == 8
        assert summary["critical_path"]  # orphans handled, not crashed


class TestGlobalSingleton:
    def test_noop_by_default(self):
        assert not obs.tracing_enabled()
        with obs.tracer().span("ignored"):
            obs.tracer().event("ignored")
        assert obs.tracer().records() == []

    def test_enable_disable_cycle(self):
        tracer = obs.enable_tracing()
        try:
            assert obs.tracer() is tracer
            with tracer.span("kept"):
                pass
            assert len(tracer.records()) == 1
        finally:
            obs.disable()
        assert not obs.tracing_enabled()
