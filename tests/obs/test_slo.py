"""SLO engine: config validation, windowing, filters, burn rates.

Windows live on the simulated clock (``end_us``), so eviction and
percentiles are deterministic; the offline evaluator must agree with a
live engine fed the same completions in the same order.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import ConfigError
from repro.obs import slo
from repro.obs.slo import (
    SLO_REPORT_SCHEMA,
    SLO_SCHEMA,
    SLOEngine,
    SLOObjective,
    WINDOW_CAPACITY,
    evaluate_records,
    format_slo_report,
    load_slo_config,
    objective_from_dict,
    slo_failed,
    validate_slo_document,
)


def latency_objective(**overrides) -> SLOObjective:
    base = dict(name="read-p99", kind="latency", op="read",
                percentile=99.0, threshold_us=100.0, window_us=1000.0)
    base.update(overrides)
    return SLOObjective(**base)


def observe_n(engine: SLOEngine, latencies, op="read", stream=0,
              device_kind="dev", spacing_us=1.0, missed=False) -> None:
    for index, latency in enumerate(latencies):
        engine.observe(end_us=(index + 1) * spacing_us,
                       latency_us=latency, op=op, stream=stream,
                       device_kind=device_kind, deadline_missed=missed)


class TestObjectiveValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown kind"):
            SLOObjective(name="x", kind="availability")

    def test_latency_needs_positive_threshold(self):
        with pytest.raises(ConfigError, match="threshold_us"):
            SLOObjective(name="x", kind="latency", threshold_us=0.0)

    def test_percentile_bounds(self):
        with pytest.raises(ConfigError, match="percentile"):
            latency_objective(percentile=100.0)

    def test_miss_rate_ratio_bounds(self):
        with pytest.raises(ConfigError, match="max_ratio"):
            SLOObjective(name="x", kind="deadline_miss_rate",
                         max_ratio=1.5)

    def test_window_must_be_positive(self):
        with pytest.raises(ConfigError, match="window_us"):
            latency_objective(window_us=0.0)

    def test_budget_defaults_to_percentile_complement(self):
        assert latency_objective(percentile=99.0).budget == \
            pytest.approx(0.01)
        assert latency_objective(percentile=95.0).budget == \
            pytest.approx(0.05)

    def test_miss_rate_budget_defaults_to_max_ratio(self):
        objective = SLOObjective(name="x", kind="deadline_miss_rate",
                                 max_ratio=0.2)
        assert objective.budget == pytest.approx(0.2)

    def test_strict_keys_in_config_entries(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            objective_from_dict({"name": "x", "threshold": 5})
        with pytest.raises(ConfigError, match="missing required"):
            objective_from_dict({"kind": "latency"})

    def test_document_schema_and_duplicates(self):
        with pytest.raises(ConfigError, match="schema"):
            validate_slo_document({"objectives": []})
        with pytest.raises(ConfigError, match="non-empty"):
            validate_slo_document({"schema": SLO_SCHEMA,
                                   "objectives": []})
        with pytest.raises(ConfigError, match="duplicate"):
            validate_slo_document({
                "schema": SLO_SCHEMA,
                "objectives": [
                    {"name": "x", "threshold_us": 1.0},
                    {"name": "x", "threshold_us": 2.0}]})

    def test_load_config_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text('{"schema": "repro.obs.slo/v1", "objectives": '
                        '[{"name": "r", "op": "read", '
                        '"threshold_us": 50.0}]}')
        objectives = load_slo_config(path)
        assert [o.name for o in objectives] == ["r"]
        with pytest.raises(ConfigError, match="not found"):
            load_slo_config(tmp_path / "absent.json")


class TestFiltersAndWindow:
    def test_filters_gate_observations(self):
        objective = latency_objective(op="read", stream=2,
                                      device_kind="salamander")
        assert objective.matches("read", 2, "salamander")
        assert not objective.matches("write", 2, "salamander")
        assert not objective.matches("read", 1, "salamander")
        assert not objective.matches("read", 2, "baseline")

    def test_none_filters_match_everything(self):
        objective = latency_objective(op=None)
        assert objective.matches("trim", 7, "whatever")

    def test_engine_only_feeds_matching_windows(self):
        engine = SLOEngine([latency_objective(op="read"),
                            latency_objective(name="w", op="write")])
        observe_n(engine, [10.0] * 4, op="read")
        report = engine.evaluate()
        by_name = {r["name"]: r for r in report["objectives"]}
        assert by_name["read-p99"]["observed"] == 4
        assert by_name["w"]["observed"] == 0
        assert by_name["w"]["ok"]  # no data = no violation

    def test_sim_time_eviction(self):
        engine = SLOEngine([latency_objective(window_us=10.0)])
        # 200-latency samples early, then cheap ones 50 us later: the
        # expensive cohort ages out of the 10 us window.
        engine.observe(1.0, 200.0, "read", 0, "dev", False)
        engine.observe(2.0, 200.0, "read", 0, "dev", False)
        for t in (50.0, 51.0, 52.0):
            engine.observe(t, 5.0, "read", 0, "dev", False)
        result = engine.evaluate()["objectives"][0]
        assert result["window_samples"] == 3
        assert result["current"] == pytest.approx(5.0)
        assert result["ok"]
        assert result["observed"] == 5  # lifetime counter keeps all

    def test_capacity_cap(self):
        engine = SLOEngine([latency_objective(window_us=1e12)])
        observe_n(engine, [1.0] * (WINDOW_CAPACITY + 50))
        result = engine.evaluate()["objectives"][0]
        assert result["window_samples"] == WINDOW_CAPACITY


class TestEvaluation:
    def test_latency_breach_and_burn_rate(self):
        engine = SLOEngine([latency_objective(percentile=50.0,
                                              threshold_us=100.0)])
        observe_n(engine, [50.0, 60.0, 300.0, 400.0])
        result = engine.evaluate()["objectives"][0]
        assert not result["ok"]  # p50 = 180 > 100
        assert result["bad"] == 2
        assert result["bad_fraction"] == pytest.approx(0.5)
        # budget defaults to 50% for a p50 objective: burn rate 1.0
        assert result["burn_rate"] == pytest.approx(1.0)

    def test_latency_within_threshold_is_ok(self):
        engine = SLOEngine([latency_objective()])
        observe_n(engine, [10.0] * 20)
        report = engine.evaluate()
        assert report["ok"]
        assert report["schema"] == SLO_REPORT_SCHEMA
        assert not slo_failed(report)

    def test_deadline_miss_rate_kind(self):
        objective = SLOObjective(name="miss", kind="deadline_miss_rate",
                                 max_ratio=0.25, window_us=1000.0)
        engine = SLOEngine([objective])
        observe_n(engine, [10.0] * 3, missed=False)
        observe_n(engine, [10.0] * 2, missed=True)
        result = engine.evaluate()["objectives"][0]
        assert result["current"] == pytest.approx(0.4)
        assert not result["ok"]
        assert result["burn_rate"] == pytest.approx(0.4 / 0.25)

    def test_offline_matches_live(self):
        records = [
            {"end_us": float(i), "total_us": 10.0 * (i + 1),
             "op": "read", "stream": 0, "device_kind": "dev",
             "deadline_missed": i % 2 == 0}
            for i in range(10)
        ]
        objectives = [latency_objective(threshold_us=55.0,
                                        percentile=50.0)]
        live = SLOEngine(objectives)
        for r in records:
            live.observe(r["end_us"], r["total_us"], r["op"],
                         r["stream"], r["device_kind"],
                         r["deadline_missed"])
        # shuffle: the evaluator must re-sort by end_us
        assert evaluate_records(list(reversed(records)), objectives) \
            == live.evaluate()

    def test_format_report_flags_violations(self):
        engine = SLOEngine([latency_objective(threshold_us=1.0)])
        observe_n(engine, [50.0] * 4)
        text = format_slo_report(engine.evaluate())
        assert "VIOLATED" in text
        assert "`read-p99`" in text
        assert "**NO**" in text

    def test_empty_engine_rejected(self):
        with pytest.raises(ConfigError):
            SLOEngine([])


class TestSingleton:
    def test_disabled_by_default(self):
        assert slo.engine() is None
        assert not slo.enabled()

    def test_installed_scope_restores(self):
        with slo.installed([latency_objective()]) as engine:
            assert slo.engine() is engine
            assert slo.enabled()
        assert slo.engine() is None

    def test_install_accepts_engine_or_objectives(self):
        engine = SLOEngine([latency_objective()])
        try:
            assert slo.install(engine) is engine
            assert slo.install([latency_objective()]) is not engine
        finally:
            slo.uninstall()


class TestMetricsBridge:
    def test_gauges_published_when_metrics_enabled(self):
        obs.enable_metrics()
        try:
            engine = SLOEngine([latency_objective(threshold_us=1.0)])
            observe_n(engine, [50.0] * 4)
            doc = obs.metrics().to_dict()
            families = {m["name"]: m for m in doc["metrics"]}
            for name in ("repro_slo_observations_total",
                         "repro_slo_budget_burn_total",
                         "repro_slo_current_us",
                         "repro_slo_threshold_us",
                         "repro_slo_breaching",
                         "repro_slo_burn_rate"):
                assert name in families, name
            breaching = families["repro_slo_breaching"]["samples"]
            assert breaching[0]["value"] == 1.0
            observations = families["repro_slo_observations_total"]
            assert observations["samples"][0]["value"] == 4.0
        finally:
            obs.disable()
