"""Tests for the bounded timeseries sampler and its artifact formats."""

import json
import math

import pytest

from repro import obs
from repro.errors import ConfigError
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA,
    SeriesBuffer,
    TimeseriesSampler,
    document_series_names,
    load_timeseries,
    merge_documents,
    series_from_document,
    validate_timeseries_document,
)


class TestSeriesBuffer:
    def test_appends_in_order(self):
        buf = SeriesBuffer(capacity=8)
        for t in range(5):
            buf.append(t, t * 10.0)
        assert buf.times == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert buf.values == [0.0, 10.0, 20.0, 30.0, 40.0]
        assert buf.downsamples == 0

    def test_downsamples_2x_on_overflow(self):
        buf = SeriesBuffer(capacity=8)
        for t in range(8):
            buf.append(float(t), float(t))
        # Hitting capacity halves the buffer, keeping every other point
        # counting back from the newest.
        assert buf.downsamples == 1
        assert len(buf) == 4
        assert buf.times == [1.0, 3.0, 5.0, 7.0]

    def test_newest_point_survives_downsampling(self):
        buf = SeriesBuffer(capacity=16)
        for t in range(200):
            buf.append(float(t), float(t))
        assert buf.times[-1] == 199.0
        assert len(buf) < 16
        assert buf.downsamples >= 1

    def test_resolution_doubles_and_folds(self):
        buf = SeriesBuffer(capacity=8)
        for t in range(8):
            buf.append(float(t), float(t))
        assert buf.resolution == pytest.approx(2.0)
        # A sample inside the resolution window folds into the newest.
        buf.append(7.5, 99.0)
        assert buf.times[-1] == 7.5
        assert buf.values[-1] == 99.0
        assert buf.folded == 1
        assert len(buf) == 4

    def test_long_run_stays_bounded_and_spans_history(self):
        buf = SeriesBuffer(capacity=32)
        for t in range(100_000):
            buf.append(float(t), float(t))
        assert len(buf) < 32
        assert buf.times[0] < 20_000  # early history retained
        assert buf.times[-1] == 99_999.0
        assert buf.times == sorted(buf.times)

    def test_equal_time_folds_newest_wins(self):
        buf = SeriesBuffer(capacity=8)
        buf.append(1.0, 10.0)
        buf.append(1.0, 20.0)
        assert buf.values == [20.0]
        assert buf.folded == 1

    def test_backwards_time_is_skipped_not_fatal(self):
        buf = SeriesBuffer(capacity=8)
        buf.append(5.0, 1.0)
        buf.append(2.0, 2.0)  # a later run restarted its clock
        assert buf.times == [5.0]
        assert buf.skipped == 1

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ConfigError):
            SeriesBuffer(capacity=2)


class TestSampler:
    def test_cadence_gates_samples(self):
        sampler = TimeseriesSampler(cadence=10.0)
        state = {"v": 0.0}
        sampler.add_probe("x", lambda: state["v"])
        taken = sum(sampler.maybe_sample(float(t)) for t in range(25))
        assert taken == 3  # t=0, 10, 20
        assert len(sampler.get_series("x")) == 3

    def test_zero_cadence_samples_every_offer(self):
        sampler = TimeseriesSampler(cadence=0.0)
        sampler.add_probe("x", lambda: 1.0)
        for t in range(5):
            assert sampler.maybe_sample(float(t))
        assert sampler.samples_taken == 5

    def test_backwards_time_resets_gate(self):
        sampler = TimeseriesSampler(cadence=100.0)
        sampler.add_probe("x", lambda: 1.0, labels={"run": "a"})
        assert sampler.maybe_sample(500.0)
        # A fresh simulation restarts at a small time: sampled again.
        assert sampler.maybe_sample(5.0)

    def test_probe_remove_detaches_but_keeps_history(self):
        sampler = TimeseriesSampler()
        handle = sampler.add_probe("x", lambda: 1.0)
        sampler.sample(0.0)
        handle.remove()
        sampler.sample(1.0)
        assert len(sampler.get_series("x")) == 1

    def test_registry_snapshot_counters_gauges_histograms(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        counter = registry.counter("repro_test_ops", "ops")
        gauge = registry.gauge("repro_test_depth", "depth")
        histogram = registry.histogram("repro_test_lat", "lat")
        sampler = TimeseriesSampler(registry=registry)
        counter.inc(3)
        gauge.set(7)
        histogram.observe(0.5)
        sampler.sample(1.0)
        assert sampler.get_series("repro_test_ops").values == [3.0]
        assert sampler.get_series("repro_test_depth").values == [7.0]
        assert sampler.get_series("repro_test_lat_count").values == [1.0]
        assert sampler.get_series("repro_test_lat_sum").values == [0.5]

    def test_negative_cadence_rejected(self):
        with pytest.raises(ConfigError):
            TimeseriesSampler(cadence=-1.0)

    def test_schedule_matches_sequential_maybe_sample(self):
        # The pure fold the sharded fleet coordinator ships to workers
        # must predict maybe_sample() decision-for-decision — including
        # a backwards-time reset mid-sequence.
        times = [0.0, 4.0, 10.0, 11.0, 25.0, 3.0, 9.0, 13.0]
        oracle = TimeseriesSampler(cadence=10.0)
        schedule = TimeseriesSampler(cadence=10.0).schedule(times)
        assert schedule == [oracle.maybe_sample(t) for t in times]

    def test_schedule_is_pure(self):
        sampler = TimeseriesSampler(cadence=10.0)
        assert sampler.maybe_sample(0.0)
        first = sampler.schedule([5.0, 10.0, 30.0])
        # No side effects: same answer twice, and the gate state is
        # untouched (t=10 is still the next accepted offer).
        assert sampler.schedule([5.0, 10.0, 30.0]) == first == \
            [False, True, True]
        assert not sampler.maybe_sample(5.0)
        assert sampler.maybe_sample(10.0)


class TestRoundTrip:
    def _sampler(self):
        sampler = TimeseriesSampler(cadence=0.0, capacity=64)
        sampler.add_probe("repro_x", lambda: 1.5,
                          labels={"mode": "shrink"}, unit="bytes")
        sampler.add_probe("repro_y", lambda: -2.0)
        for t in range(10):
            sampler.maybe_sample(float(t))
        sampler.record("repro_weird", 3.0, math.nan)
        sampler.record("repro_weird", 4.0, math.inf)
        return sampler

    def test_jsonl_round_trip(self, tmp_path):
        sampler = self._sampler()
        path = sampler.export_jsonl(tmp_path / "ts.jsonl")
        document = load_timeseries(path)
        assert document["schema"] == TIMESERIES_SCHEMA
        assert document_series_names(document) == [
            "repro_weird", "repro_x", "repro_y"]
        t, v = series_from_document(document, "repro_x",
                                    {"mode": "shrink"})
        assert t == [float(i) for i in range(10)]
        assert v == [1.5] * 10
        _t, weird = series_from_document(document, "repro_weird")
        assert math.isnan(weird[0]) and math.isinf(weird[1])

    def test_csv_round_trip(self, tmp_path):
        sampler = self._sampler()
        path = sampler.export_csv(tmp_path / "ts.csv")
        document = load_timeseries(path)
        assert document["schema"] == TIMESERIES_SCHEMA
        t, v = series_from_document(document, "repro_x",
                                    {"mode": "shrink"})
        assert (t, v) == ([float(i) for i in range(10)], [1.5] * 10)

    def test_export_dispatches_on_suffix(self, tmp_path):
        sampler = self._sampler()
        csv_path = sampler.export(tmp_path / "a.csv")
        jsonl_path = sampler.export(tmp_path / "a.jsonl")
        assert csv_path.read_text().startswith("name,labels,")
        assert json.loads(jsonl_path.read_text().splitlines()[0])[
            "schema"] == TIMESERIES_SCHEMA

    def test_merge_documents(self, tmp_path):
        a = self._sampler().to_dict()
        b = TimeseriesSampler().to_dict()
        merged = merge_documents([a, b])
        validate_timeseries_document(merged)
        assert document_series_names(merged) == document_series_names(a)


class TestLoadingErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            load_timeseries(tmp_path / "nope.jsonl")

    def test_corrupt_jsonl(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ConfigError, match="not valid JSONL"):
            load_timeseries(path)

    def test_empty_jsonl(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ConfigError, match="empty"):
            load_timeseries(path)

    def test_csv_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("who,what\n1,2\n")
        with pytest.raises(ConfigError, match="unexpected header"):
            load_timeseries(path)

    def test_validation_rejects_bad_documents(self):
        good = TimeseriesSampler().to_dict()
        validate_timeseries_document(good)
        for mutate in (
            lambda d: d.update(schema="nope"),
            lambda d: d.update(series="x"),
            lambda d: d["series"].append({"name": "", "labels": {},
                                          "t": [], "v": []}),
            lambda d: d["series"].append({"name": "a", "labels": {},
                                          "t": [1], "v": []}),
            lambda d: d["series"].append({"name": "a", "labels": {},
                                          "t": [2, 1], "v": [0, 0]}),
            lambda d: d["series"].append({"name": "a", "labels": {},
                                          "t": [1], "v": ["wat"]}),
        ):
            document = json.loads(json.dumps(
                TimeseriesSampler().to_dict()))
            mutate(document)
            with pytest.raises(ConfigError):
                validate_timeseries_document(document)

    def test_selector_requires_unique_match(self):
        sampler = TimeseriesSampler()
        sampler.record("x", 0.0, 1.0, labels={"mode": "a"})
        sampler.record("x", 0.0, 2.0, labels={"mode": "b"})
        document = sampler.to_dict()
        with pytest.raises(ConfigError, match="ambiguous"):
            series_from_document(document, "x")
        with pytest.raises(ConfigError, match="no series"):
            series_from_document(document, "y")
        _t, v = series_from_document(document, "x", {"mode": "a"})
        assert v == [1.0]


class TestSingletonWiring:
    def test_disabled_by_default(self):
        assert not obs.timeseries_enabled()
        # The null sampler accepts the full API.
        null = obs.timeseries()
        null.record("x", 0.0, 1.0)
        assert not null.maybe_sample(1.0)
        assert len(null) == 0

    def test_enable_and_disable(self):
        sampler = obs.enable_timeseries(cadence=5.0)
        try:
            assert obs.timeseries_enabled()
            assert obs.timeseries() is sampler
            assert sampler.cadence == 5.0
        finally:
            obs.disable()
        assert not obs.timeseries_enabled()

    def test_scoped_enable_installs_sampler(self):
        sampler = TimeseriesSampler()
        with obs.enabled(timeseries_sampler=sampler) as (registry, _):
            assert obs.timeseries() is sampler
            # The scope back-fills the registry so metric snapshots work.
            assert sampler.registry is registry
        assert not obs.timeseries_enabled()

    def test_null_sampler_exports_empty_documents(self, tmp_path):
        null = obs.timeseries()
        path = null.export(tmp_path / "empty.jsonl")
        document = load_timeseries(path)
        assert document["series"] == []
        csv_path = null.export(tmp_path / "empty.csv")
        assert csv_path.read_text().startswith("name,labels,")


class TestEngineIntegration:
    def test_engine_offers_samples_to_active_sampler(self):
        from repro.sim.engine import Engine

        sampler = TimeseriesSampler(cadence=0.0)
        with obs.enabled(timeseries_sampler=sampler):
            engine = Engine()
            state = {"n": 0}
            sampler.add_probe("repro_events", lambda: float(state["n"]))

            def tick():
                state["n"] += 1

            engine.schedule_every(1.0, tick, until=5.0)
            engine.run()
        series = sampler.get_series("repro_events")
        assert series is not None
        assert len(series) >= 5
        assert series.values[-1] >= 4.0


class TestFleetIntegration:
    def test_fleet_emits_smart_and_outcome_series(self):
        from repro.flash.geometry import FlashGeometry
        from repro.sim.fleet import FleetConfig, simulate_fleet

        sampler = TimeseriesSampler(cadence=50.0)
        config = FleetConfig(
            devices=6, horizon_days=900, step_days=10,
            geometry=FlashGeometry(blocks=64, fpages_per_block=32))
        with obs.enabled(timeseries_sampler=sampler):
            baseline = simulate_fleet(config, "baseline", seed=11)
            shrink = simulate_fleet(config, "shrink", seed=11)
        names = sampler.series_names()
        for required in ("repro_fleet_capacity_bytes",
                         "repro_fleet_devices_functioning",
                         "repro_fleet_mean_lifetime_days",
                         "repro_smart_wear_percentile",
                         "repro_smart_rber",
                         "repro_smart_level_fpages",
                         "repro_smart_retired_fpages"):
            assert required in names, required
        # Scalar outcomes match the returned results exactly.
        for mode, result in (("baseline", baseline), ("shrink", shrink)):
            buf = sampler.get_series("repro_fleet_mean_lifetime_days",
                                     {"mode": mode})
            assert buf.values[-1] == pytest.approx(
                result.mean_lifetime_days())
        # Wear percentiles are ordered: p95 >= p50 at the end.
        p50 = sampler.get_series("repro_smart_wear_percentile",
                                 {"mode": "shrink", "q": "50"})
        p95 = sampler.get_series("repro_smart_wear_percentile",
                                 {"mode": "shrink", "q": "95"})
        assert p95.values[-1] >= p50.values[-1]
        # Probes detached at run end: nothing appended afterwards.
        count = len(sampler.get_series("repro_smart_rber",
                                       {"mode": "shrink"}))
        sampler.sample(10_000.0)
        assert len(sampler.get_series("repro_smart_rber",
                                      {"mode": "shrink"})) == count

    def test_document_validates_after_sequential_runs(self):
        from repro.sim.fleet import FleetConfig, simulate_fleet

        sampler = TimeseriesSampler(cadence=25.0)
        config = FleetConfig(devices=4, horizon_days=400, step_days=10)
        with obs.enabled(timeseries_sampler=sampler):
            for mode in ("baseline", "shrink", "regen"):
                simulate_fleet(config, mode, seed=3)
        validate_timeseries_document(
            json.loads(json.dumps(sampler.to_dict())))
