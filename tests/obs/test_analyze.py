"""Trace analytics: span stats, critical path, artifact loading."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.obs.analyze import (
    TRACE_SUMMARY_SCHEMA,
    analyze_trace,
    critical_path,
    event_counts,
    format_trace_summary,
    interpolated_percentile,
    load_trace_jsonl,
    span_stats,
)
from repro.obs.trace import SimTimeTracer


def _span(name, start, end, span_id, parent_id=None):
    return {"kind": "span", "name": name, "time": start,
            "end_time": end, "span_id": span_id, "parent_id": parent_id}


def _event(name, time):
    return {"kind": "event", "name": name, "time": time}


class TestPercentile:
    def test_exact_interpolation(self):
        values = [0.0, 10.0, 20.0, 30.0, 40.0]
        assert interpolated_percentile(values, 50) == 20.0
        assert interpolated_percentile(values, 25) == 10.0
        assert interpolated_percentile(values, 95) == pytest.approx(38.0)
        assert interpolated_percentile(values, 0) == 0.0
        assert interpolated_percentile(values, 100) == 40.0

    def test_degenerate_inputs(self):
        assert interpolated_percentile([], 50) == 0.0
        assert interpolated_percentile([7.5], 99) == 7.5

    def test_out_of_range_q(self):
        with pytest.raises(ConfigError):
            interpolated_percentile([1.0], 101)
        with pytest.raises(ConfigError):
            interpolated_percentile([1.0], -1)


class TestSpanStats:
    def test_per_name_distributions(self):
        records = [
            _span("write", 0, 10, 1),
            _span("write", 10, 30, 2),
            _span("gc", 0, 5, 3),
            _event("retire", 4),
        ]
        stats = span_stats(records)
        assert set(stats) == {"write", "gc"}
        write = stats["write"]
        assert write["count"] == 2
        assert write["total"] == 30.0
        assert write["mean"] == 15.0
        assert write["min"] == 10.0
        assert write["max"] == 20.0
        assert write["p50"] == 15.0

    def test_open_span_uses_start_time(self):
        # A span that never ended has duration 0 (end defaults to time).
        records = [{"kind": "span", "name": "open", "time": 5.0,
                    "span_id": 1, "parent_id": None}]
        assert span_stats(records)["open"]["max"] == 0.0

    def test_event_counts(self):
        records = [_event("a", 1), _event("b", 2), _event("a", 3)]
        assert event_counts(records) == {"a": 2, "b": 1}


class TestCriticalPath:
    def test_descends_into_longest_child(self):
        records = [
            _span("root", 0, 100, 1),
            _span("short-root", 0, 10, 2),
            _span("big-child", 0, 70, 3, parent_id=1),
            _span("small-child", 70, 90, 4, parent_id=1),
            _span("leaf", 10, 50, 5, parent_id=3),
        ]
        path = critical_path(records)
        assert [step["name"] for step in path] == \
            ["root", "big-child", "leaf"]
        assert [step["depth"] for step in path] == [0, 1, 2]
        # Self time = duration minus the children's total.
        assert path[0]["self_time"] == pytest.approx(100 - 90)
        assert path[1]["self_time"] == pytest.approx(70 - 40)
        assert path[2]["self_time"] == pytest.approx(40.0)

    def test_orphan_parent_promoted_to_root(self):
        # parent_id points at a span evicted from the ring: treat as root.
        records = [_span("orphan", 0, 50, 7, parent_id=999)]
        path = critical_path(records)
        assert [step["name"] for step in path] == ["orphan"]

    def test_empty(self):
        assert critical_path([]) == []


class TestAnalyzeTrace:
    def test_live_tracer_records(self):
        tracer = SimTimeTracer(clock=lambda: 0.0)
        clock = [0.0]
        tracer._clock = lambda: clock[0]
        with tracer.span("outer"):
            clock[0] = 2.0
            with tracer.span("inner"):
                clock[0] = 7.0
            tracer.event("tick")
            clock[0] = 10.0
        summary = analyze_trace(tracer.records())
        assert summary["schema"] == TRACE_SUMMARY_SCHEMA
        assert summary["span_count"] == 2
        assert summary["event_count"] == 1
        assert summary["time_range"] == [0.0, 10.0]
        assert summary["spans"]["outer"]["total"] == 10.0
        assert [s["name"] for s in summary["critical_path"]] == \
            ["outer", "inner"]

    def test_rejects_unknown_record_type(self):
        with pytest.raises(ConfigError, match="cannot analyze"):
            analyze_trace([42])

    def test_format_is_markdown(self):
        summary = analyze_trace(
            [_span("s", 0, 3, 1), _event("e", 1)])
        text = format_trace_summary(summary)
        assert "### Trace summary" in text
        assert "| `s` | 1 |" in text
        assert "| `e` | 1 |" in text
        assert "Critical path" in text


class TestLoadTraceJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = [_span("s", 0, 1, 1), _event("e", 0.5)]
        path.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n")
        loaded = load_trace_jsonl(path)
        assert loaded == records

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            load_trace_jsonl(tmp_path / "nope.jsonl")

    def test_corrupt_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "span"\n')
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_trace_jsonl(path)

    def test_non_record_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"foo": 1}\n')
        with pytest.raises(ConfigError, match="not a trace record"):
            load_trace_jsonl(path)
