"""Trace analytics: span stats, critical path, artifact loading."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.obs.analyze import (
    TRACE_SUMMARY_SCHEMA,
    analyze_trace,
    critical_path,
    event_counts,
    format_trace_summary,
    interpolated_percentile,
    load_trace_jsonl,
    segment_breakdown,
    span_stats,
)
from repro.obs.trace import SimTimeTracer


def _span(name, start, end, span_id, parent_id=None):
    return {"kind": "span", "name": name, "time": start,
            "end_time": end, "span_id": span_id, "parent_id": parent_id}


def _event(name, time):
    return {"kind": "event", "name": name, "time": time}


class TestPercentile:
    def test_exact_interpolation(self):
        values = [0.0, 10.0, 20.0, 30.0, 40.0]
        assert interpolated_percentile(values, 50) == 20.0
        assert interpolated_percentile(values, 25) == 10.0
        assert interpolated_percentile(values, 95) == pytest.approx(38.0)
        assert interpolated_percentile(values, 0) == 0.0
        assert interpolated_percentile(values, 100) == 40.0

    def test_degenerate_inputs(self):
        assert interpolated_percentile([], 50) == 0.0
        assert interpolated_percentile([7.5], 99) == 7.5

    def test_out_of_range_q(self):
        with pytest.raises(ConfigError):
            interpolated_percentile([1.0], 101)
        with pytest.raises(ConfigError):
            interpolated_percentile([1.0], -1)


class TestSpanStats:
    def test_per_name_distributions(self):
        records = [
            _span("write", 0, 10, 1),
            _span("write", 10, 30, 2),
            _span("gc", 0, 5, 3),
            _event("retire", 4),
        ]
        stats = span_stats(records)
        assert set(stats) == {"write", "gc"}
        write = stats["write"]
        assert write["count"] == 2
        assert write["total"] == 30.0
        assert write["mean"] == 15.0
        assert write["min"] == 10.0
        assert write["max"] == 20.0
        assert write["p50"] == 15.0

    def test_open_span_uses_start_time(self):
        # A span that never ended has duration 0 (end defaults to time).
        records = [{"kind": "span", "name": "open", "time": 5.0,
                    "span_id": 1, "parent_id": None}]
        assert span_stats(records)["open"]["max"] == 0.0

    def test_event_counts(self):
        records = [_event("a", 1), _event("b", 2), _event("a", 3)]
        assert event_counts(records) == {"a": 2, "b": 1}


class TestCriticalPath:
    def test_descends_into_longest_child(self):
        records = [
            _span("root", 0, 100, 1),
            _span("short-root", 0, 10, 2),
            _span("big-child", 0, 70, 3, parent_id=1),
            _span("small-child", 70, 90, 4, parent_id=1),
            _span("leaf", 10, 50, 5, parent_id=3),
        ]
        path = critical_path(records)
        assert [step["name"] for step in path] == \
            ["root", "big-child", "leaf"]
        assert [step["depth"] for step in path] == [0, 1, 2]
        # Self time = duration minus the children's total.
        assert path[0]["self_time"] == pytest.approx(100 - 90)
        assert path[1]["self_time"] == pytest.approx(70 - 40)
        assert path[2]["self_time"] == pytest.approx(40.0)

    def test_orphan_parent_promoted_to_root(self):
        # parent_id points at a span evicted from the ring: treat as root.
        records = [_span("orphan", 0, 50, 7, parent_id=999)]
        path = critical_path(records)
        assert [step["name"] for step in path] == ["orphan"]

    def test_empty(self):
        assert critical_path([]) == []


class TestAnalyzeTrace:
    def test_live_tracer_records(self):
        tracer = SimTimeTracer(clock=lambda: 0.0)
        clock = [0.0]
        tracer._clock = lambda: clock[0]
        with tracer.span("outer"):
            clock[0] = 2.0
            with tracer.span("inner"):
                clock[0] = 7.0
            tracer.event("tick")
            clock[0] = 10.0
        summary = analyze_trace(tracer.records())
        assert summary["schema"] == TRACE_SUMMARY_SCHEMA
        assert summary["span_count"] == 2
        assert summary["event_count"] == 1
        assert summary["time_range"] == [0.0, 10.0]
        assert summary["spans"]["outer"]["total"] == 10.0
        assert [s["name"] for s in summary["critical_path"]] == \
            ["outer", "inner"]

    def test_rejects_unknown_record_type(self):
        with pytest.raises(ConfigError, match="cannot analyze"):
            analyze_trace([42])

    def test_format_is_markdown(self):
        summary = analyze_trace(
            [_span("s", 0, 3, 1), _event("e", 1)])
        text = format_trace_summary(summary)
        assert "### Trace summary" in text
        assert "| `s` | 1 |" in text
        assert "| `e` | 1 |" in text
        assert "Critical path" in text


class TestLoadTraceJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = [_span("s", 0, 1, 1), _event("e", 0.5)]
        path.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n")
        loaded = load_trace_jsonl(path)
        assert loaded == records

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            load_trace_jsonl(tmp_path / "nope.jsonl")

    def test_corrupt_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "span"\n')
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_trace_jsonl(path)

    def test_non_record_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"foo": 1}\n')
        with pytest.raises(ConfigError, match="not a trace record"):
            load_trace_jsonl(path)


def request_record(total, segments, end=None):
    return {"kind": "request", "name": "io.read", "time": 0.0,
            "end_time": end if end is not None else total,
            "total_us": total, "segments": segments}


class TestSegmentBreakdown:
    def test_shares_sum_to_one_per_cohort(self):
        records = [
            request_record(100.0, {"queue_wait": 60.0, "device": 40.0}),
            request_record(300.0, {"queue_wait": 270.0, "device": 30.0}),
        ]
        breakdown = segment_breakdown(records)
        for cohort in breakdown.values():
            assert sum(cohort["shares"].values()) == pytest.approx(1.0)
        assert breakdown["all"]["count"] == 2
        assert breakdown["all"]["total_us"] == pytest.approx(400.0)
        assert breakdown["all"]["shares"]["queue_wait"] == \
            pytest.approx(330.0 / 400.0)

    def test_tail_cohort_isolates_expensive_requests(self):
        # 99 cheap device-bound requests and one giant queue-bound one:
        # the p99 cohort is just the giant, so its share flips.
        records = [request_record(10.0, {"queue_wait": 1.0,
                                         "device": 9.0})
                   for _ in range(99)]
        records.append(request_record(
            1000.0, {"queue_wait": 990.0, "device": 10.0}))
        breakdown = segment_breakdown(records)
        assert breakdown["p99"]["count"] == 1
        assert breakdown["p99"]["shares"]["queue_wait"] == \
            pytest.approx(0.99)
        assert breakdown["all"]["shares"]["device"] > 0.4

    def test_non_request_records_yield_no_samples_summary(self):
        records = [{"kind": "span", "name": "s", "time": 0.0},
                   {"kind": "header", "name": "reqtrace", "time": 0.0}]
        assert segment_breakdown(records) == {
            "all": {"count": 0, "total_us": 0.0, "shares": {}}}

    def test_empty_input_yields_no_samples_summary(self):
        breakdown = segment_breakdown([])
        assert breakdown["all"] == {"count": 0, "total_us": 0.0,
                                    "shares": {}}
        # The no-samples shape renders as an explicit note, not a
        # degenerate table.
        summary = analyze_trace([])
        text = format_trace_summary(summary)
        assert "no sampled request records" in text
        assert "Latency attribution (segment share" not in text

    def test_single_record_forms_every_cohort(self):
        records = [request_record(100.0, {"queue_wait": 60.0,
                                          "device": 40.0})]
        breakdown = segment_breakdown(records)
        for cohort_name in ("all", "p50", "p99"):
            cohort = breakdown[cohort_name]
            assert cohort["count"] == 1
            assert cohort["total_us"] == pytest.approx(100.0)
            assert sum(cohort["shares"].values()) == pytest.approx(1.0)

    def test_summary_embeds_segments_and_formats_attribution(self):
        records = [
            request_record(10.0, {"queue_wait": 1.0, "device": 9.0}),
            request_record(500.0, {"queue_wait": 450.0, "device": 25.0,
                                   "read_retry": 25.0}),
        ]
        summary = analyze_trace(records)
        assert summary["segments"]["all"]["count"] == 2
        text = format_trace_summary(summary)
        assert "Latency attribution" in text
        assert "`queue_wait`" in text
        # The headline: the p99 cohort is the expensive request, 90%
        # of whose latency is queue wait.
        assert "p99 is 90% `queue_wait`." in text

    def test_header_records_excluded_from_counts(self):
        records = [{"kind": "header", "name": "reqtrace", "time": 0.0,
                    "schema": "repro.obs.reqtrace/v1", "meta": {}},
                   request_record(10.0, {"queue_wait": 10.0})]
        summary = analyze_trace(records)
        assert summary["record_count"] == 1
        assert summary["segments"]["all"]["count"] == 1
