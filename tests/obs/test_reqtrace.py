"""Request tracing: sampling determinism, segment accounting, artifacts.

The attribution pipeline has three contracts worth pinning hard:

* **Zero cost off** — every instrumented layer binds the tracer at
  construction; with none installed the binding is ``None`` and hot
  paths reduce to one identity test (the :mod:`repro.faults` pattern,
  same discipline ``tests/faults/test_zero_cost.py`` pins).
* **Exact decomposition** — every record satisfies
  ``sum(segments) == wait_us + service_us == total_us``; attribution
  that does not add up is worse than none.
* **Jobs-invariance** — probe records are a pure function of
  ``(mode, seed, config)``, byte-identical for any ``--jobs`` layout.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.io import DeviceQueue, IORequest
from repro.io.probe import ProbeConfig, run_probe, run_probes
from repro.obs import reqtrace
from repro.obs.reqtrace import (
    ReqContext,
    ReqTracer,
    load_reqtrace,
    validate_reqtrace_records,
    write_reqtrace,
)

#: Small probe shape shared by the suite: enough traffic to sample a
#: handful of requests per mode, small enough to stay fast.
FAST_PROBE = ProbeConfig(n_requests=120, every=4, age_passes=8)


@pytest.fixture
def probe_result():
    return run_probe("baseline", seed=11, config=FAST_PROBE)


class TestDisabledBindings:
    def test_nothing_installed_by_default(self):
        assert reqtrace.tracer() is None
        assert not reqtrace.enabled()

    def test_every_layer_binds_none_when_disabled(self, make_baseline,
                                                  make_salamander):
        baseline = make_baseline()
        salamander = make_salamander()
        queue = DeviceQueue(baseline)
        for layer in (baseline, salamander, salamander.chip, queue):
            assert layer._reqtrace is None, type(layer).__name__
        assert queue._rt_sampler is None
        assert queue._slo is None

    def test_binding_happens_at_construction_not_per_call(self,
                                                          make_baseline):
        before = DeviceQueue(make_baseline())
        with reqtrace.installed(ReqTracer(seed=1)):
            assert before._reqtrace is None
            during = DeviceQueue(make_baseline())
            assert during._reqtrace is reqtrace.tracer()
            bound = during._reqtrace
        assert during._reqtrace is bound
        assert reqtrace.tracer() is None

    def test_disabled_queue_behaves_identically(self, make_baseline):
        latencies = []
        for _ in range(2):
            device = make_baseline(seed=5, variation_sigma=0.0,
                                   inject_errors=False)
            for lba in range(16):
                device.write(lba, bytes([lba]) * 8)
            device.flush()
            queue = DeviceQueue(device)
            latencies.append([queue.execute(
                IORequest(op="read", lba=lba)).latency_us
                for lba in range(16)])
        assert latencies[0] == latencies[1]


class TestSampler:
    def test_phase_is_pure_function_of_seed_and_key(self):
        # Creation order must not matter (fork_rng draws from its
        # parent, so the phase comes from a fresh root each time).
        a = ReqTracer(seed=7)
        b = ReqTracer(seed=7)
        a.sampler_for("x")
        assert a.sampler_for("y").phase == b.sampler_for("y").phase

    def test_one_in_every(self):
        tracer = ReqTracer(seed=3, every=4)
        sampler = tracer.sampler_for("dev")
        hits = sum(sampler.sample() for _ in range(400))
        assert hits == 100

    def test_every_one_samples_everything(self):
        sampler = ReqTracer(seed=3, every=1).sampler_for("dev")
        assert all(sampler.sample() for _ in range(16))

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            ReqTracer(every=0)
        with pytest.raises(ConfigError):
            ReqTracer(capacity=0)


class TestReqContext:
    def test_sections_charge_busy_deltas(self):
        ctx = ReqContext()
        ctx.activate(100.0)
        ctx.enter("gc", 110.0)      # 10 to device
        ctx.exit(140.0)             # 30 to gc
        ctx._charge(150.0)          # 10 more to device
        assert ctx.segments == {"device": 20.0, "gc": 30.0}

    def test_leaf_carves_out_of_ambient(self):
        ctx = ReqContext()
        ctx.activate(0.0)
        ctx.leaf("read_retry", 5.0)
        ctx._charge(20.0)
        # The mark advanced by the leaf amount: ambient gets 15, not 20.
        assert ctx.segments == {"read_retry": 5.0, "device": 15.0}

    def test_bump_accumulates_fractional_counts(self):
        ctx = ReqContext()
        ctx.bump("read_retries", 0.25)
        ctx.bump("read_retries", 0.5)
        assert ctx.counts["read_retries"] == pytest.approx(0.75)

    def test_note_level_keeps_max(self):
        ctx = ReqContext()
        ctx.note_level(1)
        ctx.note_level(3)
        ctx.note_level(2)
        assert ctx.level_max == 3


class TestSegmentInvariant:
    def test_probe_records_decompose_exactly(self, probe_result):
        records = probe_result["records"]
        assert records, "probe sampled nothing"
        validate_reqtrace_records(records)
        for record in records:
            total = sum(record["segments"].values())
            assert total == pytest.approx(record["total_us"], abs=1e-9)
            assert record["wait_us"] + record["service_us"] == \
                pytest.approx(record["total_us"], abs=1e-9)
            assert record["segments"]["queue_wait"] == \
                pytest.approx(record["wait_us"], abs=1e-9)

    def test_validation_rejects_broken_sums(self, probe_result):
        record = dict(probe_result["records"][0])
        record["segments"] = dict(record["segments"],
                                  device=record["total_us"] + 50.0)
        with pytest.raises(ConfigError, match="segments sum"):
            validate_reqtrace_records([record])

    def test_validation_rejects_missing_keys(self):
        with pytest.raises(ConfigError, match="missing"):
            validate_reqtrace_records([{"op": "read"}])

    def test_tired_device_attributes_retries(self):
        # The probe's aged chip reads at elevated RBER, so at least
        # some sampled reads must carry retry attribution.
        result = run_probe("regen", seed=11, config=FAST_PROBE)
        segments = {}
        for record in result["records"]:
            for name, value in record["segments"].items():
                segments[name] = segments.get(name, 0.0) + value
        assert "read_retry" in segments


class _StubRequest:
    op = "read"
    lba = 0
    count = 1
    stream = 0
    mdisk_id = None
    tag = 0


class _StubCompletion:
    request = _StubRequest()
    wait_us = 1.0
    service_us = 2.0
    work_us = 2.0
    submit_us = 0.0
    start_us = 1.0
    end_us = 3.0
    latency_us = 3.0
    status = "ok"
    merged = 1
    deadline_missed = False


class TestRingAndArtifact:
    def test_capacity_overflow_counts_drops(self):
        tracer = ReqTracer(seed=1, capacity=2)
        for _ in range(5):
            ctx = tracer.begin()
            ctx.activate(0.0)
            tracer.finish(ctx, _StubCompletion(), "dev", end_busy=2.0)
        assert len(tracer.records) == 2
        assert tracer.dropped == 3
        assert tracer.sampled == 5
        validate_reqtrace_records(list(tracer.records))

    def test_clear_resets_counters(self):
        tracer = ReqTracer(seed=1, capacity=2)
        for _ in range(3):
            ctx = tracer.begin()
            ctx.activate(0.0)
            tracer.finish(ctx, _StubCompletion(), "dev", end_busy=2.0)
        tracer.clear()
        assert not tracer.records
        assert tracer.dropped == 0
        assert tracer.sampled == 0

    def test_round_trip_preserves_records_and_meta(self, tmp_path,
                                                   probe_result):
        records = probe_result["records"]
        path = write_reqtrace(tmp_path / "sub" / "rt.jsonl", records,
                              meta={"seed": 11, "every": 4})
        header, loaded = load_reqtrace(path)
        assert header["schema"] == reqtrace.REQTRACE_SCHEMA
        assert header["meta"]["seed"] == 11
        assert loaded == json.loads(json.dumps(records))
        validate_reqtrace_records(loaded)

    def test_missing_file_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            load_reqtrace(tmp_path / "absent.jsonl")

    def test_corrupt_line_raises_config_error(self, tmp_path):
        path = tmp_path / "rt.jsonl"
        path.write_text('{"kind": "header", "schema": '
                        '"repro.obs.reqtrace/v1", "meta": {}}\n{broken\n')
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_reqtrace(path)

    def test_wrong_schema_raises_config_error(self, tmp_path):
        path = tmp_path / "rt.jsonl"
        path.write_text('{"kind": "header", "schema": "nope/v0"}\n')
        with pytest.raises(ConfigError, match="schema"):
            load_reqtrace(path)

    def test_headerless_file_raises_config_error(self, tmp_path):
        path = tmp_path / "rt.jsonl"
        path.write_text('{"kind": "request", "op": "read"}\n')
        with pytest.raises(ConfigError, match="header"):
            load_reqtrace(path)


class TestJobsInvariance:
    def test_probe_records_identical_across_jobs(self):
        modes = ("baseline", "shrink")
        sequential = run_probes(modes, seed=11, config=FAST_PROBE,
                                jobs=1)
        parallel = run_probes(modes, seed=11, config=FAST_PROBE, jobs=2)
        assert json.dumps(sequential, sort_keys=True) == \
            json.dumps(parallel, sort_keys=True)

    def test_probe_is_pure_function_of_inputs(self, probe_result):
        again = run_probe("baseline", seed=11, config=FAST_PROBE)
        assert json.dumps(again, sort_keys=True) == \
            json.dumps(probe_result, sort_keys=True)

    def test_different_seeds_differ(self, probe_result):
        other = run_probe("baseline", seed=12, config=FAST_PROBE)
        assert json.dumps(other["records"], sort_keys=True) != \
            json.dumps(probe_result["records"], sort_keys=True)
