"""Unit tests for seeded RNG plumbing."""

import numpy as np

from repro.rng import DEFAULT_SEED, fork_rng, make_rng


class TestMakeRng:
    def test_int_seed_reproducible(self):
        assert make_rng(5).integers(0, 1000) == make_rng(5).integers(0, 1000)

    def test_none_uses_default_seed(self):
        assert (make_rng(None).integers(0, 1 << 30)
                == make_rng(DEFAULT_SEED).integers(0, 1 << 30))

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert make_rng(rng) is rng


class TestForkRng:
    def test_same_keys_same_child(self):
        a = fork_rng(make_rng(1), "flash", 3)
        b = fork_rng(make_rng(1), "flash", 3)
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_different_keys_different_children(self):
        parent = make_rng(1)
        a = fork_rng(parent, "alpha")
        parent = make_rng(1)
        b = fork_rng(parent, "beta")
        assert a.integers(0, 1 << 30) != b.integers(0, 1 << 30)

    def test_fork_advances_parent(self):
        parent = make_rng(1)
        first = fork_rng(parent, "x")
        second = fork_rng(parent, "x")
        assert (first.integers(0, 1 << 30)
                != second.integers(0, 1 << 30))

    def test_string_hash_is_stable(self):
        # Not `hash()` (salted per process); must be stable across runs.
        child = fork_rng(make_rng(42), "stable-key")
        assert child.integers(0, 1 << 30) == fork_rng(
            make_rng(42), "stable-key").integers(0, 1 << 30)
