"""Unit tests for the functional flash chip."""

import numpy as np
import pytest

from repro.errors import (
    ConfigError,
    EraseError,
    ProgramError,
    UncorrectableError,
)
from repro.flash.chip import FlashChip, PageState
from repro.flash.geometry import FlashGeometry


@pytest.fixture
def chip(tiny_geometry, policy, fast_model):
    return FlashChip(tiny_geometry, rber_model=fast_model, policy=policy,
                     seed=5, variation_sigma=0.0)


def payloads_for(chip, fpage):
    count = chip.policy.data_opages(chip.level(fpage))
    return [f"data-{fpage}-{slot}".encode() for slot in range(count)]


class TestProgramRead:
    def test_roundtrip(self, chip):
        chip.program(3, payloads_for(chip, 3))
        data, latency = chip.read(3, 1)
        assert data.rstrip(b"\0") == b"data-3-1"
        assert latency > 0

    def test_payload_padded_to_opage(self, chip):
        chip.program(0, payloads_for(chip, 0))
        data, _ = chip.read(0, 0)
        assert len(data) == chip.geometry.opage_bytes

    def test_cannot_program_written_page(self, chip):
        chip.program(0, payloads_for(chip, 0))
        with pytest.raises(ProgramError):
            chip.program(0, payloads_for(chip, 0))

    def test_wrong_payload_count_rejected(self, chip):
        with pytest.raises(ProgramError):
            chip.program(0, [b"only-one"])

    def test_oversized_payload_rejected(self, chip):
        big = b"x" * (chip.geometry.opage_bytes + 1)
        with pytest.raises(ProgramError):
            chip.program(0, [big, b"", b"", b""])

    def test_read_unwritten_page_rejected(self, chip):
        with pytest.raises(ProgramError):
            chip.read(0, 0)

    def test_read_slot_out_of_range(self, chip):
        chip.program(0, payloads_for(chip, 0))
        with pytest.raises(IndexError):
            chip.read(0, 4)

    def test_stats_count_operations(self, chip):
        chip.program(0, payloads_for(chip, 0))
        chip.read(0, 0)
        chip.erase(1)
        assert chip.stats.programs == 1
        assert chip.stats.reads == 1
        assert chip.stats.erases == 1
        assert chip.stats.busy_us > 0


class TestErase:
    def test_erase_increments_pec_and_frees(self, chip):
        chip.program(0, payloads_for(chip, 0))
        assert chip.state(0) is PageState.WRITTEN
        chip.erase(0)
        assert chip.state(0) is PageState.FREE
        for fpage in chip.geometry.fpage_range_of_block(0):
            assert chip.pec(fpage) == 1

    def test_erase_drops_data(self, chip):
        chip.program(0, payloads_for(chip, 0))
        chip.erase(0)
        with pytest.raises(ProgramError):
            chip.read(0, 0)

    def test_erase_fully_retired_block_rejected(self, chip):
        for fpage in chip.geometry.fpage_range_of_block(2):
            chip.retire(fpage)
        with pytest.raises(EraseError):
            chip.erase(2)

    def test_erase_skips_retired_pages(self, chip):
        pages = list(chip.geometry.fpage_range_of_block(0))
        chip.retire(pages[0])
        chip.erase(0)
        assert chip.state(pages[0]) is PageState.RETIRED
        assert chip.state(pages[1]) is PageState.FREE


class TestLevels:
    def test_set_level_reduces_payload_count(self, chip):
        chip.set_level(0, 1)
        assert chip.policy.data_opages(chip.level(0)) == 3
        chip.program(0, [b"a", b"b", b"c"])
        assert chip.read(0, 2)[0].rstrip(b"\0") == b"c"

    def test_level_cannot_decrease(self, chip):
        chip.set_level(0, 2)
        with pytest.raises(ConfigError):
            chip.set_level(0, 1)

    def test_dead_level_retires(self, chip):
        chip.set_level(0, chip.policy.dead_level)
        assert chip.state(0) is PageState.RETIRED

    def test_cannot_change_level_of_written_page(self, chip):
        chip.program(0, payloads_for(chip, 0))
        with pytest.raises(ProgramError):
            chip.set_level(0, 1)

    def test_program_dead_page_rejected(self, chip):
        chip.set_level(0, chip.policy.dead_level)
        with pytest.raises(ProgramError):
            chip.program(0, [])


class TestWearAndErrors:
    def test_rber_grows_with_wear(self, chip):
        before = chip.rber_of(0)
        for _ in range(5):
            chip.erase(0)
        assert chip.rber_of(0) > before

    def test_required_level_rises_with_wear(self, tiny_geometry, policy,
                                            fast_model):
        chip = FlashChip(tiny_geometry, rber_model=fast_model, policy=policy,
                         seed=5, variation_sigma=0.0)
        assert chip.required_level(0) == 0
        limit = policy.pec_limits(fast_model)[0]
        for _ in range(int(limit) + 1):
            chip.erase(0)
        assert chip.required_level(0) >= 1
        assert chip.is_overworn(0)

    def test_worn_page_reads_eventually_fail(self, tiny_geometry, policy,
                                             fast_model):
        chip = FlashChip(tiny_geometry, rber_model=fast_model, policy=policy,
                         seed=5, variation_sigma=0.0)
        # Push the page far past its L0 limit so failures are certain-ish.
        for _ in range(4 * int(policy.pec_limits(fast_model)[0])):
            chip.erase(0)
        chip.program(0, [b"a", b"b", b"c", b"d"])
        with pytest.raises(UncorrectableError) as excinfo:
            for _ in range(50):
                chip.read(0, 0)
        assert excinfo.value.bit_errors > excinfo.value.correctable
        assert chip.stats.uncorrectable_reads >= 1

    def test_inject_errors_false_never_fails(self, tiny_geometry, policy,
                                             fast_model):
        chip = FlashChip(tiny_geometry, rber_model=fast_model, policy=policy,
                         seed=5, variation_sigma=0.0, inject_errors=False)
        for _ in range(4 * int(policy.pec_limits(fast_model)[0])):
            chip.erase(0)
        chip.program(0, [b"a", b"b", b"c", b"d"])
        for _ in range(50):
            data, _ = chip.read(0, 0)
            assert data.rstrip(b"\0") == b"a"

    def test_variation_is_per_page_and_deterministic(self, tiny_geometry):
        a = FlashChip(tiny_geometry, seed=9, variation_sigma=0.4)
        b = FlashChip(tiny_geometry, seed=9, variation_sigma=0.4)
        assert np.array_equal(a.variation_array(), b.variation_array())
        assert len(np.unique(a.variation_array())) > 1

    def test_wear_summary(self, chip):
        chip.erase(0)
        chip.retire(10)
        summary = chip.wear_summary()
        assert summary["max_pec"] == 1
        assert summary["retired_fpages"] == 1

    def test_policy_geometry_mismatch_rejected(self, policy):
        other = FlashGeometry(blocks=4)
        with pytest.raises(ConfigError):
            FlashChip(other, policy=policy)
