"""Unit tests for the LDPC-style capacity-approaching ECC model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.flash.ecc import (
    EccScheme,
    LdpcScheme,
    binary_entropy,
    inverse_binary_entropy,
)
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.units import KIB


class TestBinaryEntropy:
    def test_known_values(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0
        assert binary_entropy(0.11) == pytest.approx(0.5, abs=0.01)

    def test_symmetry(self):
        assert binary_entropy(0.2) == pytest.approx(binary_entropy(0.8))

    @given(h=st.floats(0.0, 1.0))
    @settings(max_examples=50)
    def test_inverse_roundtrip(self, h):
        p = inverse_binary_entropy(h)
        assert 0.0 <= p <= 0.5
        assert binary_entropy(p) == pytest.approx(h, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigError):
            binary_entropy(-0.1)
        with pytest.raises(ConfigError):
            inverse_binary_entropy(1.5)


class TestLdpcScheme:
    def test_waterfall_threshold(self):
        scheme = LdpcScheme.for_page(16 * KIB, 2 * KIB, efficiency=0.96)
        threshold = scheme.max_rber()
        assert scheme.page_failure_probability(threshold * 0.99) == 0.0
        assert scheme.page_failure_probability(threshold * 1.01) == 1.0

    def test_beats_bch_at_same_layout(self):
        # The motivation for LDPC in drives: more tolerable RBER at the
        # same code rate.
        ldpc = LdpcScheme.for_page(16 * KIB, 2 * KIB, efficiency=0.96)
        bch = EccScheme.for_page(16 * KIB, 2 * KIB)
        assert ldpc.max_rber() > bch.max_rber()

    def test_never_exceeds_shannon(self):
        scheme = LdpcScheme.for_page(16 * KIB, 2 * KIB, efficiency=1.0)
        # At efficiency 1 the threshold IS the Shannon limit for rate 8/9.
        assert binary_entropy(scheme.max_rber()) == pytest.approx(
            1 - 16 / 18, abs=1e-9)

    def test_lower_efficiency_lowers_threshold(self):
        strong = LdpcScheme.for_page(16 * KIB, 2 * KIB, efficiency=0.97)
        weak = LdpcScheme.for_page(16 * KIB, 2 * KIB, efficiency=0.90)
        assert weak.max_rber() < strong.max_rber()

    def test_rate_above_efficiency_corrects_nothing(self):
        scheme = LdpcScheme(codeword_bits=1000, parity_bits=10,
                            efficiency=0.9)  # rate 0.99 > 0.9
        assert scheme.max_rber() == 0.0
        assert scheme.page_failure_probability(1e-9) == 1.0

    def test_correctable_bits_consistent_with_threshold(self):
        scheme = LdpcScheme.for_page(16 * KIB, 2 * KIB)
        assert scheme.correctable_bits == int(
            scheme.codeword_bits * scheme.max_rber())

    def test_lower_code_rate_raises_threshold(self):
        l0 = LdpcScheme.for_page(16 * KIB, 2 * KIB)
        l1 = LdpcScheme.for_page(12 * KIB, 6 * KIB)
        assert l1.max_rber() > l0.max_rber()

    @pytest.mark.parametrize("kwargs", [
        {"codeword_bits": 0, "parity_bits": 0},
        {"codeword_bits": 100, "parity_bits": 100},
        {"codeword_bits": 100, "parity_bits": 10, "efficiency": 0.0},
        {"codeword_bits": 100, "parity_bits": 10, "uber_target": 1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            LdpcScheme(**kwargs)


class TestLdpcTirednessPolicy:
    def test_family_selects_scheme(self):
        policy = TirednessPolicy(ecc_family="ldpc")
        assert isinstance(policy.ecc_for_level(0), LdpcScheme)
        assert isinstance(TirednessPolicy().ecc_for_level(0), EccScheme)

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigError):
            TirednessPolicy(ecc_family="turbo")

    def test_ldpc_extends_absolute_pec_on_same_flash(self):
        # Calibrate the flash against BCH capabilities, then ask how far
        # the *same* wear curve stretches under LDPC: every level gains.
        bch_policy = TirednessPolicy(ecc_family="bch")
        model = calibrate_power_law(bch_policy, pec_limit_l0=3000)
        ldpc_policy = TirednessPolicy(ecc_family="ldpc")
        for level in bch_policy.usable_levels:
            assert (ldpc_policy.pec_limit(level, model)
                    > bch_policy.pec_limit(level, model))

    def test_calibration_works_under_ldpc(self):
        policy = TirednessPolicy(ecc_family="ldpc")
        model = calibrate_power_law(policy, pec_limit_l0=1000)
        assert policy.lifetime_gain(1, model) == pytest.approx(0.5, abs=1e-6)

    def test_chip_runs_on_ldpc_policy(self, tiny_geometry):
        from repro.flash.chip import FlashChip
        policy = TirednessPolicy(geometry=tiny_geometry, ecc_family="ldpc")
        chip = FlashChip(tiny_geometry, policy=policy, seed=1,
                         variation_sigma=0.0)
        chip.program(0, [b"a", b"b", b"c", b"d"])
        data, _latency = chip.read(0, 2)
        assert data.rstrip(b"\0") == b"c"
