"""Tests for channel-parallel time accounting."""

import pytest

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry


def scan_all(chip: FlashChip) -> None:
    for fpage in range(chip.geometry.total_fpages):
        capacity = chip.policy.data_opages(chip.level(fpage))
        chip.program(fpage, [b"x"] * capacity)
    for fpage in range(chip.geometry.total_fpages):
        chip.read_fpage(fpage)


class TestChannels:
    def test_single_channel_makespan_equals_busy(self):
        geometry = FlashGeometry(blocks=8, fpages_per_block=4, channels=1)
        chip = FlashChip(geometry, seed=1, variation_sigma=0.0,
                         inject_errors=False)
        scan_all(chip)
        assert chip.makespan_us() == pytest.approx(chip.stats.busy_us)

    def test_four_channels_near_4x_speedup(self):
        geometry = FlashGeometry(blocks=8, fpages_per_block=4, channels=4)
        chip = FlashChip(geometry, seed=1, variation_sigma=0.0,
                         inject_errors=False)
        scan_all(chip)
        # Blocks stripe evenly over channels, so the makespan is ~1/4 of
        # the serial time.
        assert chip.makespan_us() == pytest.approx(
            chip.stats.busy_us / 4, rel=1e-6)

    def test_blocks_stripe_round_robin(self):
        geometry = FlashGeometry(blocks=8, channels=4)
        chip = FlashChip(geometry, seed=1)
        assert chip.channel_of_block(0) == 0
        assert chip.channel_of_block(5) == 1
        assert chip.channel_of_block(7) == 3

    def test_skewed_traffic_limits_parallelism(self):
        geometry = FlashGeometry(blocks=8, fpages_per_block=4, channels=4)
        chip = FlashChip(geometry, seed=1, variation_sigma=0.0,
                         inject_errors=False)
        # Hammer a single block: everything serialises on one channel.
        chip.program(0, [b"x"] * 4)
        for _ in range(50):
            chip.read_fpage(0)
        assert chip.makespan_us() == pytest.approx(chip.stats.busy_us)

    def test_erases_charged_to_block_channel(self):
        geometry = FlashGeometry(blocks=8, fpages_per_block=4, channels=4)
        chip = FlashChip(geometry, seed=1, variation_sigma=0.0)
        chip.erase(1)  # channel 1
        assert chip.channel_busy_us[1] > 0
        assert chip.channel_busy_us[0] == 0
