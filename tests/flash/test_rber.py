"""Unit tests for RBER growth models."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.flash.rber import (
    ExponentialRBER,
    PowerLawRBER,
    lognormal_page_variation,
)
from repro.rng import make_rng


class TestPowerLaw:
    def test_monotone_increasing(self):
        model = PowerLawRBER(scale=1e-10, exponent=3.0)
        pecs = np.array([0, 10, 100, 1000, 5000])
        rbers = model.rber(pecs)
        assert np.all(np.diff(rbers) > 0)

    def test_floor_at_zero_cycles(self):
        model = PowerLawRBER(scale=1e-10, exponent=3.0, floor=1e-6)
        assert model.rber(0) == pytest.approx(1e-6)

    def test_inversion_roundtrip(self):
        model = PowerLawRBER(scale=2e-11, exponent=2.7, floor=1e-7)
        for pec in (10.0, 500.0, 3000.0):
            assert model.pec_at(model.rber(pec)) == pytest.approx(pec)

    def test_pec_at_below_floor_is_zero(self):
        model = PowerLawRBER(scale=1e-10, exponent=3.0, floor=1e-5)
        assert model.pec_at(1e-6) == 0.0

    def test_calibrated_hits_anchor(self):
        model = PowerLawRBER.calibrated(pec_limit=3000, max_rber=5e-3,
                                        exponent=3.0)
        assert model.rber(3000) == pytest.approx(5e-3)

    def test_calibrated_rejects_max_rber_below_floor(self):
        with pytest.raises(ConfigError):
            PowerLawRBER.calibrated(pec_limit=100, max_rber=1e-7,
                                    exponent=3.0, floor=1e-6)

    def test_scalar_in_scalar_out(self):
        model = PowerLawRBER(scale=1e-10, exponent=3.0)
        assert isinstance(model.rber(100.0), float)
        assert isinstance(model.pec_at(1e-5), float)

    def test_array_in_array_out(self):
        model = PowerLawRBER(scale=1e-10, exponent=3.0)
        out = model.rber(np.array([1.0, 2.0]))
        assert isinstance(out, np.ndarray) and out.shape == (2,)

    @pytest.mark.parametrize("kwargs", [
        {"scale": 0, "exponent": 3.0},
        {"scale": 1e-10, "exponent": 0},
        {"scale": 1e-10, "exponent": 3.0, "floor": -1e-9},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            PowerLawRBER(**kwargs)


class TestPecLimitWithVariation:
    def test_weak_pages_have_lower_limits(self):
        model = PowerLawRBER(scale=1e-10, exponent=3.0)
        strong = model.pec_limit(1e-3, scale_factor=0.5)
        median = model.pec_limit(1e-3, scale_factor=1.0)
        weak = model.pec_limit(1e-3, scale_factor=2.0)
        assert weak < median < strong

    def test_vectorised_over_scale_factors(self):
        model = PowerLawRBER(scale=1e-10, exponent=3.0)
        limits = model.pec_limit(1e-3, np.array([0.5, 1.0, 2.0]))
        assert limits.shape == (3,)
        assert np.all(np.diff(limits) < 0)


class TestExponential:
    def test_monotone_and_inversion(self):
        model = ExponentialRBER(floor=1e-6, tau=500.0)
        assert model.rber(1000) > model.rber(100)
        assert model.pec_at(model.rber(700.0)) == pytest.approx(700.0)

    def test_pec_at_at_or_below_floor(self):
        model = ExponentialRBER(floor=1e-6, tau=500.0)
        assert model.pec_at(1e-6) == 0.0
        assert model.pec_at(1e-9) == 0.0

    def test_calibrated_hits_anchor(self):
        model = ExponentialRBER.calibrated(pec_limit=3000, max_rber=5e-3,
                                           floor=1e-6)
        assert model.rber(3000) == pytest.approx(5e-3)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ExponentialRBER(floor=0, tau=100)
        with pytest.raises(ConfigError):
            ExponentialRBER(floor=1e-6, tau=0)


class TestPageVariation:
    def test_median_near_one(self):
        rng = make_rng(3)
        factors = lognormal_page_variation(rng, 20000, sigma=0.35)
        assert np.median(factors) == pytest.approx(1.0, rel=0.05)

    def test_sigma_zero_gives_identical_pages(self):
        rng = make_rng(3)
        factors = lognormal_page_variation(rng, 100, sigma=0.0)
        assert np.all(factors == 1.0)

    def test_deterministic_given_seed(self):
        a = lognormal_page_variation(make_rng(7), 64)
        b = lognormal_page_variation(make_rng(7), 64)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ConfigError):
            lognormal_page_variation(make_rng(0), -1)
        with pytest.raises(ConfigError):
            lognormal_page_variation(make_rng(0), 10, sigma=-0.1)
