"""Unit tests for the flash geometry."""

import pytest

from repro.errors import ConfigError
from repro.flash.geometry import FlashGeometry
from repro.units import KIB


class TestDerivedSizes:
    def test_default_matches_paper_running_example(self):
        geo = FlashGeometry()
        assert geo.fpage_data_bytes == 16 * KIB
        assert geo.fpage_total_bytes == 18 * KIB
        assert geo.opages_per_fpage == 4

    def test_baseline_code_rate_is_about_88_percent(self):
        # The paper: "a typical flash page spare code rate is 88%".
        assert FlashGeometry().baseline_code_rate == pytest.approx(16 / 18)

    def test_total_counts(self):
        geo = FlashGeometry(blocks=10, fpages_per_block=8)
        assert geo.total_fpages == 80
        assert geo.total_opage_slots == 320
        assert geo.raw_data_bytes == 80 * 16 * KIB

    def test_block_data_bytes(self):
        geo = FlashGeometry(fpages_per_block=8)
        assert geo.block_data_bytes == 8 * 16 * KIB

    def test_non_default_opage_layout(self):
        geo = FlashGeometry(opage_bytes=4 * KIB, opages_per_fpage=2,
                            spare_bytes=1 * KIB)
        assert geo.fpage_data_bytes == 8 * KIB
        assert geo.fpage_total_bytes == 9 * KIB


class TestIndexArithmetic:
    def test_block_of_fpage(self):
        geo = FlashGeometry(blocks=4, fpages_per_block=8)
        assert geo.block_of_fpage(0) == 0
        assert geo.block_of_fpage(7) == 0
        assert geo.block_of_fpage(8) == 1
        assert geo.block_of_fpage(31) == 3

    def test_fpage_range_of_block(self):
        geo = FlashGeometry(blocks=4, fpages_per_block=8)
        assert list(geo.fpage_range_of_block(2)) == list(range(16, 24))

    def test_fpage_out_of_range_raises(self):
        geo = FlashGeometry(blocks=2, fpages_per_block=4)
        with pytest.raises(IndexError):
            geo.check_fpage(8)
        with pytest.raises(IndexError):
            geo.check_fpage(-1)

    def test_block_out_of_range_raises(self):
        geo = FlashGeometry(blocks=2)
        with pytest.raises(IndexError):
            geo.fpage_range_of_block(2)

    def test_slot_out_of_range_raises(self):
        geo = FlashGeometry()
        with pytest.raises(IndexError):
            geo.check_slot(4)
        geo.check_slot(3)  # largest valid slot


class TestValidation:
    @pytest.mark.parametrize("field", [
        "opage_bytes", "opages_per_fpage", "spare_bytes",
        "fpages_per_block", "blocks", "channels",
    ])
    def test_rejects_non_positive(self, field):
        with pytest.raises(ConfigError):
            FlashGeometry(**{field: 0})

    def test_rejects_non_int(self):
        with pytest.raises(ConfigError):
            FlashGeometry(blocks=2.5)

    def test_with_blocks_copies_other_fields(self):
        geo = FlashGeometry(blocks=8, fpages_per_block=16, channels=2)
        bigger = geo.with_blocks(64)
        assert bigger.blocks == 64
        assert bigger.fpages_per_block == 16
        assert bigger.channels == 2
        assert geo.blocks == 8  # original untouched
