"""Tests for retention-error modelling and scrub-driven data refresh."""

import pytest

from repro.errors import ConfigError, UncorrectableError
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.sim.clock import SimClock
from repro.units import DAY


@pytest.fixture
def clocked_chip(tiny_geometry):
    clock = SimClock()
    chip = FlashChip(tiny_geometry, seed=1, variation_sigma=0.0,
                     retention_rber_per_day=2e-4,
                     now_fn=lambda: clock.now)
    return chip, clock


class TestRetention:
    def test_fresh_data_unaffected(self, clocked_chip):
        chip, clock = clocked_chip
        chip.program(0, [b"a"] * 4)
        assert chip.rber_of(0) == pytest.approx(0.0)
        assert chip.data_age_days(0) == 0.0

    def test_rber_grows_with_data_age(self, clocked_chip):
        chip, clock = clocked_chip
        chip.program(0, [b"a"] * 4)
        clock.advance(10 * DAY)
        assert chip.data_age_days(0) == pytest.approx(10.0)
        assert chip.rber_of(0) == pytest.approx(10 * 2e-4)

    def test_cold_data_eventually_unreadable(self, clocked_chip):
        chip, clock = clocked_chip
        chip.program(0, [b"a"] * 4)
        clock.advance(200 * DAY)  # RBER 0.04 >> L0 capability ~4.7e-3
        with pytest.raises(UncorrectableError):
            for _ in range(30):
                chip.read(0, 0)

    def test_required_level_sees_retention(self, clocked_chip):
        chip, clock = clocked_chip
        chip.program(0, [b"a"] * 4)
        assert chip.required_level(0) == 0
        clock.advance(40 * DAY)  # RBER 8e-3: past L0, within L1
        assert chip.required_level(0) >= 1
        assert chip.is_overworn(0)

    def test_rewrite_resets_the_clock(self, clocked_chip):
        chip, clock = clocked_chip
        chip.program(0, [b"a"] * 4)
        clock.advance(50 * DAY)
        chip.erase(0)
        chip.program(0, [b"b"] * 4)
        assert chip.data_age_days(0) == 0.0
        assert chip.rber_of(0) == pytest.approx(0.0)

    def test_free_pages_have_no_retention(self, clocked_chip):
        chip, clock = clocked_chip
        clock.advance(100 * DAY)
        assert chip.rber_of(0) == pytest.approx(0.0)

    def test_requires_time_source(self, tiny_geometry):
        with pytest.raises(ConfigError):
            FlashChip(tiny_geometry, retention_rber_per_day=1e-5)
        with pytest.raises(ConfigError):
            FlashChip(tiny_geometry, retention_rber_per_day=-1e-5,
                      now_fn=lambda: 0.0)


class TestScrubRefresh:
    def test_scrubber_refreshes_cold_data(self, tiny_geometry, ftl_config):
        from repro.ssd.ftl import PageMappedFTL

        clock = SimClock()
        chip = FlashChip(tiny_geometry, seed=1, variation_sigma=0.0,
                         retention_rber_per_day=2e-4,
                         now_fn=lambda: clock.now)
        ftl = PageMappedFTL.for_chip(chip, ftl_config)
        for lba in range(24):
            ftl.write(lba, f"cold-{lba}".encode())
        ftl.flush()
        # Data sits cold just past the L0 retention budget — still readable
        # (uncorrectable sets in sharply around ~1.3x capability) but
        # flagged overworn — and a scrub sweep rewrites it in time.
        clock.advance(26 * DAY)
        moved = ftl.scrub()
        assert moved >= 24
        for lba in range(24):
            assert ftl.read(lba).rstrip(b"\0") == f"cold-{lba}".encode()
        # Another cold spell is now survivable too (clock was reset).
        clock.advance(26 * DAY)
        ftl.scrub()
        for lba in range(24):
            assert ftl.read(lba).rstrip(b"\0") == f"cold-{lba}".encode()

    def test_without_scrub_cold_data_dies(self, tiny_geometry, ftl_config):
        from repro.ssd.ftl import PageMappedFTL

        clock = SimClock()
        chip = FlashChip(tiny_geometry, seed=1, variation_sigma=0.0,
                         retention_rber_per_day=2e-4,
                         now_fn=lambda: clock.now)
        ftl = PageMappedFTL.for_chip(chip, ftl_config)
        ftl.write(0, b"cold")
        ftl.flush()
        clock.advance(200 * DAY)
        with pytest.raises(UncorrectableError):
            for _ in range(30):
                ftl.read(0)
