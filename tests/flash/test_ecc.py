"""Unit tests for the ECC capability model."""

import pytest

from repro.errors import ConfigError
from repro.flash.ecc import EccScheme, bch_correctable_bits
from repro.units import KIB


class TestBchBound:
    def test_known_value_for_default_page(self):
        # 18 KiB codeword -> m = 18; 2 KiB parity = 16384 bits -> t = 910.
        assert bch_correctable_bits(18 * KIB * 8, 2 * KIB * 8) == 910

    def test_more_parity_more_correction(self):
        n = 18 * KIB * 8
        t1 = bch_correctable_bits(n, 2 * KIB * 8)
        t2 = bch_correctable_bits(n, 6 * KIB * 8)
        assert t2 > t1

    def test_zero_parity_corrects_nothing(self):
        assert bch_correctable_bits(1024, 0) == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            bch_correctable_bits(0, 10)
        with pytest.raises(ConfigError):
            bch_correctable_bits(100, -1)
        with pytest.raises(ConfigError):
            bch_correctable_bits(100, 100)  # no data bits left


class TestEccScheme:
    def test_for_page_constructor(self):
        scheme = EccScheme.for_page(16 * KIB, 2 * KIB)
        assert scheme.codeword_bits == 18 * KIB * 8
        assert scheme.parity_bits == 2 * KIB * 8
        assert scheme.data_bits == 16 * KIB * 8

    def test_code_rate(self):
        scheme = EccScheme.for_page(16 * KIB, 2 * KIB)
        assert scheme.code_rate == pytest.approx(16 / 18)

    def test_failure_probability_monotone_in_rber(self):
        scheme = EccScheme.for_page(16 * KIB, 2 * KIB)
        probs = [scheme.page_failure_probability(r)
                 for r in (1e-4, 1e-3, 3e-3, 5e-3, 1e-2)]
        assert all(a <= b for a, b in zip(probs, probs[1:]))

    def test_failure_probability_edges(self):
        scheme = EccScheme.for_page(16 * KIB, 2 * KIB)
        assert scheme.page_failure_probability(0.0) == 0.0
        assert scheme.page_failure_probability(1.0) == 1.0
        with pytest.raises(ConfigError):
            scheme.page_failure_probability(-0.1)

    def test_max_rber_meets_target(self):
        scheme = EccScheme.for_page(16 * KIB, 2 * KIB, uber_target=1e-15)
        limit = scheme.max_rber()
        assert scheme.page_failure_probability(limit) <= 1e-15
        # Just above the limit the target must be violated.
        assert scheme.page_failure_probability(limit * 1.05) > 1e-15

    def test_max_rber_below_naive_t_over_n(self):
        scheme = EccScheme.for_page(16 * KIB, 2 * KIB)
        assert scheme.max_rber() < scheme.correctable_bits / scheme.codeword_bits

    def test_lower_code_rate_tolerates_more_errors(self):
        strong = EccScheme.for_page(12 * KIB, 6 * KIB)
        weak = EccScheme.for_page(16 * KIB, 2 * KIB)
        assert strong.max_rber() > weak.max_rber()

    def test_tighter_target_means_lower_max_rber(self):
        loose = EccScheme.for_page(16 * KIB, 2 * KIB, uber_target=1e-9)
        tight = EccScheme.for_page(16 * KIB, 2 * KIB, uber_target=1e-18)
        assert tight.max_rber() < loose.max_rber()

    def test_is_reliable_at(self):
        scheme = EccScheme.for_page(16 * KIB, 2 * KIB)
        assert scheme.is_reliable_at(scheme.max_rber() * 0.5)
        assert not scheme.is_reliable_at(scheme.max_rber() * 2.0)

    def test_zero_parity_max_rber_is_zero(self):
        scheme = EccScheme(codeword_bits=4096, parity_bits=0)
        assert scheme.max_rber() == 0.0

    def test_uber_target_validation(self):
        with pytest.raises(ConfigError):
            EccScheme(1024, 128, uber_target=0.0)
        with pytest.raises(ConfigError):
            EccScheme(1024, 128, uber_target=1.0)
