"""Unit tests for the latency model."""

import pytest

from repro.errors import ConfigError
from repro.flash.ecc import EccScheme
from repro.flash.latency import LatencyModel
from repro.units import KIB


@pytest.fixture
def ecc():
    return EccScheme.for_page(16 * KIB, 2 * KIB)


class TestReadRetries:
    def test_fresh_page_has_negligible_retries(self, ecc):
        model = LatencyModel()
        assert model.expected_read_retries(0.0, ecc) == 0.0
        assert model.expected_read_retries(ecc.max_rber() * 0.1, ecc) < 0.01

    def test_retries_ramp_toward_capability(self, ecc):
        model = LatencyModel()
        low = model.expected_read_retries(ecc.max_rber() * 0.5, ecc)
        high = model.expected_read_retries(ecc.max_rber() * 0.95, ecc)
        assert high > low

    def test_retries_capped_at_budget(self, ecc):
        model = LatencyModel(max_read_retries=8)
        assert model.expected_read_retries(ecc.max_rber() * 10, ecc) == 8.0

    def test_zero_capability_uses_full_budget(self):
        model = LatencyModel(max_read_retries=8)
        no_ecc = EccScheme(codeword_bits=4096, parity_bits=0)
        assert model.expected_read_retries(1e-4, no_ecc) == 8.0

    def test_lower_code_rate_reduces_retries_at_same_rber(self, ecc):
        # §4.2: L1's higher RBER is "mitigated [by] the lower code rate".
        model = LatencyModel()
        strong = EccScheme.for_page(12 * KIB, 6 * KIB)
        rber = ecc.max_rber() * 0.9
        assert (model.expected_read_retries(rber, strong)
                < model.expected_read_retries(rber, ecc))


class TestLatencies:
    def test_read_latency_includes_transfer(self, ecc):
        model = LatencyModel(read_us=60, transfer_us_per_kib=1.0)
        lat = model.read_latency_us(0.0, ecc, 4 * KIB)
        assert lat == pytest.approx(60 + 4.0)

    def test_read_latency_grows_with_wear(self, ecc):
        model = LatencyModel()
        fresh = model.read_latency_us(0.0, ecc, 4 * KIB)
        worn = model.read_latency_us(ecc.max_rber() * 0.98, ecc, 4 * KIB)
        assert worn > fresh

    def test_program_latency(self):
        model = LatencyModel(program_us=600, transfer_us_per_kib=0.5)
        assert model.program_latency_us(16 * KIB) == pytest.approx(600 + 8.0)

    def test_erase_latency(self):
        assert LatencyModel(erase_us=2500).erase_latency_us() == 2500

    def test_negative_payload_rejected(self, ecc):
        model = LatencyModel()
        with pytest.raises(ConfigError):
            model.read_latency_us(0.0, ecc, -1)
        with pytest.raises(ConfigError):
            model.program_latency_us(-1)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ConfigError):
            LatencyModel(read_us=-1)
        with pytest.raises(ConfigError):
            LatencyModel(retry_exponent=-2)
