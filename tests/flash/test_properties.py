"""Property-based tests (hypothesis) for the flash models.

These pin down the invariants the rest of the system leans on: monotone
ECC capability, invertible RBER curves, and consistent level assignment.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.ecc import EccScheme, bch_correctable_bits
from repro.flash.geometry import FlashGeometry
from repro.flash.rber import ExponentialRBER, PowerLawRBER
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law

power_laws = st.builds(
    PowerLawRBER,
    scale=st.floats(1e-15, 1e-6),
    exponent=st.floats(0.5, 5.0),
    floor=st.floats(0.0, 1e-6),
)

exponentials = st.builds(
    ExponentialRBER,
    floor=st.floats(1e-9, 1e-4),
    tau=st.floats(10.0, 1e5),
)


class TestRBERProperties:
    @given(model=power_laws, pec_a=st.floats(0, 1e5), pec_b=st.floats(0, 1e5))
    def test_power_law_monotone(self, model, pec_a, pec_b):
        lo, hi = sorted((pec_a, pec_b))
        assert model.rber(lo) <= model.rber(hi)

    @given(model=power_laws, pec=st.floats(1.0, 1e5))
    def test_power_law_inversion(self, model, pec):
        assert model.pec_at(model.rber(pec)) == pytest.approx(pec, rel=1e-6)

    @given(model=exponentials, ratio=st.floats(0.01, 50.0))
    def test_exponential_inversion(self, model, ratio):
        # Stay within ~50 e-foldings: beyond that exp() overflows a double,
        # which no physical calibration approaches.
        pec = ratio * model.tau
        assert model.pec_at(model.rber(pec)) == pytest.approx(pec, rel=1e-6)

    @given(model=power_laws, rber=st.floats(1e-12, 0.1),
           weak=st.floats(1.0, 10.0))
    def test_weaker_page_never_outlives_median(self, model, rber, weak):
        if rber <= model.floor:
            return
        median_limit = model.pec_limit(rber, 1.0)
        weak_limit = model.pec_limit(rber, weak)
        assert weak_limit <= median_limit + 1e-9


class TestEccProperties:
    @given(data_kib=st.integers(1, 64), parity_kib=st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_max_rber_always_meets_target(self, data_kib, parity_kib):
        scheme = EccScheme.for_page(data_kib * 1024, parity_kib * 1024)
        limit = scheme.max_rber()
        assert scheme.page_failure_probability(limit) <= scheme.uber_target

    @given(n=st.integers(256, 1 << 20),
           r1=st.integers(0, 1 << 14), r2=st.integers(0, 1 << 14))
    def test_bch_monotone_in_parity(self, n, r1, r2):
        lo, hi = sorted((r1, r2))
        if hi >= n:
            return
        assert (bch_correctable_bits(n, lo)
                <= bch_correctable_bits(n, hi))

    @given(n=st.integers(256, 1 << 20), r=st.integers(1, 1 << 14))
    def test_bch_never_exceeds_one_bit_per_parity_bit(self, n, r):
        if r >= n:
            return
        assert bch_correctable_bits(n, r) <= r


class TestTirednessProperties:
    @given(opages=st.integers(2, 8), spare_kib=st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_max_rber_strictly_increases_with_level(self, opages, spare_kib):
        policy = TirednessPolicy(geometry=FlashGeometry(
            opages_per_fpage=opages, spare_bytes=spare_kib * 1024))
        rbers = [policy.max_rber(l) for l in policy.usable_levels]
        assert all(a < b for a, b in zip(rbers, rbers[1:]))

    @given(pec=st.floats(0, 1e4), scale=st.floats(0.1, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_level_for_pec_is_sufficient(self, pec, scale):
        policy = TirednessPolicy()
        model = calibrate_power_law(policy, pec_limit_l0=1000)
        level = int(policy.level_for_pec(pec, model, scale))
        rber = float(model.rber(pec)) * scale
        if level < policy.dead_level:
            # The assigned level's ECC must actually cover the page.
            assert rber <= policy.max_rber(level) * (1 + 1e-9)
        if level > 0:
            # And the next-lower level must NOT (minimality).
            assert rber > policy.max_rber(level - 1)

    @given(l1_gain=st.floats(0.05, 2.0))
    @settings(max_examples=20, deadline=None)
    def test_calibration_hits_any_anchor(self, l1_gain):
        policy = TirednessPolicy()
        model = calibrate_power_law(policy, pec_limit_l0=500, l1_gain=l1_gain)
        assert policy.lifetime_gain(1, model) == pytest.approx(
            l1_gain, rel=1e-6)
