"""Unit tests for tiredness levels and the Fig. 2 calibration."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import (
    TirednessLevel,
    TirednessPolicy,
    calibrate_power_law,
    default_policy_and_model,
)


@pytest.fixture
def default_policy():
    return TirednessPolicy()


class TestLevelGeometry:
    def test_dead_level_equals_opages(self, default_policy):
        assert default_policy.dead_level == 4
        assert default_policy.dead_level == TirednessLevel.L4

    def test_data_opages_declines_one_per_level(self, default_policy):
        assert [default_policy.data_opages(l) for l in range(5)] == [4, 3, 2, 1, 0]

    def test_code_rates_match_paper_layout(self, default_policy):
        # 16 KiB data + 2 KiB spare: L0 = 16/18, L1 = 12/18, ...
        assert default_policy.code_rate(0) == pytest.approx(16 / 18)
        assert default_policy.code_rate(1) == pytest.approx(12 / 18)
        assert default_policy.code_rate(2) == pytest.approx(8 / 18)
        assert default_policy.code_rate(3) == pytest.approx(4 / 18)

    def test_parity_bytes_grow_by_one_opage(self, default_policy):
        deltas = np.diff([default_policy.parity_bytes(l) for l in range(4)])
        assert np.all(deltas == default_policy.geometry.opage_bytes)

    def test_capacity_fraction(self, default_policy):
        assert default_policy.capacity_fraction(1) == 0.75

    def test_level_out_of_range(self, default_policy):
        with pytest.raises(ConfigError):
            default_policy.check_level(5)
        with pytest.raises(ConfigError):
            default_policy.check_level(-1)

    def test_dead_level_has_no_ecc(self, default_policy):
        with pytest.raises(ConfigError):
            default_policy.ecc_for_level(4)
        assert default_policy.max_rber(4) == 0.0

    def test_two_opage_geometry(self):
        policy = TirednessPolicy(
            geometry=FlashGeometry(opages_per_fpage=2, spare_bytes=1024))
        assert policy.dead_level == 2
        assert list(policy.usable_levels) == [0, 1]


class TestCalibration:
    def test_l1_gain_hits_anchor(self):
        policy = TirednessPolicy()
        model = calibrate_power_law(policy, pec_limit_l0=3000, l1_gain=0.5)
        assert policy.lifetime_gain(1, model) == pytest.approx(0.5, abs=1e-6)
        assert float(policy.pec_limit(0, model)) == pytest.approx(3000)

    def test_custom_anchor(self):
        policy = TirednessPolicy()
        model = calibrate_power_law(policy, pec_limit_l0=1000, l1_gain=0.3)
        assert policy.lifetime_gain(1, model) == pytest.approx(0.3, abs=1e-6)

    def test_diminishing_marginal_gains(self):
        policy = TirednessPolicy()
        model = calibrate_power_law(policy)
        gains = [policy.lifetime_gain(l, model) for l in range(4)]
        marginals = np.diff(gains)
        assert np.all(marginals > 0)
        assert np.all(np.diff(marginals) < 0)  # Fig. 2: diminishing returns

    def test_rejects_non_positive_gain(self):
        with pytest.raises(ConfigError):
            calibrate_power_law(TirednessPolicy(), l1_gain=0.0)

    def test_default_pair_cached(self):
        a = default_policy_and_model()
        b = default_policy_and_model()
        assert a is b


class TestLevelForPec:
    def test_fresh_page_is_l0(self, default_policy):
        model = calibrate_power_law(default_policy, pec_limit_l0=100)
        assert default_policy.level_for_pec(0, model) == 0

    def test_progression_through_levels(self, default_policy):
        model = calibrate_power_law(default_policy, pec_limit_l0=100)
        limits = default_policy.pec_limits(model)
        assert default_policy.level_for_pec(limits[0] * 0.99, model) == 0
        assert default_policy.level_for_pec(limits[0] * 1.01, model) == 1
        assert default_policy.level_for_pec(limits[1] * 1.01, model) == 2
        assert default_policy.level_for_pec(limits[3] * 1.01, model) == 4

    def test_weak_page_transitions_earlier(self, default_policy):
        model = calibrate_power_law(default_policy, pec_limit_l0=100)
        pec = default_policy.pec_limits(model)[0] * 0.9
        median = default_policy.level_for_pec(pec, model, scale_factor=1.0)
        weak = default_policy.level_for_pec(pec, model, scale_factor=3.0)
        assert median == 0
        assert weak >= 1

    def test_vectorised(self, default_policy):
        model = calibrate_power_law(default_policy, pec_limit_l0=100)
        pecs = np.array([0.0, 120.0, 1e6])
        levels = default_policy.level_for_pec(pecs, model)
        assert levels.tolist() == [0, 1, 4]

    def test_pec_limit_zero_at_dead_level(self, default_policy):
        model = calibrate_power_law(default_policy, pec_limit_l0=100)
        assert float(default_policy.pec_limit(4, model)) == 0.0
