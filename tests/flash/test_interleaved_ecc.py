"""Tests for multi-codeword (interleaved) page ECC."""

import pytest

from repro.errors import ConfigError
from repro.flash.ecc import EccScheme
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.units import KIB


class TestInterleavedScheme:
    def test_even_split_required(self):
        with pytest.raises(ConfigError):
            EccScheme(codeword_bits=1000, parity_bits=100, codewords=3)
        with pytest.raises(ConfigError):
            EccScheme.for_page(16 * KIB, 2 * KIB, codewords=0)

    def test_correctable_bits_are_per_codeword(self):
        single = EccScheme.for_page(16 * KIB, 2 * KIB, codewords=1)
        split = EccScheme.for_page(16 * KIB, 2 * KIB, codewords=4)
        assert split.correctable_bits < single.correctable_bits
        # The parity is shared out, so each codeword corrects roughly a
        # quarter as many bits (slightly more: smaller field degree m).
        assert split.correctable_bits >= single.correctable_bits // 4

    def test_page_failure_accounts_for_all_codewords(self):
        split = EccScheme.for_page(16 * KIB, 2 * KIB, codewords=4)
        rber = split.max_rber() * 1.2
        assert split.page_failure_probability(rber) > \
            split.codeword_failure_probability(rber)

    def test_interleaving_costs_some_capability(self):
        # One page-wide codeword pools all parity against the worst burst;
        # independent small codewords each face the UBER target alone.
        single = EccScheme.for_page(16 * KIB, 2 * KIB, codewords=1)
        split = EccScheme.for_page(16 * KIB, 2 * KIB, codewords=8)
        assert split.max_rber() < single.max_rber()
        # But the penalty is modest — well under 2x.
        assert split.max_rber() > single.max_rber() / 2

    def test_max_rber_still_meets_target(self):
        split = EccScheme.for_page(16 * KIB, 2 * KIB, codewords=4)
        limit = split.max_rber()
        assert split.page_failure_probability(limit) <= split.uber_target
        assert split.page_failure_probability(limit * 1.05) > \
            split.uber_target


class TestInterleavedPolicy:
    def test_policy_passes_codewords_through(self):
        policy = TirednessPolicy(ecc_codewords=4)
        assert policy.ecc_for_level(0).codewords == 4

    def test_calibration_still_anchors_l1(self):
        policy = TirednessPolicy(ecc_codewords=4)
        model = calibrate_power_law(policy, pec_limit_l0=1000)
        assert policy.lifetime_gain(1, model) == pytest.approx(0.5,
                                                               abs=1e-6)

    def test_validation(self):
        with pytest.raises(ConfigError):
            TirednessPolicy(ecc_codewords=0)
