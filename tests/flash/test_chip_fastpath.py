"""Equivalence tests for the chip-level fast paths.

The chip precomputes per-level ECC tables, memoises the wear RBER per PEC
value, batches GC reads (``read_opages``) and maintains per-block capacity
counters incrementally. Each shortcut must be observationally identical to
the straightforward recomputation it replaced — including, for the batched
read path, consuming *exactly the same RNG draws in the same order* as the
sequential reads it supersedes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flash.chip import FlashChip, PageState
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law


def make_pair(seed: int = 21, **kwargs) -> tuple[FlashChip, FlashChip]:
    """Two chips with identical construction (same variation, same RNG)."""
    geometry = FlashGeometry(blocks=8, fpages_per_block=8)
    policy = TirednessPolicy(geometry=geometry)
    model = calibrate_power_law(policy, pec_limit_l0=50)
    mk = lambda: FlashChip(geometry, rber_model=model, policy=policy,  # noqa: E731
                           seed=seed, **kwargs)
    return mk(), mk()


class TestRberMemo:
    def test_rber_of_matches_direct_model_evaluation(self, make_chip):
        chip = make_chip(seed=20)
        for _ in range(3):
            chip.erase(1)
        for fpage in chip.geometry.fpage_range_of_block(1):
            expected = (float(chip.rber_model.rber(chip.pec(fpage)))
                        * chip.variation(fpage))
            assert chip.rber_of(fpage) == pytest.approx(expected, rel=0,
                                                        abs=0.0)

    def test_memo_survives_pec_changes(self, make_chip):
        chip = make_chip(seed=20)
        before = chip.rber_of(0)
        chip.erase(0)
        after = chip.rber_of(0)
        assert after > before  # wear moved; the memo did not go stale


class TestRequiredLevel:
    def test_matches_naive_ladder_walk(self, make_chip):
        chip = make_chip(seed=22)
        rng = np.random.default_rng(22)
        for _ in range(40):
            block = int(rng.integers(0, chip.geometry.blocks))
            chip.erase(block)
        for fpage in range(chip.geometry.total_fpages):
            rber = chip.rber_of(fpage)
            naive = chip.policy.dead_level
            for level in chip.policy.usable_levels:
                if rber <= chip.policy.max_rber(level):
                    naive = level
                    break
            assert chip.required_level(fpage) == naive

    def test_worn_free_pages_matches_per_page_sweep(self, make_chip):
        chip = make_chip(seed=23, variation_sigma=0.5)
        for _ in range(30):
            chip.erase(2)
        expected = []
        for fpage in chip.geometry.fpage_range_of_block(2):
            if chip.state(fpage) is not PageState.FREE:
                continue
            required = chip.required_level(fpage)
            if required > chip.level(fpage):
                expected.append((fpage, required))
        assert chip.worn_free_pages(2) == expected


class TestReadOpagesBitIdentity:
    @pytest.mark.parametrize("kwargs", [
        {},
        {"read_disturb_rber": 1e-9},
    ])
    def test_same_rng_draws_and_stats_as_sequential_reads(self, kwargs):
        batch_chip, seq_chip = make_pair(seed=24, **kwargs)
        payloads = [bytes([i]) * 8 for i in range(4)]
        for chip in (batch_chip, seq_chip):
            chip.program(0, payloads, oob=((0, 1, 2, 3), 1))
            # Age the page so the RBER (and hence the injected-error
            # binomials) are non-trivial.
            for _ in range(60):
                chip.erase(1)
        slots = [0, 1, 2, 3]
        batch = batch_chip.read_opages(0, slots)
        sequential = []
        for slot in slots:
            try:
                data, _latency = seq_chip.read(0, slot)
            except Exception:
                data = None
            sequential.append(data)
        assert batch == sequential
        # Identical RNG consumption: the next draw on both chips agrees.
        assert (batch_chip.rng.integers(0, 2**31)
                == seq_chip.rng.integers(0, 2**31))
        assert batch_chip.stats.reads == seq_chip.stats.reads
        assert batch_chip.stats.read_retries == seq_chip.stats.read_retries
        assert batch_chip.stats.busy_us == seq_chip.stats.busy_us
        assert batch_chip.channel_busy_us == seq_chip.channel_busy_us

    def test_subset_of_slots(self):
        batch_chip, seq_chip = make_pair(seed=25)
        payloads = [bytes([i]) * 8 for i in range(4)]
        for chip in (batch_chip, seq_chip):
            chip.program(8, payloads, oob=((4, 5, 6, 7), 1))
        slots = [1, 3]
        batch = batch_chip.read_opages(8, slots)
        sequential = [seq_chip.read(8, slot)[0] for slot in slots]
        assert batch == sequential
        assert batch_chip.stats.busy_us == seq_chip.stats.busy_us


class TestBlockAccounting:
    def test_usable_slots_track_retire_and_promote(self, make_chip):
        chip = make_chip(seed=26)
        policy = chip.policy
        rng = np.random.default_rng(26)
        for _ in range(200):
            fpage = int(rng.integers(0, chip.geometry.total_fpages))
            action = rng.random()
            if action < 0.4:
                chip.retire(fpage)
            elif action < 0.8:
                current = chip.level(fpage)
                if (chip.state(fpage) is not PageState.WRITTEN
                        and current < policy.dead_level):
                    chip.set_level(fpage, current + 1)
            else:
                block = fpage // chip.geometry.fpages_per_block
                try:
                    chip.erase(block)
                except Exception:
                    pass
        # Recompute from scratch and compare with the incremental counters.
        states = chip.state_array()
        levels = chip.level_array()
        per_fpage = np.where(states == 2, 0, policy.dead_level - levels)
        per_block = per_fpage.reshape(
            chip.geometry.blocks, chip.geometry.fpages_per_block).sum(axis=1)
        all_blocks = np.arange(chip.geometry.blocks)
        assert (chip.usable_slots_of_blocks(all_blocks) == per_block).all()
        assert chip.usable_slots_total() == int(per_block.sum())
        retired = (states == 2).reshape(
            chip.geometry.blocks, chip.geometry.fpages_per_block)
        for block in range(chip.geometry.blocks):
            assert chip.block_fully_retired(block) == bool(
                retired[block].all())

    def test_level_mirror_consistent_with_array(self, make_chip):
        chip = make_chip(seed=27)
        chip.set_level(3, 2)
        chip.set_level(4, chip.policy.dead_level)
        levels = chip.level_array()
        for fpage in range(chip.geometry.total_fpages):
            assert chip.level(fpage) == int(levels[fpage])
