"""Cluster-level differential: queued pipeline vs legacy direct path.

Two clusters with identical seeds and devices run the same workload —
one through the default queued IO pipeline (``queue_depth=8``), one
through the legacy direct device calls (``queue_depth=0``). Everything
observable must be bit-identical: chunk bytes, placement, every chip's
RNG state, wear counters, and the FTL fast-path invariants. The only
difference the queue is allowed to make is that latencies get measured.
"""

import pytest

from repro.difs.cluster import Cluster, ClusterConfig


def build_cluster(make_baseline, make_cvss, make_salamander,
                  queue_depth: int, **config_kwargs) -> Cluster:
    config = ClusterConfig(replication=2, chunk_lbas=4,
                           queue_depth=queue_depth, **config_kwargs)
    cluster = Cluster(config, seed=29)
    cluster.add_node("n0")
    cluster.add_device("n0", make_baseline(seed=1))
    cluster.add_node("n1")
    cluster.add_device("n1", make_cvss(seed=2))
    cluster.add_node("n2")
    cluster.add_device("n2", make_salamander(seed=3))
    cluster.add_node("n3")
    cluster.add_device("n3", make_salamander(seed=4))
    return cluster


def run_workload(cluster: Cluster) -> dict[str, bytes]:
    for i in range(12):
        cluster.create_chunk(f"c{i}", f"chunk-{i}".encode() * 3)
    for i in range(0, 12, 2):
        cluster.update_chunk(f"c{i}", f"update-{i}".encode() * 2)
    cluster.delete_chunk("c11")
    # Fail one volume and let recovery re-replicate off it.
    victim = sorted(cluster.volumes)[0]
    cluster.volumes[victim].mark_failed()
    cluster.poll_failures()
    cluster.run_recovery()
    cluster.audit()
    return {cid: cluster.read_chunk(cid)
            for cid in sorted(cluster.namespace)}


@pytest.fixture
def clusters(make_baseline, make_cvss, make_salamander):
    queued = build_cluster(make_baseline, make_cvss, make_salamander,
                           queue_depth=8)
    direct = build_cluster(make_baseline, make_cvss, make_salamander,
                           queue_depth=0)
    return queued, direct


def devices_of(cluster: Cluster):
    seen, out = set(), []
    for node in cluster.nodes.values():
        for device in node.devices:
            if id(device) not in seen:
                seen.add(id(device))
                out.append(device)
    return out


class TestDifferential:
    def test_zero_data_path_divergence(self, clusters):
        queued, direct = clusters
        queued_data = run_workload(queued)
        direct_data = run_workload(direct)
        # Byte-identical chunk contents.
        assert queued_data == direct_data
        # Identical placement decisions (cluster RNG in lockstep).
        assert (queued.rng.bit_generator.state
                == direct.rng.bit_generator.state)
        for chunk_id in queued.namespace:
            q_replicas = [(r.volume_id, r.slot, r.index)
                          for r in queued.namespace[chunk_id].replicas]
            d_replicas = [(r.volume_id, r.slot, r.index)
                          for r in direct.namespace[chunk_id].replicas]
            assert q_replicas == d_replicas
        # Every chip took exactly the same RNG draws and wear.
        for q_dev, d_dev in zip(devices_of(queued), devices_of(direct)):
            assert (q_dev.chip.rng.bit_generator.state
                    == d_dev.chip.rng.bit_generator.state)
            assert q_dev.chip.wear_summary() == d_dev.chip.wear_summary()
            q_dev._audit_fastpath()
            d_dev._audit_fastpath()

    @pytest.mark.parametrize("window", [1, 3, 64])
    def test_batch_submission_matches_direct(
            self, make_baseline, make_cvss, make_salamander, window):
        """io_batch_chunks staging keeps the full bit-identity contract.

        The staged path defers chunk writes into one execute_vector call
        per queue; per-device op order is unchanged, so chunk bytes,
        placement, chip RNG state, and wear must all match the direct
        path for any batching window.
        """
        batched = build_cluster(make_baseline, make_cvss, make_salamander,
                                queue_depth=8, io_batch_chunks=window)
        direct = build_cluster(make_baseline, make_cvss, make_salamander,
                               queue_depth=0)
        batched_data = run_workload(batched)
        direct_data = run_workload(direct)
        assert batched_data == direct_data
        assert (batched.rng.bit_generator.state
                == direct.rng.bit_generator.state)
        for chunk_id in batched.namespace:
            assert ([(r.volume_id, r.slot, r.index)
                     for r in batched.namespace[chunk_id].replicas]
                    == [(r.volume_id, r.slot, r.index)
                        for r in direct.namespace[chunk_id].replicas])
        for b_dev, d_dev in zip(devices_of(batched), devices_of(direct)):
            assert (b_dev.chip.rng.bit_generator.state
                    == d_dev.chip.rng.bit_generator.state)
            assert b_dev.chip.wear_summary() == d_dev.chip.wear_summary()
            b_dev._audit_fastpath()
        assert batched.io_stats()["errors"] == 0

    def test_batch_submission_flushes_before_stats_and_snapshot(
            self, make_baseline, make_cvss, make_salamander):
        cluster = build_cluster(make_baseline, make_cvss, make_salamander,
                                queue_depth=8, io_batch_chunks=1000)
        cluster.create_chunk("c0", b"payload")
        # The write is staged, not dispatched; any stats/metadata read
        # must flush it first so nothing observable goes missing.
        assert cluster._ticker.staged
        stats = cluster.io_stats()
        assert not cluster._ticker.staged
        assert stats["dispatched"] > 0
        cluster.create_chunk("c1", b"payload")
        snapshot = cluster.namespace_snapshot()
        assert not cluster._ticker.staged
        assert len(snapshot["chunks"]) == 2

    def test_queued_path_is_default_and_measures(self, clusters):
        queued, direct = clusters
        assert all(v.queue is not None for v in queued.volumes.values())
        assert all(v.queue is None for v in direct.volumes.values())
        run_workload(queued)
        stats = queued.io_stats()
        assert stats["queues"] == 4
        assert stats["dispatched"] > 0
        assert stats["errors"] == 0
        # Flash reads took simulated time, so the means are real numbers.
        assert stats["mean_latency_us"] > 0.0
        assert stats["mean_service_us"] > 0.0
        # Closed-loop cluster IO never waits (no open-loop arrivals).
        assert stats["mean_wait_us"] == 0.0
        # Deadline accounting aggregates (none set here: zero misses).
        assert stats["deadline_misses"] == 0
        assert stats["deadline_miss_ratio"] == 0.0
        assert queued.report()["io_mean_latency_us"] == pytest.approx(
            stats["mean_latency_us"])

    def test_minidisk_volumes_share_their_device_queue(self, clusters):
        queued, _ = clusters
        by_device = {}
        for volume in queued.volumes.values():
            by_device.setdefault(id(volume.device), set()).add(
                id(volume.queue))
        for queue_ids in by_device.values():
            assert len(queue_ids) == 1

    def test_regenerated_minidisk_joins_device_queue(
            self, make_salamander):
        cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4,
                                        queue_depth=8), seed=5)
        cluster.add_node("n0")
        device = make_salamander(mode="regen", seed=6)
        cluster.add_device("n0", device)
        queue_before = device.io_queue
        ids_before = set(cluster.volumes)
        # Wear the device until a regeneration happens: the new
        # minidisk's volume must share the existing device queue (the
        # NCQ is a device resource that outlives any one minidisk).
        import numpy as np
        rng = np.random.default_rng(0)
        while device.stats.regenerated_minidisks == 0:
            active = device.active_minidisks()
            mdisk = active[int(rng.integers(0, len(active)))]
            device.write(mdisk.mdisk_id,
                         int(rng.integers(0, mdisk.size_lbas)), b"x")
        new_ids = set(cluster.volumes) - ids_before
        assert new_ids, "regen mode should have registered new volumes"
        for volume_id in new_ids:
            assert cluster.volumes[volume_id].queue is queue_before
