"""Unit tests for IORequest/IOCompletion — validation and timing maths."""

import pytest

from repro.errors import ConfigError
from repro.io import IOCompletion, IORequest, READ_OPS, WRITE_OPS


class TestIORequest:
    def test_write_derives_count_from_payloads(self):
        request = IORequest(op="write", lba=4, payloads=[b"a", b"b", b"c"])
        assert request.count == 3
        assert not request.is_read

    def test_write_needs_payloads(self):
        with pytest.raises(ConfigError):
            IORequest(op="write", lba=0)

    def test_reads_carry_no_payloads(self):
        with pytest.raises(ConfigError):
            IORequest(op="read", lba=0, payloads=[b"x"])

    def test_read_is_single_lba(self):
        with pytest.raises(ConfigError):
            IORequest(op="read", lba=0, count=4)
        assert IORequest(op="read_range", lba=0, count=4).is_read

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigError):
            IORequest(op="compare-and-swap")

    def test_negative_lba_and_count_rejected(self):
        with pytest.raises(ConfigError):
            IORequest(op="read", lba=-1)
        with pytest.raises(ConfigError):
            IORequest(op="read_range", lba=0, count=0)

    def test_op_groups(self):
        assert "read" in READ_OPS and "read_range" in READ_OPS
        assert "write" in WRITE_OPS


class TestIOCompletion:
    def test_timing_decomposition(self):
        completion = IOCompletion(
            request=IORequest(op="read", lba=0),
            submit_us=10.0, start_us=25.0, end_us=85.0)
        assert completion.wait_us == pytest.approx(15.0)
        assert completion.service_us == pytest.approx(60.0)
        assert completion.latency_us == pytest.approx(75.0)
        assert completion.latency_us == pytest.approx(
            completion.wait_us + completion.service_us)
        assert completion.ok

    def test_deadline_flag(self):
        request = IORequest(op="read", lba=0, deadline_us=50.0)
        late = IOCompletion(request=request, submit_us=0.0,
                            start_us=0.0, end_us=60.0)
        ok = IOCompletion(request=request, submit_us=0.0,
                          start_us=0.0, end_us=40.0)
        assert late.deadline_missed
        assert not ok.deadline_missed

    def test_no_deadline_never_missed(self):
        completion = IOCompletion(
            request=IORequest(op="read", lba=0), end_us=1e9)
        assert not completion.deadline_missed
