"""IOVector / CompletionVector unit tests.

The batched hot path rests on three contracts this file pins directly:
the columns enforce the same invariants as ``IORequest.__post_init__``
(whether filled through ``append`` or checked wholesale by
``validate``), slices are *views* that alias the parent's memory, and
the scalar bridges (``request``/``from_requests``/``completion``)
round-trip losslessly. The behavioural equivalence against the scalar
queue path lives in ``test_batch_equivalence.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.io import IORequest
from repro.io.vector import (
    OP_FLUSH,
    OP_NAMES,
    OP_READ,
    OP_TRIM,
    OP_WRITE,
    CompletionVector,
    IOVector,
)


class TestAppend:
    def test_append_returns_indices_and_grows(self):
        vector = IOVector(capacity=2)
        indices = [vector.append("read", lba=i) for i in range(10)]
        assert indices == list(range(10))
        assert len(vector) == 10
        assert vector.lba[:10].tolist() == list(range(10))
        assert (vector.op[:10] == OP_READ).all()

    def test_append_accepts_codes_and_names(self):
        vector = IOVector()
        vector.append(OP_TRIM, lba=3)
        vector.append("trim", lba=4)
        assert vector.op[:2].tolist() == [OP_TRIM, OP_TRIM]

    def test_write_count_follows_payloads(self):
        vector = IOVector()
        vector.append("write", lba=0, payloads=[b"a", b"b", b"c"])
        assert vector.count[0] == 3

    def test_write_without_payloads_rejected(self):
        with pytest.raises(ConfigError):
            IOVector().append("write", lba=0)

    def test_read_with_payloads_rejected(self):
        with pytest.raises(ConfigError):
            IOVector().append("read", lba=0, payloads=[b"x"])

    def test_multi_lba_read_rejected(self):
        with pytest.raises(ConfigError):
            IOVector().append("read", lba=0, count=2)

    def test_negative_lba_rejected(self):
        with pytest.raises(ConfigError):
            IOVector().append("read", lba=-1)

    def test_unknown_op_rejected(self):
        with pytest.raises(KeyError):
            IOVector().append("compare_and_swap", lba=0)
        with pytest.raises(ConfigError):
            IOVector().append(len(OP_NAMES), lba=0)

    def test_defaults_match_request_semantics(self):
        vector = IOVector()
        vector.append("read", lba=7)
        assert np.isnan(vector.deadline_us[0])  # no deadline
        assert vector.mdisk_id[0] == -1  # flat device
        assert vector.stream[0] == 0
        assert vector.at_us[0] == 0.0  # closed loop


class TestValidate:
    def build_raw(self, n=4):
        """Fill columns directly, bypassing append's checks."""
        vector = IOVector(capacity=n)
        vector.op[:n] = OP_READ
        vector.count[:n] = 1
        vector._n = n
        return vector

    def test_valid_batch_passes(self):
        self.build_raw().validate()

    def test_empty_batch_passes(self):
        IOVector().validate()

    def test_out_of_range_op_caught(self):
        vector = self.build_raw()
        vector.op[2] = len(OP_NAMES)
        with pytest.raises(ConfigError):
            vector.validate()

    def test_negative_lba_caught(self):
        vector = self.build_raw()
        vector.lba[1] = -5
        with pytest.raises(ConfigError):
            vector.validate()

    def test_zero_count_caught_except_flush(self):
        vector = self.build_raw()
        vector.op[3] = OP_TRIM
        vector.count[3] = 0
        with pytest.raises(ConfigError):
            vector.validate()
        vector.op[3] = OP_FLUSH  # flush has no extent: count is free
        vector.validate()

    def test_write_payload_count_mismatch_caught(self):
        vector = self.build_raw()
        vector.op[0] = OP_WRITE
        vector.count[0] = 2
        vector.payloads[0] = [b"only-one"]
        with pytest.raises(ConfigError):
            vector.validate()

    def test_non_write_payloads_caught(self):
        vector = self.build_raw()
        vector.payloads[2] = [b"stray"]
        with pytest.raises(ConfigError):
            vector.validate()


class TestSliceViews:
    def build(self):
        vector = IOVector()
        for lba in range(8):
            vector.append("read", lba=lba)
        return vector

    def test_slice_is_a_view_of_the_columns(self):
        vector = self.build()
        view = vector[2:5]
        assert len(view) == 3
        assert view.lba.tolist() == [2, 3, 4]
        view.lba[0] = 99  # mutations propagate: same memory
        assert vector.lba[2] == 99

    def test_slice_clamps_to_length(self):
        vector = self.build()
        assert len(vector[6:100]) == 2
        assert len(vector[8:10]) == 0

    def test_non_contiguous_slice_rejected(self):
        with pytest.raises(ValueError):
            self.build()[0:8:2]

    def test_scalar_indexing_rejected(self):
        with pytest.raises(TypeError):
            self.build()[3]


class TestRequestBridge:
    def sample_requests(self):
        return [
            IORequest(op="read", lba=4),
            IORequest(op="write", lba=9, payloads=[b"a" * 8, b"b" * 8],
                      deadline_us=125.0, stream=2),
            IORequest(op="read_range", lba=0, count=6, mdisk_id=3),
            IORequest(op="trim", lba=11),
            IORequest(op="flush"),
        ]

    def test_round_trip_is_lossless(self):
        originals = self.sample_requests()
        vector = IOVector.from_requests(originals)
        for original, bridged in zip(originals, vector.to_requests()):
            for field in ("op", "lba", "count", "payloads", "mdisk_id",
                          "deadline_us", "stream"):
                assert getattr(bridged, field) == getattr(original, field), \
                    field

    def test_request_index_bounds(self):
        vector = IOVector.from_requests(self.sample_requests())
        with pytest.raises(IndexError):
            vector.request(len(vector))
        with pytest.raises(IndexError):
            vector.request(-1)

    def test_nan_deadline_bridges_to_none(self):
        vector = IOVector()
        vector.append("read", lba=0)
        vector.append("read", lba=1, deadline_us=50.0)
        assert vector.request(0).deadline_us is None
        assert vector.request(1).deadline_us == 50.0


class TestCompletionVector:
    def build(self):
        vector = IOVector()
        vector.append("read", lba=0)
        vector.append("read", lba=1)
        vector.append("trim", lba=2)
        error = ValueError("boom")
        completions = CompletionVector(
            vector, tag0=7,
            submit_us=[0.0, 10.0, 20.0],
            start_us=[0.0, 12.0, 20.0],
            end_us=[5.0, 15.0, 20.0],
            work_us=[5.0, 3.0, 0.0],
            results=[[b"x"], None, None],
            errors=[None, error, None])
        return completions, error

    def test_derived_timing_columns(self):
        completions, _ = self.build()
        assert completions.wait_us.tolist() == [0.0, 2.0, 0.0]
        assert completions.service_us.tolist() == [5.0, 3.0, 0.0]
        assert completions.latency_us.tolist() == [5.0, 5.0, 0.0]

    def test_error_count(self):
        completions, _ = self.build()
        assert len(completions) == 3
        assert completions.error_count == 1

    def test_scalar_bridge_carries_tags_and_status(self):
        completions, error = self.build()
        ok = completions.completion(0)
        assert ok.ok and ok.status == "ok"
        assert ok.request.tag == 7
        assert ok.result == [b"x"]
        failed = completions.completion(1)
        assert not failed.ok and failed.status == "error"
        assert failed.error is error
        assert failed.request.tag == 8
        assert failed.submit_us == 10.0 and failed.end_us == 15.0

    def test_to_completions_covers_all_members(self):
        completions, _ = self.build()
        tags = [c.request.tag for c in completions.to_completions()]
        assert tags == [7, 8, 9]
