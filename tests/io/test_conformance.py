"""BlockDevice conformance: every flavour, one protocol, two paths.

Each device flavour must (a) satisfy the :class:`BlockDevice` protocol,
(b) expose the uniform control surface, and (c) behave *identically*
whether IO arrives through the submission queue or through the legacy
direct method calls — same bytes, same RNG draw order, same fast-path
invariants.
"""

import pytest

from repro.errors import InvalidLBAError
from repro.io import BlockDevice, IORequest, device_kind_of

from tests.io.conftest import FLAVOURS, expected_kind


def payload(tag: int) -> bytes:
    return bytes([tag % 251]) * 24


@pytest.mark.parametrize("flavour", FLAVOURS)
class TestProtocol:
    def test_isinstance_blockdevice(self, flavour, make_device):
        device = make_device(flavour)
        assert isinstance(device, BlockDevice)

    def test_device_kind(self, flavour, make_device):
        device = make_device(flavour)
        assert device.device_kind == expected_kind(flavour)
        assert device_kind_of(device) == expected_kind(flavour)

    def test_capacity_surface(self, flavour, make_device):
        device = make_device(flavour)
        assert device.capacity_lbas > 0
        assert device.capacity_bytes == (
            device.capacity_lbas * device.chip.geometry.opage_bytes)

    def test_health_keys(self, flavour, make_device):
        health = make_device(flavour).health()
        for key in ("device_kind", "alive", "capacity_lbas",
                    "capacity_bytes", "live_lbas", "host_writes",
                    "host_reads"):
            assert key in health, f"{flavour} health misses {key}"
        assert health["device_kind"] == expected_kind(flavour)
        assert health["alive"] is True

    def test_fresh_device_is_alive(self, flavour, make_device):
        assert make_device(flavour).is_alive

    def test_queue_surface(self, flavour, make_device):
        device = make_device(flavour)
        queue = device.io_queue
        assert queue is device.io_queue  # stable
        assert queue.device_kind == expected_kind(flavour)
        assert device.poll() == []


@pytest.mark.parametrize("flavour", FLAVOURS)
class TestQueuedEqualsDirect:
    """The differential contract at device granularity.

    Two identically-seeded devices run the same workload — one through
    direct calls, one through the queue — and must end bit-identical:
    same read bytes, same chip RNG state (not one extra draw), same
    wear counters, clean fast-path audit on both.
    """

    def run_workload(self, io, direct: bool) -> list[bytes]:
        write = io.write_direct if direct else io.write_queued
        read = io.read_direct if direct else io.read_queued
        read_range = (io.read_range_direct if direct
                      else io.read_range_queued)
        trim = io.trim_direct if direct else io.trim_queued
        out = []
        for lba in range(24):
            write(lba, payload(lba))
        io.device.flush()
        for lba in range(0, 24, 3):
            out.append(read(lba))
        out.extend(read_range(4, 8))
        for lba in range(20, 24):
            trim(lba)
        for lba in range(8):  # overwrite: exercises GC pressure paths
            write(lba, payload(100 + lba))
        io.device.flush()
        out.extend(read_range(0, 8))
        return out

    def test_bit_identical_results(self, flavour, make_device, device_io):
        direct_dev = make_device(flavour, seed=13)
        queued_dev = make_device(flavour, seed=13)
        direct_out = self.run_workload(device_io(direct_dev), direct=True)
        queued_out = self.run_workload(device_io(queued_dev), direct=False)
        assert direct_out == queued_out
        # Identical RNG draw order, not merely identical data.
        assert (direct_dev.chip.rng.bit_generator.state
                == queued_dev.chip.rng.bit_generator.state)
        assert (direct_dev.chip.wear_summary()
                == queued_dev.chip.wear_summary())
        assert direct_dev.stats.snapshot() == queued_dev.stats.snapshot()
        direct_dev._audit_fastpath()
        queued_dev._audit_fastpath()

    def test_error_semantics_match(self, flavour, make_device, device_io):
        """The queue re-raises exactly what the direct call raises.

        Flavours disagree on the exception for an out-of-range LBA
        (flat devices raise :class:`InvalidLBAError`, CVSS rejects
        beyond-capacity addresses, minidisks range-check per mDisk) —
        what the contract pins is that both paths raise the *same*
        type for the same request.
        """
        device = make_device(flavour, seed=13)
        io = device_io(device)
        bad_lba = 10 ** 9
        with pytest.raises(Exception) as direct_exc:
            io.read_direct(bad_lba)
        with pytest.raises(Exception) as queued_exc:
            io.read_queued(bad_lba)
        assert type(queued_exc.value) is type(direct_exc.value)
        assert str(queued_exc.value) == str(direct_exc.value)
        if flavour in ("ftl", "baseline"):
            assert isinstance(direct_exc.value, InvalidLBAError)


@pytest.mark.parametrize("flavour", FLAVOURS)
def test_measured_latency_is_positive_for_flash_reads(
        flavour, make_device, device_io):
    device = make_device(flavour, seed=5)
    io = device_io(device)
    for lba in range(8):
        io.write_direct(lba, payload(lba))
    device.flush()
    completion = device.io_queue.execute(
        IORequest(op="read", lba=0, mdisk_id=io.mdisk_id))
    assert completion.service_us > 0.0
    assert completion.latency_us >= completion.service_us
