"""DeviceQueue mechanics: clocks, backpressure, coalescing, errors.

Timing assertions run with ``variation_sigma=0`` and error injection
off, so every flash read costs the same deterministic service time.
"""

import pytest

from repro.errors import ConfigError, InvalidLBAError
from repro.io import DeviceQueue, IORequest


@pytest.fixture
def device(make_baseline):
    """Deterministic-latency baseline device with LBAs 0..15 on flash."""
    ssd = make_baseline(seed=3, variation_sigma=0.0, inject_errors=False)
    for lba in range(16):
        ssd.write(lba, bytes([lba]) * 8)
    ssd.flush()  # drain the NVRAM buffer so reads hit flash
    return ssd


def read_request(lba):
    return IORequest(op="read", lba=lba)


class TestDispatch:
    def test_closed_loop_has_no_wait(self, device):
        queue = DeviceQueue(device)
        completion = queue.execute(read_request(0))
        assert completion.ok
        assert completion.result == [device.read(0)]
        assert completion.wait_us == 0.0
        assert completion.service_us > 0.0
        assert completion.latency_us == completion.service_us

    def test_submit_then_poll(self, device):
        queue = DeviceQueue(device)
        for lba in range(4):
            queue.submit(read_request(lba))
        completions = queue.poll()
        assert [c.request.lba for c in completions] == [0, 1, 2, 3]
        assert [c.request.tag for c in completions] == [0, 1, 2, 3]
        assert all(c.ok for c in completions)
        assert queue.poll() == []

    def test_execute_consumes_its_completion(self, device):
        queue = DeviceQueue(device)
        queue.execute(read_request(0))
        assert queue.poll() == []

    def test_open_loop_same_arrival_queues_on_one_channel(self, device):
        # tiny_geometry has one channel: two simultaneous arrivals
        # serialise, so the second waits the first's service time.
        queue = DeviceQueue(device)
        first = queue.execute(read_request(0), at_us=0.0)
        second = queue.execute(read_request(1), at_us=0.0)
        assert first.wait_us == 0.0
        assert second.wait_us == pytest.approx(first.service_us)
        assert second.latency_us == pytest.approx(
            second.wait_us + second.service_us)

    def test_open_loop_spaced_arrivals_do_not_queue(self, device):
        queue = DeviceQueue(device)
        first = queue.execute(read_request(0), at_us=0.0)
        second = queue.execute(
            read_request(1), at_us=first.end_us + 1.0)
        assert second.wait_us == 0.0

    def test_work_equals_service_on_one_channel(self, device):
        queue = DeviceQueue(device)
        completion = queue.execute(read_request(0))
        assert completion.work_us == pytest.approx(completion.service_us)

    def test_backpressure_clamps_arrival(self, device):
        queue = DeviceQueue(device, depth=1)
        first = queue.execute(read_request(0), at_us=0.0)
        # The window is empty again (execute consumed it), so refill it.
        queue.submit(read_request(1), at_us=0.0)
        blocked = queue.execute(read_request(2), at_us=0.0)
        # Arrival was clamped to the oldest in-flight completion's end.
        assert blocked.submit_us >= first.end_us
        assert queue.stats.dispatched == 3

    def test_depth_validation(self, device):
        with pytest.raises(ConfigError):
            DeviceQueue(device, depth=0)

    def test_stats_accumulate(self, device):
        queue = DeviceQueue(device, keep_latencies=True)
        for lba in range(3):
            queue.execute(read_request(lba))
        stats = queue.stats
        assert stats.submitted == stats.dispatched == 3
        assert len(stats.latencies_us) == 3
        assert stats.mean_latency_us == pytest.approx(
            sum(stats.latencies_us) / 3)
        assert stats.mean_latency_us == pytest.approx(
            stats.mean_wait_us + stats.mean_service_us)


class TestCoalescing:
    def test_contiguous_writes_merge(self, device):
        queue = DeviceQueue(device, coalesce=True)
        for lba in range(4):
            queue.submit(IORequest(op="write", lba=16 + lba,
                                   payloads=[b"m" * 8]))
        assert queue.stats.dispatched == 0  # still staged
        queue.flush()
        assert queue.stats.dispatched == 1
        assert queue.stats.merged == 3
        completions = queue.poll()
        assert completions[0].merged == 4
        assert completions[0].request.count == 4

    def test_non_contiguous_does_not_merge(self, device):
        queue = DeviceQueue(device, coalesce=True)
        queue.submit(IORequest(op="write", lba=16, payloads=[b"a" * 8]))
        queue.submit(IORequest(op="write", lba=20, payloads=[b"b" * 8]))
        queue.flush()
        assert queue.stats.merged == 0
        assert queue.stats.dispatched == 2

    def test_execute_flushes_staged_first(self, device):
        # Read-after-staged-write must see the write: execute()
        # dispatches the staged request before its own.
        queue = DeviceQueue(device, coalesce=True)
        queue.submit(IORequest(op="write", lba=16, payloads=[b"q" * 8]))
        completion = queue.execute(read_request(16))
        assert completion.result[0].rstrip(b"\0") == b"q" * 8

    def test_merge_respects_cap(self, device):
        from repro.io.queue import MAX_MERGE_LBAS
        queue = DeviceQueue(device, coalesce=True)
        staged = IORequest(op="read_range", lba=0, count=MAX_MERGE_LBAS)
        queue._staged = staged
        assert not queue._try_merge(
            IORequest(op="read_range", lba=MAX_MERGE_LBAS, count=1), None)


class TestErrors:
    def test_execute_reraises_device_error(self, device):
        queue = DeviceQueue(device)
        with pytest.raises(InvalidLBAError):
            queue.execute(read_request(10 ** 9))
        assert queue.stats.errors == 1

    def test_submit_raises_synchronously(self, device):
        queue = DeviceQueue(device)
        with pytest.raises(InvalidLBAError):
            queue.submit(read_request(10 ** 9))
        # The errored completion is still visible to poll().
        completions = queue.poll()
        assert len(completions) == 1
        assert not completions[0].ok
        assert isinstance(completions[0].error, InvalidLBAError)

    def test_inflight_gauge_tracks_error_reraise_paths(self, device):
        # The repro_io_inflight gauge must equal len(_inflight) even
        # when submit/execute re-raise a device error: submit leaves
        # the errored completion in flight (poll sees it), execute
        # consumes it — the gauge follows both.
        from repro import obs

        obs.enable_metrics()
        try:
            queue = DeviceQueue(device)

            def gauge():
                doc = obs.metrics().to_dict()
                families = {m["name"]: m for m in doc["metrics"]}
                (sample,) = families["repro_io_inflight"]["samples"]
                return sample["value"]

            with pytest.raises(InvalidLBAError):
                queue.submit(read_request(10 ** 9))
            assert queue.inflight == 1
            assert gauge() == 1.0
            queue.poll()
            assert queue.inflight == 0
            assert gauge() == 0.0
            with pytest.raises(InvalidLBAError):
                queue.execute(read_request(10 ** 9))
            assert queue.inflight == 0
            assert gauge() == 0.0
        finally:
            obs.disable()


class TestDeadlines:
    def test_coalescing_keeps_min_deadline(self, device):
        # A merged request must inherit the *tightest* deadline of its
        # constituents — otherwise coalescing would quietly relax SLOs.
        queue = DeviceQueue(device, coalesce=True)
        queue.submit(IORequest(op="write", lba=16, payloads=[b"a" * 8],
                               deadline_us=900.0))
        queue.submit(IORequest(op="write", lba=17, payloads=[b"b" * 8],
                               deadline_us=300.0))
        queue.submit(IORequest(op="write", lba=18, payloads=[b"c" * 8],
                               deadline_us=500.0))
        assert queue._staged.deadline_us == 300.0

    def test_merge_with_undated_neighbour_keeps_deadline(self, device):
        queue = DeviceQueue(device, coalesce=True)
        queue.submit(IORequest(op="write", lba=16, payloads=[b"a" * 8]))
        queue.submit(IORequest(op="write", lba=17, payloads=[b"b" * 8],
                               deadline_us=250.0))
        assert queue._staged.deadline_us == 250.0
        queue.submit(IORequest(op="write", lba=18, payloads=[b"c" * 8]))
        assert queue._staged.deadline_us == 250.0

    def test_all_undated_merge_has_no_deadline(self, device):
        queue = DeviceQueue(device, coalesce=True)
        queue.submit(IORequest(op="write", lba=16, payloads=[b"a" * 8]))
        queue.submit(IORequest(op="write", lba=17, payloads=[b"b" * 8]))
        assert queue._staged.deadline_us is None

    def test_merged_miss_counts_every_blown_member(self, device):
        # Per-member accounting: a coalesced dispatch that finishes late
        # counts one miss per absorbed request whose own deadline it
        # blew — previously a merged dispatch could only ever count 1.
        queue = DeviceQueue(device, coalesce=True)
        for lba, deadline in ((16, -1.0), (17, -1.0), (18, -1.0)):
            queue.submit(IORequest(op="write", lba=lba,
                                   payloads=[bytes([lba]) * 8],
                                   deadline_us=deadline))
        queue.flush()
        (completion,) = queue.poll()
        assert completion.request.count == 3  # really one merged dispatch
        assert completion.deadline_missed
        assert queue.stats.deadline_misses == 3

    def test_merged_miss_spares_members_with_slack(self, device):
        # Only the members whose own deadlines were blown count: a
        # generous deadline inside the same merge is not a miss.
        queue = DeviceQueue(device, coalesce=True)
        for lba, deadline in ((16, -1.0), (17, 1e9), (18, -1.0)):
            queue.submit(IORequest(op="write", lba=lba,
                                   payloads=[bytes([lba]) * 8],
                                   deadline_us=deadline))
        queue.flush()
        (completion,) = queue.poll()
        assert completion.request.count == 3
        assert completion.deadline_missed
        assert queue.stats.deadline_misses == 2

    def test_miss_counted_and_ratio_published(self, device):
        from repro import obs

        obs.enable_metrics()
        try:
            queue = DeviceQueue(device)
            # Generous deadline met, then an already-expired one missed.
            ok = queue.execute(read_request(0), at_us=0.0)
            assert not ok.deadline_missed
            late = IORequest(op="read", lba=1, deadline_us=0.0)
            missed = queue.execute(late, at_us=100.0)
            assert missed.deadline_missed
            assert queue.stats.deadline_misses == 1
            doc = obs.metrics().to_dict()
            families = {m["name"]: m for m in doc["metrics"]}
            sample = families["repro_io_deadline_miss_ratio"]["samples"][0]
            assert sample["value"] == pytest.approx(0.5)
        finally:
            obs.disable()


class TestTraceHandoff:
    def test_merge_adopts_absorbed_requests_context(self, device):
        from repro.obs import reqtrace

        with reqtrace.installed(reqtrace.ReqTracer(seed=1, every=1)):
            queue = DeviceQueue(device, coalesce=True)
        ctx_a = object.__new__(reqtrace.ReqContext)
        first = IORequest(op="write", lba=16, payloads=[b"a" * 8])
        queue._staged = first
        merged = queue._try_merge(
            IORequest(op="write", lba=17, payloads=[b"b" * 8]), None)
        assert merged
        assert first.trace is None
        # Now hand a sampled request to an unsampled staged neighbour.
        second = IORequest(op="write", lba=18, payloads=[b"c" * 8])
        second.trace = ctx_a
        assert queue._try_merge(second, None)
        assert first.trace is ctx_a

    def test_sampled_request_produces_record(self, device):
        from repro.obs import reqtrace

        with reqtrace.installed(reqtrace.ReqTracer(seed=1, every=1)) \
                as tracer:
            queue = DeviceQueue(device)
            queue.execute(read_request(0))
            queue.execute(read_request(1), at_us=0.0)
        assert tracer.sampled == 2
        records = list(tracer.records)
        assert len(records) == 2
        for record in records:
            assert record["device_kind"] == queue.device_kind
            assert sum(record["segments"].values()) == pytest.approx(
                record["total_us"], abs=1e-9)


class TestClock:
    def test_clock_monotone(self, device):
        queue = DeviceQueue(device)
        queue.execute(read_request(0), at_us=100.0)
        queue.execute(read_request(1), at_us=50.0)  # late-arriving stamp
        assert queue.clock_us == 100.0

    def test_makespan_covers_all_service(self, device):
        queue = DeviceQueue(device)
        total = 0.0
        for lba in range(4):
            total += queue.execute(read_request(lba), at_us=0.0).service_us
        assert queue.makespan_us() == pytest.approx(total)
