"""Fixtures for the IO-pipeline suites: every device flavour, one shape.

``make_device`` builds any of the four flavours from one seed;
``device_io`` wraps a device in a tiny adapter that knows its address
shape (flat LBA vs ``(mdisk_id, lba)``) so the conformance suite can run
one workload over all of them, both directly and through the queue.
"""

from __future__ import annotations

import pytest

from repro.io import IORequest
from repro.ssd.ftl import PageMappedFTL

#: ``salamander`` is ShrinkS (the fixture default); ``regen`` is RegenS
#: on the same geometry — same device class, different firmware mode.
FLAVOURS = ("ftl", "baseline", "cvss", "salamander", "regen")


def expected_kind(flavour: str) -> str:
    """Metric/protocol ``device_kind`` a flavour's device reports."""
    return "salamander" if flavour == "regen" else flavour


@pytest.fixture
def make_device(make_chip, ftl_config, make_baseline, make_cvss,
                make_salamander):
    """Build one identically-configured device of any flavour."""

    def factory(flavour: str, seed: int = 7):
        if flavour == "ftl":
            chip = make_chip(seed=seed)
            n_lbas = int(chip.geometry.total_opage_slots * 0.75)
            return PageMappedFTL(chip, n_lbas, ftl_config)
        if flavour == "baseline":
            return make_baseline(seed=seed)
        if flavour == "cvss":
            return make_cvss(seed=seed)
        if flavour == "salamander":
            return make_salamander(seed=seed)
        if flavour == "regen":
            return make_salamander(mode="regen", seed=seed)
        raise ValueError(flavour)

    return factory


class DeviceIO:
    """Address-shape adapter: one API over flat and minidisk devices."""

    def __init__(self, device):
        self.device = device
        self.mdisk_id = None
        if device.device_kind == "salamander":
            self.mdisk_id = device.active_minidisks()[0].mdisk_id

    # -- legacy direct calls ------------------------------------------------

    def write_direct(self, lba: int, data: bytes) -> None:
        if self.mdisk_id is None:
            self.device.write(lba, data)
        else:
            self.device.write(self.mdisk_id, lba, data)

    def read_direct(self, lba: int) -> bytes:
        if self.mdisk_id is None:
            return self.device.read(lba)
        return self.device.read(self.mdisk_id, lba)

    def read_range_direct(self, lba: int, count: int) -> list[bytes]:
        if self.mdisk_id is None:
            return self.device.read_range(lba, count)
        return self.device.read_range(self.mdisk_id, lba, count)

    def trim_direct(self, lba: int) -> None:
        if self.mdisk_id is None:
            self.device.trim(lba)
        else:
            self.device.trim(self.mdisk_id, lba)

    # -- queued requests ----------------------------------------------------

    def write_queued(self, lba: int, data: bytes) -> None:
        self.device.submit(IORequest(op="write", lba=lba, payloads=[data],
                                     mdisk_id=self.mdisk_id))

    def read_queued(self, lba: int) -> bytes:
        completion = self.device.io_queue.execute(
            IORequest(op="read", lba=lba, mdisk_id=self.mdisk_id))
        return completion.result[0]

    def read_range_queued(self, lba: int, count: int) -> list[bytes]:
        completion = self.device.io_queue.execute(
            IORequest(op="read_range", lba=lba, count=count,
                      mdisk_id=self.mdisk_id))
        return completion.result

    def trim_queued(self, lba: int) -> None:
        self.device.submit(IORequest(op="trim", lba=lba,
                                     mdisk_id=self.mdisk_id))


@pytest.fixture
def device_io():
    return DeviceIO
