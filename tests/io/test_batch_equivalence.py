"""Batched==scalar bit-identity: the vectorised hot path's contract.

``DeviceQueue.execute_vector`` must be an exact drop-in for the scalar
``execute`` loop: identical results, errors, timing columns, chip RNG
draw order, wear, endurance-ledger cause attribution, and FTL fast-path
invariants — across every device flavour, healthy or worn. Batching is a
representation change, never a behaviour change (docs/PERFORMANCE.md
"Batched IO path").
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.rber import PowerLawRBER
from repro.io import DeviceQueue, IORequest
from repro.io.vector import IOVector
from repro.ssd.ftl import FTLConfig, PageMappedFTL

from tests.io.conftest import FLAVOURS


def mixed_ops(n_lbas: int, count: int, seed: int):
    """Deterministic read-heavy mix over ``[0, n_lbas)``."""
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(count):
        roll = rng.random()
        lba = int(rng.integers(0, n_lbas))
        if roll < 0.6:
            ops.append(("read", lba, 1))
        elif roll < 0.8:
            ops.append(("write", lba, 1))
        elif roll < 0.9:
            ops.append(("trim", lba, 1))
        else:
            ops.append(("read_range", lba, min(4, n_lbas - lba)))
    return ops


def build_vector(ops, mdisk_id=None):
    vector = IOVector(capacity=len(ops))
    for op, lba, count in ops:
        vector.append(op, lba=lba, count=count,
                      payloads=([bytes([lba % 7]) * 8]
                                if op == "write" else None),
                      mdisk_id=mdisk_id)
    return vector


def run_scalar(queue, ops, mdisk_id=None):
    """Reference loop: one ``execute`` per op, errors swallowed like the
    vector path records them."""
    completions = []
    for op, lba, count in ops:
        request = IORequest(
            op=op, lba=lba, count=count,
            payloads=([bytes([lba % 7]) * 8] if op == "write" else None),
            mdisk_id=mdisk_id)
        try:
            queue.execute(request)
            done = queue.poll()
        except Exception:
            done = queue.poll()
        completions.append(done[-1] if done else None)
    return completions


def queue_state(queue):
    stats = {k: v for k, v in vars(queue.stats).items()
             if k != "latencies_us"}
    return (queue.clock_us, list(queue._channel_free), stats)


def chip_state(chip):
    return (chip.rng.bit_generator.state, dict(vars(chip.stats)),
            list(chip.channel_busy_us), chip.wear_summary())


def assert_completions_match(scalar, vector_completions, ops):
    for member, completion in enumerate(scalar):
        if completion is None:
            continue
        batched = vector_completions.completion(member)
        for field in ("submit_us", "start_us", "end_us", "work_us"):
            assert getattr(completion, field) == getattr(batched, field), \
                (member, ops[member], field)
        assert (completion.error is None) == (batched.error is None), \
            (member, ops[member])
        assert completion.result == batched.result, (member, ops[member])


class TestExecuteVectorEquivalence:
    @pytest.mark.parametrize("flavour", FLAVOURS)
    def test_all_flavours_bit_identical(self, flavour, make_device,
                                        device_io):
        scalar_dev = make_device(flavour, seed=17)
        vector_dev = make_device(flavour, seed=17)
        mdisk = device_io(scalar_dev).mdisk_id
        n_lbas = (scalar_dev.minidisk(mdisk).size_lbas
                  if mdisk is not None else scalar_dev.n_lbas)
        ops = mixed_ops(n_lbas, 400, seed=31)
        for lba in range(n_lbas):
            if mdisk is None:
                scalar_dev.write(lba, bytes([lba % 251]) * 8)
                vector_dev.write(lba, bytes([lba % 251]) * 8)
            else:
                scalar_dev.write(mdisk, lba, bytes([lba % 251]) * 8)
                vector_dev.write(mdisk, lba, bytes([lba % 251]) * 8)
        scalar_q = DeviceQueue(scalar_dev)
        vector_q = DeviceQueue(vector_dev)
        scalar = run_scalar(scalar_q, ops, mdisk)
        batched = vector_q.execute_vector(build_vector(ops, mdisk))
        assert chip_state(scalar_dev.chip) == chip_state(vector_dev.chip)
        assert queue_state(scalar_q) == queue_state(vector_q)
        assert_completions_match(scalar, batched, ops)
        scalar_dev._audit_fastpath()
        vector_dev._audit_fastpath()

    def test_worn_chip_errors_bit_identical(self):
        """Uncorrectable reads keep both paths in lockstep (the batched
        read kernel must charge accumulator *deltas*, not raw latencies,
        and record per-member errors exactly where the scalar loop
        raises them)."""

        def build():
            geometry = FlashGeometry(blocks=32, fpages_per_block=32,
                                     channels=2)
            chip = FlashChip(
                geometry, seed=23, variation_sigma=0.2,
                read_disturb_rber=2e-4,
                rber_model=PowerLawRBER(scale=2e-6, exponent=1.4,
                                        floor=2e-3))
            ftl = PageMappedFTL(
                chip, 200, FTLConfig(overprovision=0.25,
                                     buffer_opages=16))
            for lba in range(200):
                ftl.write(lba, bytes([lba % 251]) * 8)
            return ftl

        ops = mixed_ops(200, 3000, seed=77)
        scalar_dev, vector_dev = build(), build()
        scalar_q, vector_q = DeviceQueue(scalar_dev), DeviceQueue(vector_dev)
        scalar = run_scalar(scalar_q, ops)
        batched = vector_q.execute_vector(build_vector(ops))
        assert vector_q.stats.errors > 0, "fixture must produce errors"
        assert chip_state(scalar_dev.chip) == chip_state(vector_dev.chip)
        assert queue_state(scalar_q) == queue_state(vector_q)
        assert ([repr(x) for x in scalar_q.stats.latencies_us]
                == [repr(x) for x in vector_q.stats.latencies_us])
        assert_completions_match(scalar, batched, ops)
        scalar_dev._audit_fastpath()
        vector_dev._audit_fastpath()

    @pytest.mark.parametrize("flavour", ("ftl", "baseline"))
    def test_endurance_causes_identical(self, flavour, make_device):
        """The wear ledger attributes every program/erase to the same
        cause under both submission surfaces."""
        from repro.obs import endurance

        ops = mixed_ops(48, 600, seed=5)

        def causes(batched: bool):
            with endurance.installed(pec_limit=3000.0):
                device = make_device(flavour, seed=17)
                for lba in range(48):
                    device.write(lba, bytes(8))
                queue = DeviceQueue(device)
                if batched:
                    queue.execute_vector(build_vector(ops))
                else:
                    run_scalar(queue, ops)
                handle = device.chip._endurance
                return (dict(handle.programs), dict(handle.erases),
                        dict(handle.program_opages))

        assert causes(batched=False) == causes(batched=True)

    def test_vector_scalar_fallback_with_reqtrace(self, make_baseline):
        """With a reqtrace sampler installed the vector path must take
        the fully-traced scalar route and still match."""
        from repro.obs import reqtrace

        ops = mixed_ops(16, 200, seed=9)

        def run(batched: bool):
            with reqtrace.installed(reqtrace.ReqTracer(seed=3, every=8)) \
                    as tracer:
                device = make_baseline(seed=3, variation_sigma=0.0,
                                       inject_errors=False)
                for lba in range(16):
                    device.write(lba, bytes([lba]) * 8)
                device.flush()
                queue = DeviceQueue(device)
                if batched:
                    queue.execute_vector(build_vector(ops))
                else:
                    run_scalar(queue, ops)
                return (queue_state(queue), chip_state(device.chip),
                        tracer.sampled)

        scalar_state = run(batched=False)
        vector_state = run(batched=True)
        assert scalar_state == vector_state
        assert vector_state[2] > 0, "sampler must actually sample"


class TestWorkloadVectorEquivalence:
    def test_ops_vector_matches_ops_stream(self):
        """Generator batching re-expresses the identical traffic."""
        from repro.workloads import MixedGenerator, UniformGenerator
        from repro.workloads.generators import OpType

        scalar_gen = MixedGenerator(
            UniformGenerator(64, seed=2), read_fraction=0.4,
            trim_fraction=0.1, seed=4)
        vector_gen = MixedGenerator(
            UniformGenerator(64, seed=2), read_fraction=0.4,
            trim_fraction=0.1, seed=4)
        scalar_ops = list(scalar_gen.ops(500))
        vector = vector_gen.ops_vector(500)
        assert len(vector) == 500
        assert (scalar_gen.rng.bit_generator.state
                == vector_gen.rng.bit_generator.state)
        for index, operation in enumerate(scalar_ops):
            request = vector.request(index)
            assert request.op == operation.op.value
            assert request.lba == operation.lba
            if operation.op is OpType.WRITE:
                assert request.payloads == [operation.payload]
            else:
                assert request.payloads is None
