"""Tests for the declarative scenario runner."""

import json

import pytest

from repro.errors import ConfigError
from repro.reporting.export import load_experiment
from repro.scenarios import (
    SCENARIO_KINDS,
    load_scenario,
    run_scenario,
    validate_scenario,
)


class TestValidation:
    def test_requires_name_and_kind(self):
        with pytest.raises(ConfigError):
            validate_scenario({"kind": "fleet"})
        with pytest.raises(ConfigError):
            validate_scenario({"name": "x", "kind": "teleport"})
        with pytest.raises(ConfigError):
            validate_scenario({"name": "x", "kind": "fleet", "params": 3})
        with pytest.raises(ConfigError):
            validate_scenario([1, 2])

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"name": "s", "kind": "carbon"}))
        assert load_scenario(path)["kind"] == "carbon"

    def test_all_kinds_have_runners(self):
        from repro.scenarios import _RUNNERS
        assert set(_RUNNERS) == set(SCENARIO_KINDS)


class TestRunners:
    def test_fig2(self, tmp_path):
        writer = run_scenario({"name": "f2", "kind": "fig2",
                               "params": {"pec_limit": 1000}})
        path = writer.write(tmp_path)
        document = load_experiment(path)
        rows = document["tables"]["fig2"]["rows"]
        assert rows[1][5] == pytest.approx(0.5, abs=1e-6)  # L1 gain

    def test_carbon(self):
        writer = run_scenario({"name": "c", "kind": "carbon"})
        rows = dict(writer.document()["tables"]["fig4"]["rows"])
        assert rows["regens/renewable"] == pytest.approx(0.2)

    def test_tco(self):
        writer = run_scenario({"name": "t", "kind": "tco",
                               "params": {"f_opex": 0.14}})
        rows = dict(writer.document()["tables"]["tco"]["rows"])
        assert rows["regens"] == pytest.approx(0.258, abs=0.01)

    def test_fleet_small(self):
        writer = run_scenario({
            "name": "fl", "kind": "fleet", "seed": 3,
            "params": {"devices": 8, "horizon_days": 800, "step_days": 40,
                       "pec_limit_l0": 300,
                       "geometry": {"blocks": 32, "fpages_per_block": 16}},
            "modes": ["baseline", "regen"],
        })
        document = writer.document()
        assert "baseline/functioning" in document["series"]
        summary = {row[0]: row[1]
                   for row in document["tables"]["summary"]["rows"]}
        assert summary["regen"] > summary["baseline"]

    def test_fleet_rejects_unknown_params(self):
        with pytest.raises(ConfigError):
            run_scenario({"name": "bad", "kind": "fleet",
                          "params": {"warp_factor": 9}})

    def test_tournament_small(self):
        writer = run_scenario({
            "name": "tour", "kind": "tournament", "seed": 1,
            "params": {"blocks": 24, "pec_limit": 20},
        })
        rows = {row[0]: row[1]
                for row in writer.document()["tables"]["lifetimes"]["rows"]}
        assert rows["regens"] > rows["baseline"]

    def test_replacement_small(self):
        writer = run_scenario({
            "name": "ru", "kind": "replacement", "seed": 9,
            "params": {"slots": 10, "horizon_years": 6,
                       "age_limit_years": 2,
                       "fleet": {"devices": 8, "dwpd": 1.0,
                                 "pec_limit_l0": 300, "step_days": 20,
                                 "geometry": {"blocks": 32,
                                              "fpages_per_block": 16}}},
        })
        rows = {row[0]: row[2]
                for row in writer.document()["tables"]
                ["upgrade_rates"]["rows"]}
        assert rows["regen"] < rows["baseline"]


class TestShippedScenarios:
    @pytest.mark.parametrize("name", ["fig2_ldpc.json"])
    def test_shipped_scenarios_validate(self, name):
        from pathlib import Path
        path = Path(__file__).parent.parent / "scenarios" / name
        document = load_scenario(path)
        writer = run_scenario(document)
        assert writer.document()["tables"]
