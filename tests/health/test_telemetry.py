"""Unit tests for SMART-style telemetry generation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.flash.geometry import FlashGeometry
from repro.health.telemetry import TelemetryConfig, generate_trajectories


@pytest.fixture(scope="module")
def population():
    config = TelemetryConfig(
        devices=60, geometry=FlashGeometry(blocks=64, fpages_per_block=32),
        pec_limit_l0=300, dwpd=1.0, sample_days=10, max_days=1500)
    return generate_trajectories(config, seed=4)


class TestTrajectories:
    def test_population_size(self, population):
        assert len(population) == 60

    def test_monotone_counters(self, population):
        for trajectory in population:
            assert np.all(np.diff(trajectory.days) > 0)
            assert np.all(np.diff(trajectory.writes_bytes) > 0)
            assert np.all(np.diff(trajectory.bad_blocks) >= 0)

    def test_wear_deaths_cross_threshold(self, population):
        for trajectory in population:
            if trajectory.death_cause == "wear":
                assert trajectory.bad_fraction[-1] > 0.025

    def test_death_day_matches_last_sample(self, population):
        for trajectory in population:
            if np.isfinite(trajectory.death_day):
                assert trajectory.death_day == trajectory.days[-1]

    def test_most_devices_die_of_wear_under_heavy_load(self, population):
        causes = [t.death_cause for t in population]
        assert causes.count("wear") > len(causes) * 0.5

    def test_load_spread_varies_death_times(self, population):
        deaths = [t.death_day for t in population
                  if t.death_cause == "wear"]
        assert len(set(deaths)) > 5

    def test_deterministic(self):
        config = TelemetryConfig(
            devices=10, geometry=FlashGeometry(blocks=32,
                                               fpages_per_block=16),
            pec_limit_l0=300, max_days=1000)
        a = generate_trajectories(config, seed=7)
        b = generate_trajectories(config, seed=7)
        assert all(x.death_day == y.death_day for x, y in zip(a, b))

    def test_censoring(self):
        config = TelemetryConfig(
            devices=10, geometry=FlashGeometry(blocks=32,
                                               fpages_per_block=16),
            pec_limit_l0=100_000, afr=0.0, max_days=400)
        for trajectory in generate_trajectories(config, seed=1):
            assert trajectory.death_cause == "censored"
            assert not np.isfinite(trajectory.death_day)

    def test_validation(self):
        with pytest.raises(ConfigError):
            TelemetryConfig(devices=0)
        with pytest.raises(ConfigError):
            TelemetryConfig(sample_days=0)
        with pytest.raises(ConfigError):
            TelemetryConfig(afr=1.0)
