"""Unit tests for dataset construction and failure prediction."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.flash.geometry import FlashGeometry
from repro.health.predictor import (
    FailurePredictor,
    build_dataset,
    evaluate_predictor,
)
from repro.health.telemetry import TelemetryConfig, generate_trajectories


@pytest.fixture(scope="module")
def populations():
    config = TelemetryConfig(
        devices=100, geometry=FlashGeometry(blocks=96, fpages_per_block=32),
        pec_limit_l0=600, dwpd=1.0, sample_days=15, max_days=2500)
    return (generate_trajectories(config, seed=1),
            generate_trajectories(config, seed=2))


class TestDataset:
    def test_shapes_align(self, populations):
        train, _ = populations
        features, labels = build_dataset(train, horizon_days=60)
        assert features.shape[0] == labels.shape[0]
        assert features.shape[1] == 5
        assert set(np.unique(labels)) <= {0.0, 1.0}

    def test_positives_exist_near_deaths(self, populations):
        train, _ = populations
        _, labels = build_dataset(train, horizon_days=60)
        assert 0 < labels.mean() < 0.5

    def test_longer_horizon_more_positives(self, populations):
        train, _ = populations
        _, short = build_dataset(train, horizon_days=30)
        _, long = build_dataset(train, horizon_days=120)
        assert long.mean() > short.mean()

    def test_censored_tails_excluded(self):
        config = TelemetryConfig(
            devices=12, geometry=FlashGeometry(blocks=32,
                                               fpages_per_block=16),
            pec_limit_l0=100_000, afr=0.0, sample_days=30, max_days=600)
        survivors = generate_trajectories(config, seed=3)
        features, labels = build_dataset(survivors, horizon_days=90)
        # All labels are 0 (nobody died) and the last 90 days are dropped.
        assert labels.sum() == 0
        assert features[:, 0].max() <= 600 - 90

    def test_validation(self, populations):
        train, _ = populations
        with pytest.raises(ConfigError):
            build_dataset(train, horizon_days=0)


class TestPredictor:
    def test_beats_base_rate_on_held_out_devices(self, populations):
        train, test = populations
        predictor = FailurePredictor(horizon_days=90).fit(train)
        report = evaluate_predictor(predictor, test)
        # Useful detector: precision well above the base rate, decent recall.
        assert report.precision > 2 * report.base_rate
        assert report.recall > 0.4

    def test_risk_increases_toward_death(self, populations):
        train, test = populations
        predictor = FailurePredictor(horizon_days=90).fit(train)
        dying = next(t for t in test if t.death_cause == "wear"
                     and t.days.size >= 6)
        early = predictor.risk_at(dying, 0)
        late = predictor.risk_at(dying, dying.days.size - 1)
        assert late > early

    def test_threshold_trades_precision_for_recall(self, populations):
        train, test = populations
        predictor = FailurePredictor(horizon_days=90).fit(train)
        strict = evaluate_predictor(predictor, test, threshold=0.8)
        lax = evaluate_predictor(predictor, test, threshold=0.2)
        assert lax.recall >= strict.recall
        assert strict.precision >= lax.precision
