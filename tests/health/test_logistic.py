"""Unit tests for the from-scratch logistic regression."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.health.logistic import LogisticModel


def linearly_separable(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = (x[:, 0] + 2 * x[:, 1] > 0).astype(float)
    return x, y


class TestLogistic:
    def test_learns_separable_data(self):
        x, y = linearly_separable()
        model = LogisticModel().fit(x, y)
        accuracy = (model.predict(x) == y).mean()
        assert accuracy > 0.97

    def test_probabilities_ordered_along_margin(self):
        x, y = linearly_separable()
        model = LogisticModel().fit(x, y)
        low = model.predict_proba(np.array([[-3.0, -3.0]]))[0]
        high = model.predict_proba(np.array([[3.0, 3.0]]))[0]
        assert low < 0.05 < 0.95 < high

    def test_handles_constant_feature(self):
        x, y = linearly_separable()
        x = np.hstack([x, np.ones((x.shape[0], 1))])  # zero-variance column
        model = LogisticModel().fit(x, y)
        assert (model.predict(x) == y).mean() > 0.95

    def test_unfitted_predict_rejected(self):
        with pytest.raises(ConfigError):
            LogisticModel().predict_proba(np.zeros((1, 2)))

    def test_imbalanced_base_rate_respected(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(500, 2))
        y = np.zeros(500)
        y[:25] = 1  # 5 % positives, no signal
        model = LogisticModel().fit(x, y)
        mean_probability = model.predict_proba(x).mean()
        assert mean_probability == pytest.approx(0.05, abs=0.03)

    @pytest.mark.parametrize("kwargs", [
        {"learning_rate": 0},
        {"iterations": 0},
        {"l2": -1},
    ])
    def test_hyperparameter_validation(self, kwargs):
        with pytest.raises(ConfigError):
            LogisticModel(**kwargs)

    def test_data_validation(self):
        model = LogisticModel()
        with pytest.raises(ConfigError):
            model.fit(np.zeros((3, 2)), np.zeros(2))
        with pytest.raises(ConfigError):
            model.fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ConfigError):
            model.fit(np.zeros((2, 2)), np.array([0.0, 2.0]))
