"""Unit tests for replacement-policy evaluation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.flash.geometry import FlashGeometry
from repro.health.policy import (
    evaluate_fixed_age,
    evaluate_predictive,
    evaluate_run_to_failure,
)
from repro.health.predictor import FailurePredictor
from repro.health.telemetry import TelemetryConfig, generate_trajectories


@pytest.fixture(scope="module")
def world():
    config = TelemetryConfig(
        devices=100, geometry=FlashGeometry(blocks=96, fpages_per_block=32),
        pec_limit_l0=600, dwpd=1.0, sample_days=15, max_days=2500)
    train = generate_trajectories(config, seed=1)
    test = generate_trajectories(config, seed=2)
    predictor = FailurePredictor(horizon_days=90).fit(train)
    return test, predictor


class TestPolicies:
    def test_run_to_failure_wastes_nothing(self, world):
        test, _ = world
        outcome = evaluate_run_to_failure(test)
        assert outcome.wasted_life_fraction == 0.0
        assert outcome.unexpected_failure_rate > 0.9

    def test_fixed_age_trades_life_for_safety(self, world):
        test, _ = world
        median_life = float(np.median(
            [t.death_day for t in test if np.isfinite(t.death_day)]))
        outcome = evaluate_fixed_age(test, median_life * 0.6)
        baseline = evaluate_run_to_failure(test)
        assert outcome.unexpected_failures < baseline.unexpected_failures
        assert outcome.wasted_life_fraction > 0.1
        assert outcome.preemptive_retirements > 0

    def test_predictive_dominates_fixed_age(self, world):
        test, predictor = world
        median_life = float(np.median(
            [t.death_day for t in test if np.isfinite(t.death_day)]))
        fixed = evaluate_fixed_age(test, median_life * 0.6)
        predictive = evaluate_predictive(test, predictor, threshold=0.5)
        # Better on both axes: fewer surprises AND less wasted life.
        assert (predictive.unexpected_failure_rate
                <= fixed.unexpected_failure_rate)
        assert (predictive.wasted_life_fraction
                < fixed.wasted_life_fraction)

    def test_threshold_moves_the_tradeoff(self, world):
        test, predictor = world
        eager = evaluate_predictive(test, predictor, threshold=0.2)
        lazy = evaluate_predictive(test, predictor, threshold=0.9)
        assert eager.unexpected_failures <= lazy.unexpected_failures
        assert eager.mean_service_days <= lazy.mean_service_days

    def test_validation(self, world):
        test, predictor = world
        with pytest.raises(ConfigError):
            evaluate_fixed_age(test, 0)
        with pytest.raises(ConfigError):
            evaluate_predictive(test, predictor, threshold=0.0)
