"""Integration: incremental adoption — mixed baseline + Salamander fleets.

The paper argues Salamander "integrates seamlessly into a distributed
storage system": operators should be able to introduce Salamander drives
alongside existing monolithic SSDs without changing the diFS. This test
runs a half-and-half cluster through wear-out and checks that the two
failure granularities coexist: baseline devices fail wholesale (big
recovery events), Salamander devices shed minidisks (small ones), and the
namespace survives as long as placement keeps copies across device types.
"""

import numpy as np
import pytest

import repro.errors as E
from repro.difs.cluster import Cluster, ClusterConfig
from repro.difs.volume import MinidiskVolume, MonolithicVolume
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.salamander.device import SalamanderConfig, SalamanderSSD
from repro.ssd.device import BaselineSSD, SSDConfig
from repro.ssd.ftl import FTLConfig


@pytest.fixture(scope="module")
def worn_mixed_cluster():
    geometry = FlashGeometry(blocks=32, fpages_per_block=8)
    policy = TirednessPolicy(geometry=geometry)
    model = calibrate_power_law(policy, pec_limit_l0=14)
    ftl = FTLConfig(overprovision=0.25, buffer_opages=8)
    cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4), seed=7)
    for n in range(2):
        cluster.add_node(f"mono{n}")
        chip = FlashChip(geometry, rber_model=model, policy=policy,
                         seed=10 + n, variation_sigma=0.3)
        cluster.add_device(f"mono{n}", BaselineSSD(chip, SSDConfig(ftl=ftl)))
    for n in range(2):
        cluster.add_node(f"sala{n}")
        chip = FlashChip(geometry, rber_model=model, policy=policy,
                         seed=20 + n, variation_sigma=0.3)
        cluster.add_device(f"sala{n}", SalamanderSSD(chip, SalamanderConfig(
            msize_lbas=32, mode="regen", headroom_fraction=0.25,
            grace_decommissions=2, ftl=ftl)))
    monolithic = [device for node in ("mono0", "mono1")
                  for device in cluster.nodes[node].devices]
    chunks = 30
    for i in range(chunks):
        cluster.create_chunk(f"c{i}", f"data-{i}".encode())
    rng = np.random.default_rng(1)
    generation = {i: 0 for i in range(chunks)}
    attempted = {i: 0 for i in range(chunks)}
    for round_index in range(25_000):
        # Run until a whole baseline device has died (with minidisk
        # failures accumulating along the way), so both granularities show.
        if any(not device.is_alive for device in monolithic):
            break
        cluster.time = float(round_index)
        i = int(rng.integers(0, chunks))
        try:
            cluster.delete_chunk(f"c{i}")
            attempted[i] = round_index
            cluster.create_chunk(f"c{i}", f"r{round_index}-{i}".encode())
            generation[i] = round_index
        except E.ReproError:
            pass
        cluster.poll_failures()
        cluster.run_recovery()
    return cluster, generation, attempted, chunks


def _readable(cluster, chunk_id: str) -> bool:
    try:
        cluster.read_chunk(chunk_id)
        return True
    except E.ReproError:
        return False


class TestMixedCluster:
    def test_both_failure_granularities_observed(self, worn_mixed_cluster):
        cluster, _, _, _ = worn_mixed_cluster
        failed_ids = cluster.recovery._failed_volumes
        mono_failures = [v for v in failed_ids
                         if isinstance(cluster.volumes.get(v),
                                       MonolithicVolume)]
        mini_failures = [v for v in failed_ids
                         if isinstance(cluster.volumes.get(v),
                                       MinidiskVolume)]
        assert mini_failures, "Salamander minidisks should have failed"
        # Baseline devices brick within this wear budget too.
        assert mono_failures, "a baseline device should have failed"

    def test_monolithic_failures_move_more_per_event(self,
                                                     worn_mixed_cluster):
        cluster, _, _, _ = worn_mixed_cluster
        mono_events, mini_events = [], []
        for event in cluster.recovery.stats.events:
            volume = cluster.volumes.get(event.volume_id)
            if isinstance(volume, MonolithicVolume):
                mono_events.append(event.bytes_moved)
            elif isinstance(volume, MinidiskVolume):
                mini_events.append(event.bytes_moved)
        if mono_events and mini_events:
            assert max(mono_events) >= max(mini_events)

    def test_no_acknowledged_data_lost(self, worn_mixed_cluster):
        cluster, generation, attempted, chunks = worn_mixed_cluster
        assert cluster.recovery.stats.chunks_lost == 0
        for i in range(chunks):
            # A failed create may still be durable (standard semantics):
            # accept the acknowledged generation or the last attempt.
            acceptable = {
                f"r{generation[i]}-{i}".encode() if generation[i]
                else f"data-{i}".encode(),
                f"r{attempted[i]}-{i}".encode() if attempted[i]
                else f"data-{i}".encode(),
            }
            assert cluster.read_chunk(f"c{i}").rstrip(b"\0") in acceptable

    def test_cluster_still_serves_requests(self, worn_mixed_cluster):
        cluster, _, _, chunks = worn_mixed_cluster
        # Fully degraded clusters may no longer have two independent nodes
        # with space; writes may be refused, but reads must keep working.
        try:
            cluster.create_chunk("fresh", b"post-wear write")
        except E.ReproError:
            pass
        else:
            assert cluster.read_chunk("fresh").rstrip(b"\0") == \
                b"post-wear write"
        readable = sum(
            1 for i in range(chunks)
            if _readable(cluster, f"c{i}"))
        assert readable == chunks
