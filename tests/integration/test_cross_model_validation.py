"""Cross-validation: the functional simulator and the fleet model agree.

Two independent implementations answer the same question — how much longer
do ShrinkS/RegenS devices live than the baseline? The functional simulator
runs real FTL/GC/ECC machinery at MiB scale; the fleet model runs the
analytic wear process at population scale. Their *relative* answers must
agree: same ordering, same rough magnitudes. A divergence means one of the
two models drifted from the shared physics.
"""

import pytest

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.salamander.device import SalamanderConfig, SalamanderSSD
from repro.sim.fleet import FleetConfig, simulate_fleet
from repro.sim.lifetime import run_write_lifetime
from repro.ssd.device import BaselineSSD, SSDConfig
from repro.ssd.ftl import FTLConfig


@pytest.fixture(scope="module")
def functional_gains():
    geometry = FlashGeometry(blocks=32, fpages_per_block=8)
    policy = TirednessPolicy(geometry=geometry)
    model = calibrate_power_law(policy, pec_limit_l0=30)
    ftl = FTLConfig(overprovision=0.25, buffer_opages=8)

    def chip(seed):
        return FlashChip(geometry, rber_model=model, policy=policy,
                         seed=seed, variation_sigma=0.35)

    gains = {}
    for seed in (1, 2):
        base = run_write_lifetime(
            BaselineSSD(chip(seed), SSDConfig(ftl=ftl)),
            utilization=0.6, capacity_floor_fraction=0.3, seed=0)
        for mode in ("shrink", "regen"):
            device = SalamanderSSD(chip(seed), SalamanderConfig(
                msize_lbas=32, mode=mode, headroom_fraction=0.25, ftl=ftl))
            result = run_write_lifetime(device, utilization=0.6,
                                        capacity_floor_fraction=0.3, seed=0)
            gains.setdefault(mode, []).append(
                result.host_writes / base.host_writes)
    return {mode: sum(vals) / len(vals) for mode, vals in gains.items()}


@pytest.fixture(scope="module")
def fleet_gains():
    config = FleetConfig(
        devices=24, geometry=FlashGeometry(blocks=64, fpages_per_block=32),
        pec_limit_l0=300, variation_sigma=0.35, afr=0.0,
        min_capacity_fraction=0.3, horizon_days=3000, step_days=10)
    base = simulate_fleet(config, "baseline", seed=3).mean_lifetime_days()
    return {mode: simulate_fleet(config, mode, seed=3).mean_lifetime_days()
            / base for mode in ("shrink", "regen")}


class TestCrossModelAgreement:
    def test_both_models_rank_the_modes_identically(self, functional_gains,
                                                    fleet_gains):
        assert 1.0 < functional_gains["shrink"] < functional_gains["regen"]
        assert 1.0 < fleet_gains["shrink"] < fleet_gains["regen"]

    def test_magnitudes_agree_loosely(self, functional_gains, fleet_gains):
        # Different abstractions (real GC/WAF vs analytic wear, different
        # stop conditions) — agreement within ~40 % relative is the
        # meaningful bar, and catches order-of-magnitude drift.
        for mode in ("shrink", "regen"):
            ratio = functional_gains[mode] / fleet_gains[mode]
            assert 0.6 < ratio < 1.67, (mode, functional_gains, fleet_gains)

    def test_regen_advantage_over_shrink_agrees(self, functional_gains,
                                                fleet_gains):
        functional_edge = functional_gains["regen"] / functional_gains["shrink"]
        fleet_edge = fleet_gains["regen"] / fleet_gains["shrink"]
        assert 0.7 < functional_edge / fleet_edge < 1.4
