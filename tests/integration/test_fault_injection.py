"""Fault-injection campaign: adversarial media events against the stack.

Each scenario injects a specific fault class (latent decay under data,
device death mid-recovery, simultaneous multi-domain loss at the tolerance
boundary) and asserts the stack's contract: detect, repair, never lie.
"""

import numpy as np
import pytest

import repro.errors as E
from repro.difs.cluster import Cluster, ClusterConfig
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.salamander.device import SalamanderConfig, SalamanderSSD
from repro.ssd.ftl import FTLConfig
from tests.ssd.test_scrub import _age_written_blocks


def build_cluster(nodes: int = 4, replication: int = 2, seed: int = 7,
                  pec_limit: int = 200):
    geometry = FlashGeometry(blocks=32, fpages_per_block=8)
    policy = TirednessPolicy(geometry=geometry)
    model = calibrate_power_law(policy, pec_limit_l0=pec_limit)
    cluster = Cluster(ClusterConfig(replication=replication, chunk_lbas=4),
                      seed=seed)
    devices = []
    for n in range(nodes):
        cluster.add_node(f"n{n}")
        chip = FlashChip(geometry, rber_model=model, policy=policy,
                         seed=seed + n, variation_sigma=0.3)
        device = SalamanderSSD(chip, SalamanderConfig(
            msize_lbas=32, mode="regen", headroom_fraction=0.25,
            ftl=FTLConfig(overprovision=0.25, buffer_opages=8)))
        cluster.add_device(f"n{n}", device)
        devices.append(device)
    return cluster, devices, policy, model


class TestLatentDecay:
    def test_decay_under_one_replica_is_survivable(self):
        cluster, devices, policy, model = build_cluster()
        for i in range(12):
            cluster.create_chunk(f"c{i}", f"data-{i}".encode())
        for device in devices:
            device.flush()
        limit = int(policy.pec_limits(model)[0])
        _age_written_blocks(devices[0].chip, 5 * limit)
        # Client reads route around the decayed copies and queue repairs.
        for i in range(12):
            assert cluster.read_chunk(f"c{i}").rstrip(b"\0") == \
                f"data-{i}".encode()
        cluster.run_recovery()
        for i in range(12):
            assert cluster.namespace[f"c{i}"].replica_count == 2

    def test_decay_under_all_replicas_is_reported_not_hidden(self):
        cluster, devices, policy, model = build_cluster(replication=2)
        cluster.create_chunk("doomed", b"gone")
        for device in devices:
            device.flush()
        limit = int(policy.pec_limits(model)[0])
        for device in devices:
            _age_written_blocks(device.chip, 5 * limit)
        with pytest.raises(E.ChunkLostError):
            for _ in range(20):  # error injection is probabilistic
                cluster.read_chunk("doomed")
        cluster.run_recovery()
        assert cluster.recovery.stats.chunks_lost >= 1


class TestDeathDuringRecovery:
    def test_second_failure_while_recovering_first(self):
        cluster, devices, _, _ = build_cluster(nodes=5, replication=3)
        for i in range(10):
            cluster.create_chunk(f"c{i}", f"data-{i}".encode())
        chunk = cluster.namespace["c0"]
        first, second = chunk.replicas[0], chunk.replicas[1]
        # First domain dies; mid-recovery (before run), a second one dies.
        cluster.recovery.volume_failed(first.volume_id)
        cluster.recovery.volume_failed(second.volume_id)
        cluster.run_recovery()
        assert cluster.recovery.stats.chunks_lost == 0
        for i in range(10):
            assert cluster.read_chunk(f"c{i}").rstrip(b"\0") == \
                f"data-{i}".encode()
            assert cluster.namespace[f"c{i}"].replica_count == 3

    def test_replacement_target_dies_too(self):
        cluster, devices, _, _ = build_cluster(nodes=5, replication=2)
        for i in range(10):
            cluster.create_chunk(f"c{i}", f"data-{i}".encode())
        rng = np.random.default_rng(0)
        # Kill volumes one at a time with recovery between — a rolling
        # failure wave; every wave must re-establish full replication.
        for wave in range(6):
            live = [v for v in cluster.volumes.values() if v.is_alive]
            if len(live) <= 6:
                break
            victim = live[int(rng.integers(0, len(live)))]
            cluster.recovery.volume_failed(victim.volume_id)
            cluster.run_recovery()
            assert cluster.recovery.stats.chunks_lost == 0
        for i in range(10):
            assert cluster.read_chunk(f"c{i}").rstrip(b"\0") == \
                f"data-{i}".encode()


class TestToleranceBoundary:
    def test_exactly_tolerable_simultaneous_failures(self):
        cluster, devices, _, _ = build_cluster(nodes=5, replication=3)
        cluster.create_chunk("edge", b"still-here")
        chunk = cluster.namespace["edge"]
        # Kill replication - 1 = 2 domains simultaneously: survivable.
        for replica in list(chunk.replicas)[:2]:
            cluster.recovery.volume_failed(replica.volume_id)
        cluster.run_recovery()
        assert cluster.read_chunk("edge").rstrip(b"\0") == b"still-here"
        assert chunk.replica_count == 3

    def test_one_beyond_tolerance_loses_exactly_that_chunk(self):
        cluster, devices, _, _ = build_cluster(nodes=5, replication=2)
        cluster.create_chunk("edge", b"gone")
        cluster.create_chunk("bystander", b"safe")
        chunk = cluster.namespace["edge"]
        for replica in list(chunk.replicas):
            cluster.recovery.volume_failed(replica.volume_id)
        cluster.run_recovery()
        assert cluster.recovery.stats.chunks_lost == 1
        with pytest.raises(E.ChunkLostError):
            cluster.read_chunk("edge")
        assert cluster.read_chunk("bystander").rstrip(b"\0") == b"safe"
