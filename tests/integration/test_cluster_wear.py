"""Integration: a diFS over Salamander devices survives wear-out gracefully.

The system-level promise of the paper: as minidisks wear out and are
decommissioned, the distributed layer re-replicates and *no acknowledged
data is ever lost* while enough independent capacity remains.
"""

import numpy as np
import pytest

import repro.errors as E
from repro.difs.cluster import Cluster, ClusterConfig
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.salamander.device import SalamanderConfig, SalamanderSSD
from repro.ssd.ftl import FTLConfig


def build_cluster(mode: str, nodes: int = 4, pec_limit: int = 12,
                  seed: int = 7):
    geometry = FlashGeometry(blocks=32, fpages_per_block=8)
    policy = TirednessPolicy(geometry=geometry)
    model = calibrate_power_law(policy, pec_limit_l0=pec_limit)
    ftl = FTLConfig(overprovision=0.25, buffer_opages=8)
    cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4), seed=seed)
    devices = []
    for n in range(nodes):
        cluster.add_node(f"n{n}")
        chip = FlashChip(geometry, rber_model=model, policy=policy,
                         seed=seed + n, variation_sigma=0.3)
        device = SalamanderSSD(chip, SalamanderConfig(
            msize_lbas=32, mode=mode, headroom_fraction=0.25, ftl=ftl))
        cluster.add_device(f"n{n}", device)
        devices.append(device)
    return cluster, devices


def churn(cluster, chunks: int, rounds: int, seed: int = 1):
    """Create a working set, then rewrite chunks continuously."""
    rng = np.random.default_rng(seed)
    for i in range(chunks):
        cluster.create_chunk(f"c{i}", f"gen0-{i}".encode())
    generation = {i: 0 for i in range(chunks)}
    failures = 0
    for round_index in range(rounds):
        cluster.time = float(round_index)
        i = int(rng.integers(0, chunks))
        try:
            cluster.delete_chunk(f"c{i}")
            cluster.create_chunk(
                f"c{i}", f"gen{round_index + 1}-{i}".encode())
            generation[i] = round_index + 1
        except E.ReproError:
            failures += 1
        cluster.poll_failures()
        cluster.run_recovery()
    return generation, failures


class TestClusterUnderWear:
    @pytest.fixture(scope="class")
    def worn_shrink_cluster(self):
        cluster, devices = build_cluster("shrink")
        generation, failures = churn(cluster, chunks=40, rounds=6000)
        return cluster, devices, generation, failures

    def test_minidisks_were_decommissioned(self, worn_shrink_cluster):
        _, devices, _, _ = worn_shrink_cluster
        total = sum(d.stats.decommissioned_minidisks for d in devices)
        assert total > 0

    def test_recovery_ran_and_moved_bytes(self, worn_shrink_cluster):
        cluster, _, _, _ = worn_shrink_cluster
        stats = cluster.recovery.stats
        assert stats.volume_failures > 0
        assert stats.bytes_moved > 0

    def test_no_acknowledged_data_lost(self, worn_shrink_cluster):
        cluster, _, generation, _ = worn_shrink_cluster
        lost = 0
        for i, gen in generation.items():
            try:
                data = cluster.read_chunk(f"c{i}").rstrip(b"\0")
            except E.ChunkLostError:
                lost += 1
                continue
            assert data == f"gen{gen}-{i}".encode()
        # With 2-way replication and gradual minidisk failures, the diFS
        # keeps everything recoverable.
        assert lost == 0
        assert cluster.recovery.stats.chunks_lost == 0

    def test_capacity_declined_but_cluster_lives(self, worn_shrink_cluster):
        cluster, devices, _, _ = worn_shrink_cluster
        assert cluster.live_volume_count() > 0
        assert any(d.advertised_lbas
                   < len(d.minidisks) * d.msize_lbas for d in devices)


class TestRegenClusterGrowsVolumes:
    def test_regenerated_volumes_join_and_serve(self):
        cluster, devices = build_cluster("regen", pec_limit=10)
        churn(cluster, chunks=30, rounds=5000, seed=2)
        regen_total = sum(d.stats.regenerated_minidisks for d in devices)
        assert regen_total > 0
        # At least one regenerated volume exists and can hold replicas.
        regen_volumes = [v for v in cluster.volumes.values()
                         if getattr(v, "level", 0) >= 1]
        assert regen_volumes
        assert any(v.used_slots > 0 or v.is_alive for v in regen_volumes)


class TestBaselineComparison:
    def test_baseline_cluster_loses_whole_devices(self):
        from repro.ssd.device import BaselineSSD, SSDConfig
        geometry = FlashGeometry(blocks=32, fpages_per_block=8)
        policy = TirednessPolicy(geometry=geometry)
        model = calibrate_power_law(policy, pec_limit_l0=10)
        ftl = FTLConfig(overprovision=0.25, buffer_opages=8)
        cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4), seed=3)
        for n in range(4):
            cluster.add_node(f"n{n}")
            chip = FlashChip(geometry, rber_model=model, policy=policy,
                             seed=3 + n, variation_sigma=0.3)
            cluster.add_device(f"n{n}", BaselineSSD(chip, SSDConfig(ftl=ftl)))
        rng = np.random.default_rng(0)
        for i in range(20):
            cluster.create_chunk(f"c{i}", f"data-{i}".encode())
        for round_index in range(6000):
            i = int(rng.integers(0, 20))
            try:
                cluster.delete_chunk(f"c{i}")
                cluster.create_chunk(f"c{i}", f"r{round_index}-{i}".encode())
            except E.ReproError:
                pass
            cluster.poll_failures()
            cluster.run_recovery()
        # Whole-device failure domains: every failure is a full volume, and
        # the fleet shrank by whole devices.
        assert cluster.recovery.stats.volume_failures > 0
        assert cluster.live_volume_count() < 4
