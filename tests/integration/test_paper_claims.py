"""A ledger of the paper's quantitative claims, checked end to end.

One test per sentence-level claim from the paper, each exercising the real
code path that reproduces it (not re-deriving the algebra inline). These
are the assertions EXPERIMENTS.md reports against.
"""

import numpy as np
import pytest

from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy
from repro.models.carbon import (
    RU_REGENS,
    RU_SHRINKS,
    CarbonParams,
    carbon_savings,
    fig4_configurations,
)
from repro.models.lifetime import tiredness_tradeoff
from repro.models.performance import latency_factor, throughput_factor
from repro.models.recovery import total_failed_capacity_fraction
from repro.models.tco import TCOParams, tco_savings
from repro.models.tco import RU_REGENS as TCO_RU_REGENS
from repro.models.tco import RU_SHRINKS as TCO_RU_SHRINKS
from repro.sim.fleet import FleetConfig, simulate_fleet


class TestSection1Claims:
    def test_typical_code_rate_88_percent(self):
        """§1: "A typical flash page spare code rate is 88%"."""
        assert FlashGeometry().baseline_code_rate == pytest.approx(0.888, abs=0.002)

    def test_brick_threshold_2_5_percent(self):
        """§1/§2: firmware stops at ~2.5 % worn-out blocks."""
        from repro.ssd.badblocks import DEFAULT_BRICK_THRESHOLD
        assert DEFAULT_BRICK_THRESHOLD == 0.025


class TestSection4Claims:
    def test_l1_lifetime_benefit_50_percent(self):
        """§4/Fig. 2: "a 50% potential lifetime benefit for L1"."""
        points = {p.level: p for p in tiredness_tradeoff()}
        assert points[1].pec_gain == pytest.approx(0.5, abs=1e-6)

    def test_regen_should_stop_below_l2(self):
        """§4: marginal utility of L >= 2 is visibly smaller."""
        points = {p.level: p for p in tiredness_tradeoff()}
        assert points[2].marginal_gain < 0.75 * points[1].marginal_gain

    def test_salamander_extends_lifetime_up_to_1_5x(self):
        """§1/§4: "Salamander can extend flash lifetime by up to 1.5x"."""
        config = FleetConfig(
            devices=24, geometry=FlashGeometry(blocks=64, fpages_per_block=32),
            pec_limit_l0=300, afr=0.0, horizon_days=1500, step_days=10)
        base = simulate_fleet(config, "baseline", seed=1).mean_lifetime_days()
        regen = simulate_fleet(config, "regen", seed=1).mean_lifetime_days()
        assert regen / base >= 1.5

    def test_co2e_savings_3_to_8_percent(self):
        """§4.1: "Salamander achieves 3-8% CO2e savings in current designs"."""
        shrink = carbon_savings(CarbonParams(upgrade_rate=RU_SHRINKS))
        regen = carbon_savings(CarbonParams(upgrade_rate=RU_REGENS))
        assert 0.02 <= shrink <= 0.04
        assert 0.07 <= regen <= 0.09

    def test_co2e_savings_11_to_20_percent_renewable(self):
        """§4.1: with renewables "these gains increase to 11-20%"."""
        bars = fig4_configurations()
        assert 0.09 <= bars["shrinks/renewable"] <= 0.12
        assert 0.18 <= bars["regens/renewable"] <= 0.22

    def test_performance_penalty_4_over_4_minus_l(self):
        """§4.2: throughput degrades by 4/(4-L), 25 % at L1."""
        assert 1 - throughput_factor(1) == pytest.approx(0.25)
        assert latency_factor(2) == pytest.approx(2.0)

    def test_recovery_traffic_comparable_without_regen(self):
        """§4.3: ShrinkS recovery volume comparable to baseline."""
        assert total_failed_capacity_fraction(regen_max_level=0) == 1.0

    def test_regen_increases_total_data_that_fails(self):
        """§4.3: regenerated mDisks "increase the total data that will
        fail"."""
        assert (total_failed_capacity_fraction(regen_max_level=1)
                > total_failed_capacity_fraction(regen_max_level=0))

    def test_cost_savings_13_and_25_percent(self):
        """§4.4: "13% and 25% cost savings for ShrinkS and RegenS"."""
        assert tco_savings(TCOParams(upgrade_rate=TCO_RU_SHRINKS)) == \
            pytest.approx(0.13, abs=0.01)
        assert tco_savings(TCOParams(upgrade_rate=TCO_RU_REGENS)) == \
            pytest.approx(0.25, abs=0.015)

    def test_cost_savings_6_to_14_percent_at_half_opex(self):
        """§4.4: at 50 % operational costs, savings are 6-14 %."""
        shrink = tco_savings(TCOParams(f_opex=0.5,
                                       upgrade_rate=TCO_RU_SHRINKS))
        regen = tco_savings(TCOParams(f_opex=0.5,
                                      upgrade_rate=TCO_RU_REGENS))
        assert 0.05 <= shrink <= regen <= 0.16


class TestSection2Premise:
    def test_devices_retired_with_lifetime_left(self):
        """§2: when an SSD bricks, "there is considerable lifetime
        potential left on many of the flash blocks"."""
        from repro.flash.chip import FlashChip
        from repro.flash.tiredness import calibrate_power_law
        from repro.ssd.device import BaselineSSD, SSDConfig
        from repro.ssd.ftl import FTLConfig
        import repro.errors as E

        geometry = FlashGeometry(blocks=32, fpages_per_block=8)
        policy = TirednessPolicy(geometry=geometry)
        model = calibrate_power_law(policy, pec_limit_l0=30)
        chip = FlashChip(geometry, rber_model=model, policy=policy,
                         seed=1, variation_sigma=0.35)
        device = BaselineSSD(chip, SSDConfig(
            ftl=FTLConfig(overprovision=0.25, buffer_opages=8)))
        rng = np.random.default_rng(0)
        with pytest.raises(E.ReproError):
            while True:
                device.write(int(rng.integers(0, int(device.n_lbas * 0.7))),
                             b"x")
        # At brick time the median page has used well under its full budget.
        pec_limits = policy.pec_limit(
            0, model, chip.variation_array())
        used = chip.pec_array() / np.maximum(pec_limits, 1e-9)
        assert np.median(used) < 0.9
