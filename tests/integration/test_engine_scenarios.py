"""Integration: discrete-event-driven cluster scenarios.

Uses the DES engine to orchestrate a realistic operations timeline —
periodic client traffic, failure-detection sweeps, injected node outages —
against a Salamander cluster, exercising the event machinery end to end.
"""

import numpy as np
import pytest

import repro.errors as E
from repro.difs.cluster import Cluster, ClusterConfig
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.salamander.device import SalamanderConfig, SalamanderSSD
from repro.sim.engine import Engine
from repro.ssd.ftl import FTLConfig
from repro.units import HOUR


def build_cluster(nodes: int = 4, pec_limit: int = 14, seed: int = 7):
    geometry = FlashGeometry(blocks=32, fpages_per_block=8)
    policy = TirednessPolicy(geometry=geometry)
    model = calibrate_power_law(policy, pec_limit_l0=pec_limit)
    ftl = FTLConfig(overprovision=0.25, buffer_opages=8)
    cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4), seed=seed)
    for n in range(nodes):
        cluster.add_node(f"n{n}")
        chip = FlashChip(geometry, rber_model=model, policy=policy,
                         seed=seed + n, variation_sigma=0.3)
        cluster.add_device(f"n{n}", SalamanderSSD(chip, SalamanderConfig(
            msize_lbas=32, mode="regen", headroom_fraction=0.25,
            grace_decommissions=2, ftl=ftl)))
    return cluster


class TestEngineDrivenCluster:
    def test_timeline_with_traffic_and_maintenance(self):
        engine = Engine()
        cluster = build_cluster()
        rng = np.random.default_rng(3)
        chunks = 30
        for i in range(chunks):
            cluster.create_chunk(f"c{i}", f"data-{i}".encode())
        generation = {i: 0 for i in range(chunks)}
        attempted = {i: 0 for i in range(chunks)}
        write_errors = []

        def client_tick():
            cluster.time = engine.clock.now
            i = int(rng.integers(0, chunks))
            stamp = int(engine.clock.now)
            try:
                cluster.delete_chunk(f"c{i}")
                attempted[i] = stamp
                cluster.create_chunk(f"c{i}", f"t{stamp}-{i}".encode())
                generation[i] = stamp
            except E.ReproError as error:
                write_errors.append(error)

        def maintenance_tick():
            cluster.time = engine.clock.now
            cluster.poll_failures()
            cluster.run_recovery()

        # Recovery sweeps run between every couple of client operations —
        # production systems react to failure notifications promptly, and
        # the grace budget only protects a few in-flight decommissions.
        horizon = 2000 * HOUR
        engine.schedule_every(0.5 * HOUR, client_tick, until=horizon)
        engine.schedule_every(1 * HOUR, maintenance_tick, until=horizon)
        engine.run_until(horizon)
        maintenance_tick()

        # Traffic actually ran and wear events actually happened.
        stats = cluster.recovery.stats
        assert engine.clock.now == horizon
        assert stats.volume_failures > 0
        # Every chunk reads back as its acknowledged generation, or as an
        # unacknowledged-but-durable later attempt (a failed create may
        # still have persisted data — standard storage semantics).
        for i in range(chunks):
            acceptable = {
                f"t{generation[i]}-{i}".encode() if generation[i]
                else f"data-{i}".encode(),
                f"t{attempted[i]}-{i}".encode() if attempted[i]
                else f"data-{i}".encode(),
            }
            assert cluster.read_chunk(f"c{i}").rstrip(b"\0") in acceptable
        assert stats.chunks_lost == 0

    def test_injected_node_outage_recovers_elsewhere(self):
        engine = Engine()
        cluster = build_cluster(pec_limit=200)  # no wear in this scenario
        for i in range(12):
            cluster.create_chunk(f"c{i}", f"data-{i}".encode())

        def kill_node(node_id: str):
            cluster.time = engine.clock.now
            for volume in cluster.nodes[node_id].volumes.values():
                cluster.recovery.volume_failed(volume.volume_id)

        def maintenance_tick():
            cluster.time = engine.clock.now
            cluster.run_recovery()

        engine.schedule_at(10 * HOUR, lambda: kill_node("n1"))
        engine.schedule_every(1 * HOUR, maintenance_tick, until=24 * HOUR)
        engine.run_until(24 * HOUR)

        # All data recovered onto the surviving three nodes.
        assert cluster.recovery.stats.chunks_lost == 0
        for i in range(12):
            assert cluster.read_chunk(f"c{i}").rstrip(b"\0") == \
                f"data-{i}".encode()
        for chunk in cluster.namespace.values():
            nodes = {cluster.volumes[r.volume_id].node_id
                     for r in chunk.replicas}
            assert "n1" not in nodes
        # Recovery events carry the simulated timestamps.
        times = [e.time for e in cluster.recovery.stats.events]
        assert times and all(t >= 10 * HOUR for t in times)
