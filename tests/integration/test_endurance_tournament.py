"""Integration: the four-device lifetime tournament on identical hardware.

Each contender runs on a chip with the same geometry, wear model and
variation draw (same seed), driven by the same workload discipline — so
lifetime differences are pure policy. This is the functional-simulator
counterpart of the paper's §4 lifetime analysis.
"""

import pytest

from repro.sim.lifetime import run_write_lifetime


@pytest.fixture(scope="module")
def tournament(request):
    # Build fixtures manually (module-scoped fixture can't use the
    # function-scoped factories), mirroring tests/conftest.py parameters.
    from repro.flash.chip import FlashChip
    from repro.flash.geometry import FlashGeometry
    from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
    from repro.salamander.device import SalamanderConfig, SalamanderSSD
    from repro.ssd.cvss import CVSSConfig, CVSSDevice
    from repro.ssd.device import BaselineSSD, SSDConfig
    from repro.ssd.ftl import FTLConfig

    geometry = FlashGeometry(blocks=32, fpages_per_block=8)
    policy = TirednessPolicy(geometry=geometry)
    model = calibrate_power_law(policy, pec_limit_l0=30)
    ftl = FTLConfig(overprovision=0.25, buffer_opages=8)

    def chip():
        return FlashChip(geometry, rber_model=model, policy=policy,
                         seed=1, variation_sigma=0.3)

    salamander = dict(msize_lbas=32, headroom_fraction=0.25, ftl=ftl)
    devices = {
        "baseline": BaselineSSD(chip(), SSDConfig(ftl=ftl)),
        "cvss": CVSSDevice(chip(), CVSSConfig(ftl=ftl)),
        "shrink": SalamanderSSD(chip(), SalamanderConfig(
            mode="shrink", **salamander)),
        "regen": SalamanderSSD(chip(), SalamanderConfig(
            mode="regen", **salamander)),
    }
    return {name: run_write_lifetime(device, utilization=0.6,
                                     capacity_floor_fraction=0.3, seed=0)
            for name, device in devices.items()}


class TestTournament:
    def test_paper_ordering(self, tournament):
        writes = {name: r.host_writes for name, r in tournament.items()}
        assert writes["baseline"] < writes["cvss"]
        assert writes["cvss"] <= writes["shrink"]
        assert writes["shrink"] < writes["regen"]

    def test_cvss_gain_near_cited_20_percent(self, tournament):
        gain = (tournament["cvss"].host_writes
                / tournament["baseline"].host_writes - 1)
        assert 0.0 < gain < 0.5

    def test_regen_gain_substantial(self, tournament):
        # The paper claims "up to 1.5x" total lifetime for Salamander.
        ratio = (tournament["regen"].host_writes
                 / tournament["baseline"].host_writes)
        assert ratio > 1.3

    def test_wear_extracted_ordering(self, tournament):
        # More lifetime means more PEC actually pulled out of the flash.
        pec = {name: r.mean_pec_at_death for name, r in tournament.items()}
        assert pec["baseline"] < pec["shrink"] < pec["regen"]

    def test_baseline_dies_at_full_capacity(self, tournament):
        # The baseline never shrinks — it bricks with capacity intact.
        assert tournament["baseline"].capacity_fraction == 1.0

    def test_salamander_devices_shrank(self, tournament):
        assert tournament["shrink"].capacity_fraction < 1.0
        assert tournament["regen"].capacity_fraction < 1.0

    def test_write_amplification_sane_everywhere(self, tournament):
        for name, result in tournament.items():
            waf = result.stats["write_amplification"]
            assert 1.0 <= waf < 6.0, (name, waf)
