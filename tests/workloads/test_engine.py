"""Traffic-engine contracts: determinism, admission, artifacts, SLOs.

Three families of guarantees:

* **Determinism** — the merged artifact is byte-identical for any
  ``--jobs`` value and across repeated runs. A mismatch prints a
  one-line reproducer so the failure can be replayed from a shell.
* **Admission properties** — under deliberate saturation the backlog
  and inflight stay bounded, shed/defer accounting sums to the offered
  load exactly, and closed-loop tenants are never shed.
* **Artifact/SLO surface** — schema validation catches conservation
  violations, and attached SLO objectives gate the document.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.obs.slo import SLOObjective
from repro.workloads.engine import (
    EngineConfig,
    EngineConfig as _EC,  # noqa: F401 - reexport check
    is_closed_loop,
    load_engine_artifact,
    run_cell,
    run_traffic,
    tenant_class,
    validate_engine_document,
    write_engine_artifact,
)

SEED = 1234


def _dumps(document: dict) -> str:
    return json.dumps(document, indent=2, sort_keys=True, allow_nan=False)


def _reproducer(config: EngineConfig, seed: int, jobs: int) -> str:
    return (f"PYTHONPATH=src python -m repro traffic "
            f"--tenants {config.tenants} --duration {config.duration_us:g} "
            f"--arrival {config.arrival} --admission {config.admission} "
            f"--seed {seed} --jobs {jobs} --out /tmp/traffic_repro.json")


class TestDeterminism:
    CONFIG = EngineConfig(tenants=24, duration_us=6000.0, cells=2,
                          closed_loop_fraction=0.25, think_us=50.0)

    def test_byte_identity_across_jobs(self):
        reference = _dumps(run_traffic(self.CONFIG, seed=SEED, jobs=1))
        for jobs in (2, 8):
            candidate = _dumps(run_traffic(self.CONFIG, seed=SEED,
                                           jobs=jobs))
            assert candidate == reference, (
                f"jobs={jobs} artifact diverged from jobs=1; reproduce: "
                + _reproducer(self.CONFIG, SEED, jobs))

    def test_byte_identity_across_repeats(self):
        first = _dumps(run_traffic(self.CONFIG, seed=SEED, jobs=1))
        second = _dumps(run_traffic(self.CONFIG, seed=SEED, jobs=1))
        assert first == second, (
            "repeated run diverged; reproduce: "
            + _reproducer(self.CONFIG, SEED, 1))

    def test_seed_changes_artifact(self):
        a = _dumps(run_traffic(self.CONFIG, seed=SEED, jobs=1))
        b = _dumps(run_traffic(self.CONFIG, seed=SEED + 1, jobs=1))
        assert a != b

    def test_artifact_write_is_byte_stable(self, tmp_path):
        document = run_traffic(self.CONFIG, seed=SEED, jobs=1)
        p1 = write_engine_artifact(document, tmp_path / "a.json")
        p2 = write_engine_artifact(
            load_engine_artifact(p1), tmp_path / "b.json")
        assert p1.read_bytes() == p2.read_bytes()


class TestAdmissionProperties:
    #: Utilisation 3 = offered load triple the measured capacity.
    SATURATED = EngineConfig(tenants=12, duration_us=8000.0, cells=1,
                             utilisation=3.0, arrival="mmpp",
                             queue_depth=16)

    @pytest.mark.parametrize("admission", ["shed", "defer"])
    def test_accounting_sums_to_offered_exactly(self, admission):
        from dataclasses import replace
        config = replace(self.SATURATED, admission=admission)
        document = run_traffic(config, seed=SEED, jobs=1)
        totals = document["totals"]
        assert totals["offered"] > 0
        assert totals["offered"] == totals["admitted"] + totals["shed"]
        for row in document["tenants"]:
            assert row["offered"] == row["admitted"] + row["shed"]
            assert row["completed"] <= row["admitted"]
        if admission == "shed":
            assert totals["shed"] > 0  # saturation must actually shed

    @pytest.mark.parametrize("admission", ["shed", "defer"])
    def test_backlog_and_inflight_bounded_under_saturation(self, admission):
        from dataclasses import replace
        config = replace(self.SATURATED, admission=admission)
        document = run_traffic(config, seed=SEED, jobs=1)
        for cell in document["cells"]:
            # The watermark gate caps backlog at the watermark plus at
            # most one burst of already-admitted requests.
            burst_us = (config.bucket_burst * config.tenants
                        * cell["service_us"])
            assert cell["max_backlog_us"] <= (cell["watermark_us"]
                                              + burst_us)
            assert cell["max_inflight"] <= config.queue_depth

    def test_uncontrolled_saturation_grows_backlog(self):
        """Sanity check the property above is not vacuous: with
        admission off the same load blows past the watermark bound."""
        from dataclasses import replace
        config = replace(self.SATURATED, admission="none")
        document = run_traffic(config, seed=SEED, jobs=1)
        cell = document["cells"][0]
        assert cell["max_backlog_us"] > cell["watermark_us"]

    def test_closed_loop_tenants_never_shed(self):
        config = EngineConfig(tenants=10, duration_us=8000.0, cells=1,
                              utilisation=3.0, closed_loop_fraction=0.4,
                              think_us=20.0, admission="shed")
        document = run_traffic(config, seed=SEED, jobs=1)
        closed = [row for row in document["tenants"]
                  if row["loop"] == "closed"]
        assert closed
        for row in closed:
            assert row["shed"] == 0
            assert row["deferrals"] == 0
            assert row["completed"] > 0

    def test_defer_can_exceed_offered_but_shed_cannot(self):
        from dataclasses import replace
        config = replace(self.SATURATED, admission="defer")
        document = run_traffic(config, seed=SEED, jobs=1)
        totals = document["totals"]
        assert totals["shed"] <= totals["offered"]
        assert totals["deferrals"] >= 0


class TestTenantPartition:
    def test_class_mix_partitions_id_space(self):
        config = EngineConfig(tenants=100, mix=(0.25, 0.25, 0.25, 0.25))
        classes = [tenant_class(config, t) for t in range(100)]
        assert classes.count("sequential") == 25
        assert classes.count("uniform") == 25
        assert classes.count("zipfian") == 25
        assert classes.count("mixed") == 25

    def test_closed_loop_tail(self):
        config = EngineConfig(tenants=10, closed_loop_fraction=0.3)
        flags = [is_closed_loop(config, t) for t in range(10)]
        assert sum(flags) == 3
        assert flags[-3:] == [True, True, True]

    def test_trace_replay_class(self):
        trace_text = "repro-trace v1\nW 0\nR 1\nW 2\n"
        config = EngineConfig(tenants=4, trace_text=trace_text)
        assert tenant_class(config, 0) == "trace"


class TestValidation:
    def test_config_rejects_bad_values(self):
        for kwargs in ({"tenants": 0}, {"duration_us": 0.0},
                       {"arrival": "weird"}, {"utilisation": 0.0},
                       {"admission": "maybe"}, {"mix": (1.0,)},
                       {"read_span": 0}, {"level": 7}):
            with pytest.raises(ConfigError):
                EngineConfig(**kwargs)

    def test_validate_catches_conservation_violation(self):
        document = run_traffic(
            EngineConfig(tenants=4, duration_us=2000.0, cells=1),
            seed=SEED)
        validate_engine_document(document)
        broken = json.loads(_dumps(document))
        broken["tenants"][0]["offered"] += 1
        with pytest.raises(ConfigError):
            validate_engine_document(broken)

    def test_validate_catches_closed_loop_shed(self):
        document = run_traffic(
            EngineConfig(tenants=4, duration_us=2000.0, cells=1,
                         closed_loop_fraction=0.5, think_us=10.0),
            seed=SEED)
        broken = json.loads(_dumps(document))
        closed = [r for r in broken["tenants"] if r["loop"] == "closed"]
        closed[0]["shed"] += 1
        closed[0]["offered"] += 1
        broken["totals"]["shed"] += 1
        broken["totals"]["offered"] += 1
        with pytest.raises(ConfigError):
            validate_engine_document(broken)

    def test_load_missing_artifact(self, tmp_path):
        with pytest.raises(ConfigError):
            load_engine_artifact(tmp_path / "absent.json")


class TestSLOAttachment:
    def test_slo_section_present_and_gating(self):
        objectives = [SLOObjective(name="all-p99", kind="latency",
                                   percentile=99.0,
                                   threshold_us=10_000_000.0,
                                   window_us=1_000_000.0)]
        document = run_traffic(
            EngineConfig(tenants=6, duration_us=3000.0, cells=1),
            seed=SEED, objectives=objectives)
        assert document["slo"]["ok"] is True
        strict = [SLOObjective(name="impossible", kind="latency",
                               percentile=50.0, threshold_us=0.001,
                               window_us=1_000_000.0)]
        document = run_traffic(
            EngineConfig(tenants=6, duration_us=3000.0, cells=1),
            seed=SEED, objectives=strict)
        assert document["slo"]["ok"] is False

    def test_per_tenant_stream_filter(self):
        """Stream filters select single tenants (tenant id == stream)."""
        objectives = [SLOObjective(name="tenant-0", kind="latency",
                                   stream=0, percentile=99.0,
                                   threshold_us=10_000_000.0,
                                   window_us=1_000_000.0)]
        document = run_traffic(
            EngineConfig(tenants=4, duration_us=3000.0, cells=1),
            seed=SEED, objectives=objectives)
        cell_report = document["slo"]["cells"][0]
        row = cell_report["objectives"][0]
        assert row["name"] == "tenant-0"
        assert row["observed"] > 0


class TestWindowRecord:
    def test_window_excludes_prefill(self):
        config = EngineConfig(tenants=4, duration_us=3000.0, cells=1)
        record = run_cell(config, 0, seed=SEED)
        window = record["window"]
        # The queue counters include prefill writes + pilot probes;
        # the window only holds traffic-window completions.
        assert 0 < window["requests"] < record["queue"]["dispatched"]
        assert window["mean_latency_us"] >= 0.0
        assert window["p99_latency_us"] >= window["mean_latency_us"] or \
            window["requests"] < 2
