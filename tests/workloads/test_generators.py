"""Unit tests for workload generators."""

import collections

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads.generators import (
    MixedGenerator,
    Operation,
    OpType,
    SequentialGenerator,
    UniformGenerator,
    ZipfianGenerator,
    stamp_payload,
)


class TestStampPayload:
    def test_identifies_lba_and_sequence(self):
        assert stamp_payload(42, 7) == b"lba=42 seq=7"

    def test_distinct_for_distinct_writes(self):
        assert stamp_payload(1, 1) != stamp_payload(1, 2)
        assert stamp_payload(1, 1) != stamp_payload(2, 1)


class TestUniform:
    def test_in_range_and_writes_only(self):
        gen = UniformGenerator(100, seed=1)
        ops = list(gen.ops(500))
        assert len(ops) == 500
        assert all(op.op is OpType.WRITE for op in ops)
        assert all(0 <= op.lba < 100 for op in ops)

    def test_roughly_uniform(self):
        gen = UniformGenerator(10, seed=1)
        counts = collections.Counter(op.lba for op in gen.ops(10_000))
        assert min(counts.values()) > 700

    def test_deterministic(self):
        a = [op.lba for op in UniformGenerator(50, seed=3).ops(100)]
        b = [op.lba for op in UniformGenerator(50, seed=3).ops(100)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigError):
            UniformGenerator(0)


class TestZipfian:
    def test_skew_concentrates_traffic(self):
        gen = ZipfianGenerator(1000, theta=0.99, seed=1)
        counts = collections.Counter(op.lba for op in gen.ops(5000))
        top_share = sum(c for _, c in counts.most_common(100)) / 5000
        assert top_share > 0.4  # top 10 % of LBAs take >40 % of writes

    def test_theta_zero_is_uniform_like(self):
        gen = ZipfianGenerator(10, theta=0.0, seed=1)
        counts = collections.Counter(op.lba for op in gen.ops(10_000))
        assert min(counts.values()) > 700

    def test_hot_lbas_scattered_not_prefix(self):
        gen = ZipfianGenerator(1000, theta=0.99, seed=1)
        counts = collections.Counter(op.lba for op in gen.ops(5000))
        hottest = [lba for lba, _ in counts.most_common(10)]
        assert max(hottest) > 100  # not all at the front of the range

    def test_validation(self):
        with pytest.raises(ConfigError):
            ZipfianGenerator(100, theta=2.5)
        with pytest.raises(ConfigError):
            ZipfianGenerator(0)


class TestSequential:
    def test_wraps_around(self):
        gen = SequentialGenerator(5, start=3)
        lbas = [op.lba for op in gen.ops(7)]
        assert lbas == [3, 4, 0, 1, 2, 3, 4]

    def test_validation(self):
        with pytest.raises(ConfigError):
            SequentialGenerator(5, start=5)
        with pytest.raises(ConfigError):
            SequentialGenerator(0)


class TestMixed:
    def test_respects_fractions_roughly(self):
        base = UniformGenerator(100, seed=1)
        gen = MixedGenerator(base, read_fraction=0.5, trim_fraction=0.1,
                             seed=2)
        ops = list(gen.ops(4000))
        counts = collections.Counter(op.op for op in ops)
        assert counts[OpType.READ] / len(ops) == pytest.approx(0.5, abs=0.07)
        assert counts[OpType.TRIM] / len(ops) == pytest.approx(0.1, abs=0.05)

    def test_reads_target_written_lbas_only(self):
        base = UniformGenerator(1000, seed=1)
        gen = MixedGenerator(base, read_fraction=0.4, seed=2)
        written = set()
        for op in gen.ops(2000):
            if op.op is OpType.WRITE:
                written.add(op.lba)
            elif op.op is OpType.READ:
                assert op.lba in written

    def test_trimmed_lbas_leave_the_read_set(self):
        base = UniformGenerator(50, seed=1)
        gen = MixedGenerator(base, read_fraction=0.3, trim_fraction=0.3,
                             seed=2)
        live = set()
        for op in gen.ops(3000):
            if op.op is OpType.WRITE:
                live.add(op.lba)
            elif op.op is OpType.TRIM:
                assert op.lba in live
                live.discard(op.lba)
            else:
                assert op.lba in live

    def test_validation(self):
        base = UniformGenerator(10, seed=1)
        with pytest.raises(ConfigError):
            MixedGenerator(base, read_fraction=1.5)
        with pytest.raises(ConfigError):
            MixedGenerator(base, read_fraction=0.7, trim_fraction=0.5)
