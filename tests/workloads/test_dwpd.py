"""Unit tests for DWPD schedules."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.units import GIB
from repro.workloads.dwpd import DWPDSchedule


class TestDailyBytes:
    def test_steady_schedule(self):
        schedule = DWPDSchedule(dwpd=1.0, capacity_bytes=128 * GIB)
        days = schedule.daily_bytes(10)
        assert days.shape == (10,)
        assert np.all(days == 128 * GIB)

    def test_fractional_dwpd(self):
        schedule = DWPDSchedule(dwpd=0.3, capacity_bytes=100)
        assert schedule.mean_daily_bytes == pytest.approx(30.0)

    def test_bursty_mean_preserved(self):
        schedule = DWPDSchedule(dwpd=1.0, capacity_bytes=1000,
                                burstiness=0.5)
        days = schedule.daily_bytes(20_000, seed=1)
        assert days.mean() == pytest.approx(1000, rel=0.05)
        assert days.std() == pytest.approx(500, rel=0.1)
        assert np.all(days > 0)

    def test_bursty_deterministic_with_seed(self):
        schedule = DWPDSchedule(dwpd=1.0, capacity_bytes=1000,
                                burstiness=0.3)
        assert np.array_equal(schedule.daily_bytes(50, seed=9),
                              schedule.daily_bytes(50, seed=9))

    def test_zero_days(self):
        schedule = DWPDSchedule(dwpd=1.0, capacity_bytes=1000)
        assert schedule.daily_bytes(0).shape == (0,)

    def test_negative_days_rejected(self):
        with pytest.raises(ConfigError):
            DWPDSchedule(dwpd=1.0, capacity_bytes=1000).daily_bytes(-1)


class TestRatedLife:
    def test_one_dwpd_unity_waf(self):
        schedule = DWPDSchedule(dwpd=1.0, capacity_bytes=1000)
        assert schedule.days_to_rated_life(3000) == pytest.approx(3000)

    def test_waf_shortens_life(self):
        schedule = DWPDSchedule(dwpd=1.0, capacity_bytes=1000)
        assert schedule.days_to_rated_life(3000, write_amplification=2.0) \
            == pytest.approx(1500)

    def test_heavier_writes_shorten_life(self):
        light = DWPDSchedule(dwpd=0.5, capacity_bytes=1000)
        heavy = DWPDSchedule(dwpd=3.0, capacity_bytes=1000)
        assert (heavy.days_to_rated_life(3000)
                < light.days_to_rated_life(3000))

    def test_validation(self):
        schedule = DWPDSchedule(dwpd=1.0, capacity_bytes=1000)
        with pytest.raises(ConfigError):
            schedule.days_to_rated_life(0)
        with pytest.raises(ConfigError):
            schedule.days_to_rated_life(100, write_amplification=0.5)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"dwpd": 0, "capacity_bytes": 100},
        {"dwpd": 1, "capacity_bytes": 0},
        {"dwpd": 1, "capacity_bytes": 100, "burstiness": -1},
    ])
    def test_constructor(self, kwargs):
        with pytest.raises(ConfigError):
            DWPDSchedule(**kwargs)
