"""Unit tests for trace capture/replay."""

import pytest

from repro.errors import ConfigError
from repro.workloads.generators import (
    MixedGenerator,
    Operation,
    OpType,
    UniformGenerator,
)
from repro.workloads.traces import Trace, replay_on_device, synthesize_trace


class TestTrace:
    def test_append_validates_range(self):
        trace = Trace(n_lbas=10)
        trace.append(Operation(OpType.WRITE, 9, b"x"))
        with pytest.raises(ConfigError):
            trace.append(Operation(OpType.WRITE, 10, b"x"))

    def test_serialisation_roundtrip(self):
        trace = Trace(n_lbas=16)
        trace.append(Operation(OpType.WRITE, 3, b"\x00\xffdata"))
        trace.append(Operation(OpType.READ, 3))
        trace.append(Operation(OpType.TRIM, 3))
        restored = Trace.loads(trace.dumps())
        assert restored.n_lbas == 16
        assert len(restored) == 3
        assert restored.operations[0].payload == b"\x00\xffdata"
        assert restored.operations[1].op is OpType.READ
        assert restored.operations[2].op is OpType.TRIM

    def test_dumps_is_byte_stable(self):
        """``dumps(loads(dumps(t))) == dumps(t)`` — no field-ordering
        or float-format drift, and no trailing whitespace (the empty
        write-payload case used to emit ``W <lba> ``)."""
        trace = Trace(n_lbas=16)
        trace.append(Operation(OpType.WRITE, 3, b"\x00\xffdata"))
        trace.append(Operation(OpType.WRITE, 4, b""))
        trace.append(Operation(OpType.WRITE, 5, None))
        trace.append(Operation(OpType.READ, 3))
        trace.append(Operation(OpType.TRIM, 3))
        text = trace.dumps()
        assert Trace.loads(text).dumps() == text
        for line in text.splitlines():
            assert line == line.rstrip(), f"trailing whitespace: {line!r}"

    def test_save_load_roundtrip(self, tmp_path):
        trace = Trace(n_lbas=8)
        trace.append(Operation(OpType.WRITE, 1, b"payload"))
        trace.append(Operation(OpType.READ, 1))
        path = trace.save(tmp_path / "nested" / "t.trace")
        restored = Trace.load(path)
        assert restored.dumps() == trace.dumps()
        # Byte-stability on disk: saving the restored trace is a no-op.
        again = restored.save(tmp_path / "again.trace")
        assert again.read_bytes() == path.read_bytes()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            Trace.load(tmp_path / "absent.trace")

    def test_loads_rejects_garbage(self):
        with pytest.raises(ConfigError):
            Trace.loads("not a trace")
        with pytest.raises(ConfigError):
            Trace.loads("# trace n_lbas=4\nX 1\n")

    def test_synthesize_from_generator(self):
        trace = synthesize_trace(UniformGenerator(32, seed=1), 50)
        assert len(trace) == 50
        assert trace.n_lbas == 32

    def test_synthesize_from_mixed_generator(self):
        gen = MixedGenerator(UniformGenerator(32, seed=1),
                             read_fraction=0.3, seed=2)
        trace = synthesize_trace(gen, 50)
        assert trace.n_lbas == 32


class TestReplay:
    def test_replay_applies_everything(self, make_baseline):
        trace = synthesize_trace(UniformGenerator(64, seed=1), 100)
        device = make_baseline()
        applied = replay_on_device(trace, device)
        assert applied["writes"] == 100
        assert applied["errors"] == 0
        assert device.stats.host_writes == 100

    def test_replay_is_identical_across_device_types(self, make_baseline,
                                                     make_cvss):
        trace = synthesize_trace(UniformGenerator(64, seed=1), 200)
        a = make_baseline()
        b = make_cvss()
        replay_on_device(trace, a)
        replay_on_device(trace, b)
        assert a.stats.host_writes == b.stats.host_writes == 200

    def test_replay_wraps_lbas_modulo_capacity(self, make_baseline):
        trace = Trace(n_lbas=10_000)
        trace.append(Operation(OpType.WRITE, 9_999, b"far"))
        device = make_baseline()
        applied = replay_on_device(trace, device)
        assert applied["writes"] == 1

    def test_replay_survives_errors_when_asked(self, make_baseline):
        trace = synthesize_trace(UniformGenerator(64, seed=1), 60_000)
        device = make_baseline(seed=1)
        applied = replay_on_device(trace, device, stop_on_error=False)
        # The tiny device dies under this trace; replay keeps going.
        assert applied["errors"] > 0
