"""Unit tests for the MSR-Cambridge trace parser."""

import pytest

from repro.errors import ConfigError
from repro.workloads.generators import OpType
from repro.workloads.traces import parse_msr_trace, replay_on_device

SAMPLE = """\
# timestamp,hostname,disk,type,offset,size,latency
128166372003061629,usr,0,Write,0,8192,1329
128166372016382155,usr,0,Read,4096,4096,541
128166372026382245,usr,0,Write,20480,4096,613
"""


class TestParseMSR:
    def test_requests_split_into_opages(self):
        trace = parse_msr_trace(SAMPLE)
        kinds = [op.op for op in trace.operations]
        lbas = [op.lba for op in trace.operations]
        # 8 KiB write -> lbas 0,1; 4 KiB read -> lba 1; 4 KiB write -> lba 5.
        assert kinds == [OpType.WRITE, OpType.WRITE, OpType.READ,
                         OpType.WRITE]
        assert lbas == [0, 1, 1, 5]

    def test_address_space_covers_trace(self):
        trace = parse_msr_trace(SAMPLE)
        assert trace.n_lbas == 6

    def test_explicit_space_wraps_lbas(self):
        trace = parse_msr_trace(SAMPLE, n_lbas=4)
        assert all(op.lba < 4 for op in trace.operations)

    def test_unaligned_request_spans_pages(self):
        text = "1,h,0,Read,6144,4096,1\n"  # 1.5 pages in, 1 page long
        trace = parse_msr_trace(text)
        assert [op.lba for op in trace.operations] == [1, 2]

    def test_write_payloads_are_stamped(self):
        trace = parse_msr_trace(SAMPLE)
        writes = [op for op in trace.operations if op.op is OpType.WRITE]
        assert all(op.payload.startswith(b"msr lba=") for op in writes)
        assert len({op.payload for op in writes}) == len(writes)

    def test_comments_and_blanks_skipped(self):
        trace = parse_msr_trace("# hi\n\n1,h,0,Write,0,4096,2\n")
        assert len(trace) == 1

    @pytest.mark.parametrize("bad", [
        "1,h,0,Write,0\n",                 # too few fields
        "1,h,0,Trim,0,4096,1\n",           # unknown op
        "1,h,0,Write,abc,4096,1\n",        # bad offset
        "1,h,0,Write,0,0,1\n",             # zero size
        "1,h,0,Write,-1,4096,1\n",         # negative offset
        "",                                # empty trace
    ])
    def test_malformed_lines_rejected(self, bad):
        with pytest.raises(ConfigError):
            parse_msr_trace(bad)

    def test_replays_on_device(self, make_baseline):
        trace = parse_msr_trace(SAMPLE, n_lbas=64)
        device = make_baseline()
        applied = replay_on_device(trace, device)
        assert applied["writes"] == 3
        assert applied["reads"] == 1
        assert applied["errors"] == 0
