"""Statistical conformance of the workload generators and arrivals.

The traffic engine's claims lean on the generators actually having the
distributions they advertise: the Zipf hotspot really carries ~80 % of
the mass, the mixed generator really honours its op ratios, Poisson
inter-arrivals really are exponential, and MMPP really is
over-dispersed at the configured mean rate. Each property is pinned
with a goodness-of-fit test at a fixed seed — the draws are
deterministic, so a pass is a pass forever; a failure means the
generator (or the RNG discipline) changed.

The bit-identity sweep at the bottom is the other half of the
contract: ``ops_vector`` must consume the *same* RNG stream as
``ops``, for every generator and any tenant-style fan-out.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.rng import fork_rng, make_rng
from repro.workloads import (
    MixedGenerator,
    MMPPArrivals,
    OpType,
    PoissonArrivals,
    SequentialGenerator,
    UniformGenerator,
    ZipfianGenerator,
    hotspot_mass,
    make_arrivals,
    mmpp_rates,
)

SEED = 20250808

#: Significance floor for the goodness-of-fit tests. Deterministic
#: seeds make these non-flaky: the p-value is a constant of the code.
ALPHA = 0.01


class TestZipfianHotspot:
    def test_hot_20_percent_carries_about_80_percent(self):
        """YCSB theta 0.99 on a small span is the classic 80/20."""
        n = 400
        mass = hotspot_mass(n, 0.99, hot_fraction=0.2)
        assert 0.72 <= mass <= 0.86

        generator = ZipfianGenerator(n, theta=0.99, seed=SEED)
        counts = np.zeros(n, dtype=int)
        for op in generator.ops(20_000):
            counts[op.lba] += 1
        # Hot set = the top-ranked fifth under the generator's own
        # permutation; measured mass must match the analytic mass.
        hot = generator._permutation[: n // 5]
        measured = counts[hot].sum() / counts.sum()
        assert abs(measured - mass) < 0.02

    def test_rank_distribution_chi_square(self):
        """Sampled rank frequencies fit the analytic Zipf pmf."""
        n = 50
        draws = 30_000
        generator = ZipfianGenerator(n, theta=0.99, seed=SEED)
        counts = np.zeros(n, dtype=int)
        inverse = np.argsort(generator._permutation)
        for op in generator.ops(draws):
            counts[inverse[op.lba]] += 1
        ranks = np.arange(1, n + 1, dtype=float)
        weights = ranks**-0.99
        expected = draws * weights / weights.sum()
        _, p_value = stats.chisquare(counts, expected)
        assert p_value > ALPHA

    def test_theta_zero_is_uniform(self):
        n = 64
        assert hotspot_mass(n, 0.0, hot_fraction=0.25) == 0.25
        generator = ZipfianGenerator(n, theta=0.0, seed=SEED)
        counts = np.zeros(n, dtype=int)
        for op in generator.ops(12_800):
            counts[op.lba] += 1
        _, p_value = stats.chisquare(counts)
        assert p_value > ALPHA


class TestMixedRatios:
    def test_op_mix_matches_configured_fractions(self):
        base = UniformGenerator(256, seed=SEED)
        generator = MixedGenerator(base, read_fraction=0.5,
                                   trim_fraction=0.1, seed=SEED + 1)
        # Warm the written-set so reads/trims have targets; the mix
        # only applies once history exists.
        for _ in generator.ops(500):
            pass
        tallies = {OpType.READ: 0, OpType.WRITE: 0, OpType.TRIM: 0}
        total = 10_000
        for op in generator.ops(total):
            tallies[op.op] += 1
        observed = [tallies[OpType.READ], tallies[OpType.TRIM],
                    tallies[OpType.WRITE]]
        expected = [total * 0.5, total * 0.1, total * 0.4]
        _, p_value = stats.chisquare(observed, expected)
        assert p_value > ALPHA

    def test_reads_only_target_written_lbas(self):
        base = UniformGenerator(64, seed=SEED)
        generator = MixedGenerator(base, read_fraction=0.6, seed=SEED)
        written = set()
        for op in generator.ops(2_000):
            if op.op is OpType.WRITE:
                written.add(op.lba)
            else:
                assert op.lba in written


class TestPoissonArrivals:
    def test_interarrivals_are_exponential_ks(self):
        rate = 0.05  # one arrival every 20 us on average
        arrivals = PoissonArrivals(rate, make_rng(SEED))
        t, gaps = 0.0, []
        for _ in range(5_000):
            nxt = arrivals.next_after(t)
            gaps.append(nxt - t)
            t = nxt
        _, p_value = stats.kstest(gaps, "expon", args=(0, 1.0 / rate))
        assert p_value > ALPHA

    def test_mean_rate(self):
        rate = 0.02
        arrivals = PoissonArrivals(rate, make_rng(SEED))
        t = 0.0
        n = 20_000
        for _ in range(n):
            t = arrivals.next_after(t)
        assert abs(n / t - rate) / rate < 0.02


class TestMMPPArrivals:
    def test_time_average_rate_matches_configured(self):
        rate = 0.05
        arrivals = MMPPArrivals(rate, make_rng(SEED), burstiness=4.0)
        t = 0.0
        n = 40_000
        for _ in range(n):
            t = arrivals.next_after(t)
        assert abs(n / t - rate) / rate < 0.05

    def test_overdispersed_vs_poisson(self):
        """Burstiness shows up as inter-arrival CV > 1 and a KS reject
        against the plain exponential."""
        rate = 0.05
        arrivals = MMPPArrivals(rate, make_rng(SEED), burstiness=8.0)
        t, gaps = 0.0, []
        for _ in range(20_000):
            nxt = arrivals.next_after(t)
            gaps.append(nxt - t)
            t = nxt
        gaps = np.asarray(gaps)
        cv = gaps.std() / gaps.mean()
        assert cv > 1.05
        _, p_value = stats.kstest(gaps, "expon", args=(0, gaps.mean()))
        assert p_value < 1e-6

    def test_rate_split_preserves_mean(self):
        for burstiness in (1.0, 2.0, 4.0, 16.0):
            burst, quiet = mmpp_rates(0.1, burstiness)
            assert burst / quiet == burstiness or burstiness == 1.0
            assert abs((burst + quiet) / 2 - 0.1) < 1e-12

    def test_make_arrivals_dispatch(self):
        assert make_arrivals("poisson", 0.1, make_rng(0)).kind == "poisson"
        assert make_arrivals("mmpp", 0.1, make_rng(0)).kind == "mmpp"


class TestOpsVectorBitIdentity:
    """``ops_vector`` must consume the same RNG stream as ``ops``."""

    @staticmethod
    def _generators(seed):
        rng = make_rng(seed)
        yield SequentialGenerator(128, start=3)
        yield UniformGenerator(128, seed=fork_rng(rng, "uniform"))
        yield ZipfianGenerator(128, theta=0.99,
                               seed=fork_rng(rng, "zipf"))
        yield MixedGenerator(
            UniformGenerator(128, seed=fork_rng(rng, "mixed-base")),
            read_fraction=0.4, trim_fraction=0.1,
            seed=fork_rng(rng, "mixed"))

    def test_sweep_all_generators_and_tenant_counts(self):
        for tenants in (1, 3, 8):
            for t in range(tenants):
                seed = SEED + 17 * tenants + t
                for scalar, batched in zip(self._generators(seed),
                                           self._generators(seed)):
                    ops = list(scalar.ops(200))
                    vector = batched.ops_vector(200)
                    assert len(vector) == len(ops)
                    for i, op in enumerate(ops):
                        request = vector.request(i)
                        assert request.op == op.op.value
                        assert request.lba == op.lba
                        if op.op is OpType.WRITE:
                            assert request.payloads == [op.payload]

    def test_streams_identical_after_interleaving(self):
        """Chunked emission does not desynchronise the two surfaces."""
        a = ZipfianGenerator(64, theta=0.9, seed=SEED)
        b = ZipfianGenerator(64, theta=0.9, seed=SEED)
        collected = []
        for chunk in (10, 1, 25):
            collected.extend(a.ops(chunk))
        vector_lbas = []
        for chunk in (10, 1, 25):
            vec = b.ops_vector(chunk)
            vector_lbas.extend(int(vec.lba[i]) for i in range(len(vec)))
        assert [op.lba for op in collected] == vector_lbas
