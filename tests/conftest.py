"""Shared fixtures: small, fast device configurations.

Test devices are MiB-scale with a drastically reduced PEC limit so wear
experiments finish in milliseconds while exercising exactly the same code
paths as realistic configurations.
"""

from __future__ import annotations

import pytest

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.salamander.device import SalamanderConfig, SalamanderSSD
from repro.ssd.cvss import CVSSConfig, CVSSDevice
from repro.ssd.device import BaselineSSD, SSDConfig
from repro.ssd.ftl import FTLConfig

TEST_PEC_LIMIT = 25


@pytest.fixture
def tiny_geometry() -> FlashGeometry:
    """16 blocks x 8 fPages x 4 oPages = 512 slots (2 MiB of data)."""
    return FlashGeometry(blocks=16, fpages_per_block=8)


@pytest.fixture
def policy(tiny_geometry) -> TirednessPolicy:
    return TirednessPolicy(geometry=tiny_geometry)


@pytest.fixture
def fast_model(policy):
    """Calibrated power law with a tiny PEC limit so wear arrives quickly."""
    return calibrate_power_law(policy, pec_limit_l0=TEST_PEC_LIMIT)


@pytest.fixture
def ftl_config() -> FTLConfig:
    """High over-provisioning + small buffer, sized for tiny chips."""
    return FTLConfig(overprovision=0.25, buffer_opages=8,
                     gc_reserve_blocks=2)


@pytest.fixture
def make_chip(tiny_geometry, policy, fast_model):
    """Factory for tiny chips sharing the fast wear model."""

    def factory(seed: int = 1, variation_sigma: float = 0.3,
                inject_errors: bool = True) -> FlashChip:
        return FlashChip(tiny_geometry, rber_model=fast_model, policy=policy,
                         seed=seed, variation_sigma=variation_sigma,
                         inject_errors=inject_errors)

    return factory


@pytest.fixture
def make_baseline(make_chip, ftl_config):
    def factory(seed: int = 1, **chip_kwargs) -> BaselineSSD:
        return BaselineSSD(make_chip(seed=seed, **chip_kwargs),
                           SSDConfig(ftl=ftl_config))

    return factory


@pytest.fixture
def make_cvss(make_chip, ftl_config):
    def factory(seed: int = 1, retire_rule: str = "first-page",
                **chip_kwargs) -> CVSSDevice:
        return CVSSDevice(make_chip(seed=seed, **chip_kwargs),
                          CVSSConfig(ftl=ftl_config, retire_rule=retire_rule))

    return factory


@pytest.fixture
def make_salamander(make_chip, ftl_config):
    def factory(mode: str = "shrink", seed: int = 1, msize_lbas: int = 32,
                regen_max_level: int = 1, **chip_kwargs) -> SalamanderSSD:
        config = SalamanderConfig(
            msize_lbas=msize_lbas, mode=mode,
            regen_max_level=regen_max_level,
            headroom_fraction=0.25, ftl=ftl_config)
        return SalamanderSSD(make_chip(seed=seed, **chip_kwargs), config)

    return factory
