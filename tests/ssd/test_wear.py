"""Unit tests for wear-leveling helpers."""

import numpy as np
import pytest

from repro.errors import OutOfSpaceError
from repro.ssd.wear import select_min_wear_block, wear_imbalance


class TestSelectMinWear:
    def test_picks_lowest_erase_count(self):
        counts = np.array([5, 1, 9, 0])
        assert select_min_wear_block(np.array([0, 1, 2]), counts) == 1

    def test_only_considers_free_blocks(self):
        counts = np.array([5, 1, 9, 0])
        # Block 3 has the globally lowest count but is not free.
        assert select_min_wear_block(np.array([0, 2]), counts) == 0

    def test_empty_pool_raises(self):
        with pytest.raises(OutOfSpaceError):
            select_min_wear_block(np.array([], dtype=np.int64),
                                  np.array([1, 2]))


class TestImbalance:
    def test_even_wear_is_zero(self):
        assert wear_imbalance(np.array([4, 4, 4])) == 0.0

    def test_unworn_device_is_zero(self):
        assert wear_imbalance(np.array([0, 0])) == 0.0
        assert wear_imbalance(np.array([], dtype=np.int64)) == 0.0

    def test_skewed_wear_positive(self):
        assert wear_imbalance(np.array([1, 1, 10])) > 1.0
