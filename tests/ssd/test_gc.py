"""Unit tests for GC victim selection policies."""

import numpy as np

from repro.ssd.gc import CostBenefitGC, GreedyGC


class TestGreedy:
    def test_picks_fewest_valid(self):
        policy = GreedyGC()
        victim = policy.choose_victim(
            np.array([3, 5, 9]),
            valid_counts=np.array([10, 2, 7]),
            capacities=np.array([32, 32, 32]),
            ages=np.array([1, 1, 1]))
        assert victim == 5

    def test_tie_breaks_deterministically(self):
        policy = GreedyGC()
        victim = policy.choose_victim(
            np.array([4, 8]),
            valid_counts=np.array([3, 3]),
            capacities=np.array([32, 32]),
            ages=np.array([0, 0]))
        assert victim == 4  # argmin takes the first

    def test_ignores_age(self):
        policy = GreedyGC()
        victim = policy.choose_victim(
            np.array([1, 2]),
            valid_counts=np.array([5, 6]),
            capacities=np.array([32, 32]),
            ages=np.array([0, 1000]))
        assert victim == 1


class TestCostBenefit:
    def test_prefers_empty_over_full(self):
        policy = CostBenefitGC()
        victim = policy.choose_victim(
            np.array([1, 2]),
            valid_counts=np.array([30, 2]),
            capacities=np.array([32, 32]),
            ages=np.array([1, 1]))
        assert victim == 2

    def test_age_can_outweigh_slightly_higher_utilisation(self):
        policy = CostBenefitGC()
        victim = policy.choose_victim(
            np.array([1, 2]),
            valid_counts=np.array([16, 14]),
            capacities=np.array([32, 32]),
            ages=np.array([100, 1]))
        assert victim == 1

    def test_fully_valid_block_scores_zero(self):
        policy = CostBenefitGC()
        victim = policy.choose_victim(
            np.array([1, 2]),
            valid_counts=np.array([32, 31]),
            capacities=np.array([32, 32]),
            ages=np.array([1000, 1]))
        assert victim == 2

    def test_handles_zero_capacity_blocks(self):
        policy = CostBenefitGC()
        victim = policy.choose_victim(
            np.array([1, 2]),
            valid_counts=np.array([0, 0]),
            capacities=np.array([0, 32]),
            ages=np.array([1, 1]))
        assert victim in (1, 2)  # must not divide by zero
