"""Equivalence tests for the FTL's incremental fast-path state.

Every counter and cached index the fast path maintains (mapped-LBA count,
per-stream buffer counts, free/closed block arrays, per-block valid and
usable-slot accounting) must equal the O(n) scan it replaced at any
externally observable moment. ``PageMappedFTL._audit_fastpath`` performs
the full cross-check; these tests hammer it under random workloads on
every device flavour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    DeviceBrickedError,
    DeviceReadOnlyError,
    OutOfSpaceError,
    UncorrectableError,
)
from repro.ssd.ftl import FTLConfig, PageMappedFTL


def churn(device, rng, ops: int, audit_every: int, *,
          n_lbas: int | None = None, streams: int = 1) -> None:
    """Random write/trim/read/flush mix with periodic full audits."""
    n = n_lbas if n_lbas is not None else device.n_lbas
    for i in range(ops):
        lba = int(rng.integers(0, n))
        op = rng.random()
        try:
            if op < 0.70:
                stream = int(rng.integers(0, streams))
                if streams > 1:
                    device.write(lba, bytes([i % 251]) * 8, stream=stream)
                else:
                    device.write(lba, bytes([i % 251]) * 8)
            elif op < 0.80:
                device.trim(lba)
            elif op < 0.95:
                device.read(lba)
            else:
                device.flush()
        except (UncorrectableError, OutOfSpaceError,
                DeviceBrickedError, DeviceReadOnlyError):
            return
        if i % audit_every == 0:
            device._audit_fastpath()
    device._audit_fastpath()


class TestAuditCleanDevice:
    def test_fresh_ftl_passes_audit(self, make_chip, ftl_config):
        ftl = PageMappedFTL.for_chip(make_chip(seed=3), ftl_config)
        ftl._audit_fastpath()

    def test_live_lbas_matches_scan_on_fresh_device(self, make_chip,
                                                    ftl_config):
        ftl = PageMappedFTL.for_chip(make_chip(seed=3), ftl_config)
        assert ftl.live_lbas() == ftl._live_lbas_scan() == 0


class TestAuditUnderChurn:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_plain_ftl(self, make_chip, ftl_config, seed):
        ftl = PageMappedFTL.for_chip(
            make_chip(seed=seed, variation_sigma=0.0), ftl_config)
        churn(ftl, np.random.default_rng(seed), ops=600, audit_every=37)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_baseline_device_with_wear(self, make_baseline, seed):
        device = make_baseline(seed=seed)
        churn(device, np.random.default_rng(seed), ops=900, audit_every=53)

    @pytest.mark.parametrize("mode", ["shrink", "regen"])
    def test_salamander_device(self, make_salamander, mode):
        device = make_salamander(mode=mode, seed=4)
        rng = np.random.default_rng(11)
        msize = device.salamander_config.msize_lbas
        for i in range(900):
            mdisk = int(rng.integers(0, len(device.minidisks)))
            lba = int(rng.integers(0, msize))
            try:
                if device.minidisk(mdisk).status.value != "active":
                    continue
                if rng.random() < 0.8:
                    device.write(mdisk, lba, bytes([i % 251]) * 8)
                else:
                    device.read(mdisk, lba)
            except (UncorrectableError, OutOfSpaceError):
                break
            if i % 53 == 0:
                device._audit_fastpath()
        device._audit_fastpath()

    def test_cvss_device(self, make_cvss):
        device = make_cvss(seed=6)
        churn(device, np.random.default_rng(6), ops=900, audit_every=53)

    def test_multistream_counts(self, make_chip):
        config = FTLConfig(overprovision=0.25, buffer_opages=8,
                           gc_reserve_blocks=2, host_streams=3,
                           stream_separation=True)
        ftl = PageMappedFTL.for_chip(make_chip(seed=7), config)
        churn(ftl, np.random.default_rng(7), ops=700, audit_every=41,
              streams=3)


class TestLiveLbasEquivalence:
    def test_counter_tracks_scan_through_overwrites_and_trims(
            self, make_chip, ftl_config):
        ftl = PageMappedFTL.for_chip(
            make_chip(seed=9, variation_sigma=0.0), ftl_config)
        rng = np.random.default_rng(9)
        for i in range(400):
            lba = int(rng.integers(0, ftl.n_lbas))
            if rng.random() < 0.8:
                ftl.write(lba, b"z" * 16)
            else:
                ftl.trim(lba)
            if i % 25 == 0:
                assert ftl.live_lbas() == ftl._live_lbas_scan()
        ftl.flush()
        assert ftl.live_lbas() == ftl._live_lbas_scan()

    def test_busiest_stream_matches_buffer_scan(self, make_chip):
        config = FTLConfig(overprovision=0.25, buffer_opages=8,
                           gc_reserve_blocks=2, host_streams=4,
                           stream_separation=True)
        ftl = PageMappedFTL.for_chip(make_chip(seed=10), config)
        rng = np.random.default_rng(10)
        for i in range(300):
            lba = int(rng.integers(0, ftl.n_lbas))
            stream = int(rng.integers(0, 4))
            ftl.write(lba, b"s", stream=stream)
            # Reference recomputation: most-buffered stream, lowest index
            # winning ties — exactly what the incremental counter reports.
            counts = [0] * 4
            for key in ftl.buffer.keys():
                counts[ftl._buffer_stream.get(key, 0)] += 1
            expected = max(range(4), key=counts.__getitem__)
            assert ftl._busiest_stream() == expected


class TestFreeListIndex:
    def test_free_array_sorted_and_filtered(self, make_baseline):
        device = make_baseline(seed=12)
        rng = np.random.default_rng(12)
        churn(device, rng, ops=500, audit_every=500)
        usable = device._usable_free_blocks()
        assert list(usable) == sorted(set(usable))
        for block in usable:
            assert device._block_usable(int(block))

    def test_ledger_filter_applies_lazily(self, make_baseline):
        """Marking a block bad removes it from the next array build."""
        device = make_baseline(seed=13)
        free_before = set(device._usable_free_blocks().tolist())
        victim = next(iter(sorted(free_before)))
        device.ledger.mark_bad(victim)
        device._free_blocks.invalidate()
        assert victim not in device._usable_free_blocks().tolist()
