"""Property test: crash-at-any-point consistency.

Hypothesis drives a random op sequence, crashes the device at an arbitrary
point (NVRAM intact), remounts, and checks that the recovered device
agrees with a shadow model for every acknowledged write — the fundamental
durability contract.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.ssd.ftl import FTLConfig, PageMappedFTL

N_LBAS = 96

operation = st.one_of(
    st.tuples(st.just("write"), st.integers(0, N_LBAS - 1),
              st.binary(min_size=1, max_size=12)),
    st.tuples(st.just("flush"), st.none(), st.none()),
)


def fresh_ftl() -> PageMappedFTL:
    geometry = FlashGeometry(blocks=12, fpages_per_block=4)
    chip = FlashChip(geometry, seed=1, variation_sigma=0.0,
                     inject_errors=False)
    return PageMappedFTL(chip, N_LBAS,
                         FTLConfig(buffer_opages=6, gc_reserve_blocks=2))


class TestCrashConsistency:
    @given(ops=st.lists(operation, min_size=1, max_size=80),
           crash_fraction=st.floats(0.1, 1.0))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_remount_agrees_with_shadow(self, ops, crash_fraction):
        ftl = fresh_ftl()
        shadow: dict[int, bytes] = {}
        crash_point = max(1, int(len(ops) * crash_fraction))
        for op, lba, payload in ops[:crash_point]:
            if op == "write":
                ftl.write(lba, payload)
                shadow[lba] = payload
            else:
                ftl.flush()
        # Power loss with NVRAM intact: buffer contents survive.
        entries = [(lba, ftl.buffer.get(lba)) for lba in ftl.buffer.keys()]
        recovered = PageMappedFTL.remount(ftl.chip, N_LBAS, ftl.config,
                                          entries)
        for lba in range(N_LBAS):
            expected = shadow.get(lba, b"")
            assert recovered.read(lba).rstrip(b"\0") == \
                expected.rstrip(b"\0")

    @given(ops=st.lists(operation, min_size=1, max_size=60))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_nvram_loss_preserves_flushed_prefix(self, ops):
        ftl = fresh_ftl()
        durable: dict[int, bytes] = {}   # state as of the last flush
        pending: dict[int, bytes] = {}
        for op, lba, payload in ops:
            if op == "write":
                ftl.write(lba, payload)
                pending[lba] = payload
            else:
                ftl.flush()
                durable.update(pending)
                pending.clear()
        recovered = PageMappedFTL.remount(ftl.chip, N_LBAS, ftl.config,
                                          buffer_entries=None)
        for lba, expected in durable.items():
            if lba in pending:
                # Rewritten after the flush: the device may legitimately
                # hold either the durable or a later (drained) version.
                got = recovered.read(lba).rstrip(b"\0")
                assert got in (expected.rstrip(b"\0"),
                               pending[lba].rstrip(b"\0"))
            else:
                assert recovered.read(lba).rstrip(b"\0") == \
                    expected.rstrip(b"\0")
