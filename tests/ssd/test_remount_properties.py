"""Property tests: crash-at-any-point consistency and state equality.

Hypothesis drives a random op sequence, crashes the device at an arbitrary
point (NVRAM intact), remounts, and checks that the recovered device
agrees with a shadow model for every acknowledged write — the fundamental
durability contract.

The state-equality class goes further: after a crash with no pending
trims (trims are not journaled, so trimmed data legitimately resurrects),
``_rebuild_from_flash`` must reconstruct the *exact* fast-path state the
live device held — mapping tables, per-block valid counts, erase counts,
dead/free/closed block sets, live-LBA counter — not merely equivalent
data. This pins the rebuild path to the same invariants
``_audit_fastpath`` enforces on the incremental path.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.ssd.ftl import FTLConfig, PageMappedFTL

N_LBAS = 96

operation = st.one_of(
    st.tuples(st.just("write"), st.integers(0, N_LBAS - 1),
              st.binary(min_size=1, max_size=12)),
    st.tuples(st.just("flush"), st.none(), st.none()),
)


def fresh_ftl() -> PageMappedFTL:
    geometry = FlashGeometry(blocks=12, fpages_per_block=4)
    chip = FlashChip(geometry, seed=1, variation_sigma=0.0,
                     inject_errors=False)
    return PageMappedFTL(chip, N_LBAS,
                         FTLConfig(buffer_opages=6, gc_reserve_blocks=2))


class TestCrashConsistency:
    @given(ops=st.lists(operation, min_size=1, max_size=80),
           crash_fraction=st.floats(0.1, 1.0))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_remount_agrees_with_shadow(self, ops, crash_fraction):
        ftl = fresh_ftl()
        shadow: dict[int, bytes] = {}
        crash_point = max(1, int(len(ops) * crash_fraction))
        for op, lba, payload in ops[:crash_point]:
            if op == "write":
                ftl.write(lba, payload)
                shadow[lba] = payload
            else:
                ftl.flush()
        # Power loss with NVRAM intact: buffer contents survive.
        entries = [(lba, ftl.buffer.get(lba)) for lba in ftl.buffer.keys()]
        recovered = PageMappedFTL.remount(ftl.chip, N_LBAS, ftl.config,
                                          entries)
        for lba in range(N_LBAS):
            expected = shadow.get(lba, b"")
            assert recovered.read(lba).rstrip(b"\0") == \
                expected.rstrip(b"\0")

    @given(ops=st.lists(operation, min_size=1, max_size=60))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_nvram_loss_preserves_flushed_prefix(self, ops):
        ftl = fresh_ftl()
        durable: dict[int, bytes] = {}   # state as of the last flush
        pending: dict[int, bytes] = {}
        for op, lba, payload in ops:
            if op == "write":
                ftl.write(lba, payload)
                pending[lba] = payload
            else:
                ftl.flush()
                durable.update(pending)
                pending.clear()
        recovered = PageMappedFTL.remount(ftl.chip, N_LBAS, ftl.config,
                                          buffer_entries=None)
        for lba, expected in durable.items():
            if lba in pending:
                # Rewritten after the flush: the device may legitimately
                # hold either the durable or a later (drained) version.
                got = recovered.read(lba).rstrip(b"\0")
                assert got in (expected.rstrip(b"\0"),
                               pending[lba].rstrip(b"\0"))
            else:
                assert recovered.read(lba).rstrip(b"\0") == \
                    expected.rstrip(b"\0")


def assert_state_equal(live: PageMappedFTL,
                       recovered: PageMappedFTL) -> None:
    """Recovered fast-path state must equal the live device's, exactly.

    Open blocks are the one sanctioned difference: remount deliberately
    closes any partially written open block (and frees never-written
    ones), so the expected closed/free sets are adjusted for blocks that
    were open at crash time.
    """
    recovered._audit_fastpath()
    assert recovered._l2p.tolist() == live._l2p.tolist()
    assert recovered._valid_counts.tolist() == live._valid_counts.tolist()
    assert recovered._mapped_lbas == live._mapped_lbas
    assert recovered.live_lbas() == live.live_lbas()
    assert list(recovered._erase_counts) == list(live._erase_counts)
    assert recovered._dead_blocks == live._dead_blocks
    assert recovered.usable_opage_slots() == live.usable_opage_slots()
    # Partition check: open blocks with >=1 programmed fPage close on
    # remount; untouched open blocks return to the free pool.
    expected_closed = set(live._closed_blocks)
    expected_free = set(live._free_blocks.array().tolist())
    for state in live._open.values():
        if state is None:
            continue
        block, cursor = state
        (expected_closed if cursor > 0 else expected_free).add(block)
    assert set(recovered._closed_blocks.array().tolist()) == expected_closed
    assert set(recovered._free_blocks.array().tolist()) == expected_free
    assert {k: recovered.buffer.get(k) for k in recovered.buffer.keys()} \
        == {k: live.buffer.get(k) for k in live.buffer.keys()}


class TestRemountStateEquality:
    @given(ops=st.lists(operation, min_size=1, max_size=80),
           crash_fraction=st.floats(0.1, 1.0))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_rebuild_reconstructs_fastpath_state(self, ops,
                                                 crash_fraction):
        ftl = fresh_ftl()
        crash_point = max(1, int(len(ops) * crash_fraction))
        for op, lba, payload in ops[:crash_point]:
            if op == "write":
                ftl.write(lba, payload)
            else:
                ftl.flush()
        entries = [(lba, ftl.buffer.get(lba)) for lba in ftl.buffer.keys()]
        recovered = PageMappedFTL.remount(ftl.chip, N_LBAS, ftl.config,
                                          entries)
        assert_state_equal(ftl, recovered)

    @pytest.mark.parametrize("seed", [0, 3, 8])
    def test_state_equality_under_wear(self, make_chip, ftl_config, seed):
        """Same property on a worn device: low PEC limit and process
        variation drive pages through tiredness levels (and blocks to
        death) before the crash."""
        ftl = PageMappedFTL.for_chip(
            make_chip(seed=seed, inject_errors=False), ftl_config)
        rng = np.random.default_rng(seed)
        payload_pool = [bytes([i]) * 12 for i in range(7)]
        for i in range(1200):
            lba = int(rng.integers(0, ftl.n_lbas))
            ftl.write(lba, payload_pool[i % 7])
            if i % 97 == 0:
                ftl.flush()
        entries = [(lba, ftl.buffer.get(lba)) for lba in ftl.buffer.keys()]
        recovered = PageMappedFTL.remount(ftl.chip, ftl.n_lbas,
                                          ftl.config, entries)
        assert_state_equal(ftl, recovered)
        # And the recovered device keeps serving the same data.
        for lba in range(ftl.n_lbas):
            assert recovered.read(lba) == ftl.read(lba)
