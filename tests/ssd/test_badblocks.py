"""Unit tests for the bad-block ledger."""

import pytest

from repro.errors import ConfigError
from repro.ssd.badblocks import DEFAULT_BRICK_THRESHOLD, BadBlockLedger


class TestLedger:
    def test_default_threshold_matches_paper(self):
        assert DEFAULT_BRICK_THRESHOLD == 0.025

    def test_mark_and_query(self):
        ledger = BadBlockLedger(100)
        ledger.mark_bad(7)
        assert ledger.is_bad(7)
        assert not ledger.is_bad(8)
        assert ledger.bad_count == 1
        assert ledger.bad_fraction == pytest.approx(0.01)

    def test_mark_idempotent(self):
        ledger = BadBlockLedger(10)
        ledger.mark_bad(3)
        ledger.mark_bad(3)
        assert ledger.bad_count == 1

    def test_exceeded_is_strict(self):
        # 2.5 % of 200 blocks = 5 blocks: at exactly 5 the device survives.
        ledger = BadBlockLedger(200, brick_threshold=0.025)
        for block in range(5):
            ledger.mark_bad(block)
        assert not ledger.exceeded
        ledger.mark_bad(5)
        assert ledger.exceeded

    def test_out_of_range_block(self):
        ledger = BadBlockLedger(10)
        with pytest.raises(IndexError):
            ledger.mark_bad(10)

    def test_bad_blocks_snapshot(self):
        ledger = BadBlockLedger(10)
        ledger.mark_bad(2)
        ledger.mark_bad(4)
        assert ledger.bad_blocks() == frozenset({2, 4})

    @pytest.mark.parametrize("kwargs", [
        {"total_blocks": 0},
        {"total_blocks": 10, "brick_threshold": 0.0},
        {"total_blocks": 10, "brick_threshold": 1.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            BadBlockLedger(**kwargs)
