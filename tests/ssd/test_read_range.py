"""Tests for the scatter-gather read path."""

import numpy as np
import pytest

from repro.errors import ConfigError, UncorrectableError
from repro.ssd.ftl import FTLConfig, PageMappedFTL
from repro.workloads.generators import stamp_payload


@pytest.fixture
def ftl(make_chip, ftl_config):
    return PageMappedFTL.for_chip(make_chip(seed=2, variation_sigma=0.0),
                                  ftl_config)


class TestReadRange:
    def test_matches_single_reads(self, ftl):
        for lba in range(40):
            ftl.write(lba, stamp_payload(lba, 1))
        ftl.flush()
        batch = ftl.read_range(0, 40)
        assert len(batch) == 40
        for lba in range(40):
            assert batch[lba] == ftl.read(lba)

    def test_mixes_buffer_flash_and_zeros(self, ftl):
        ftl.write(0, b"flashed")
        ftl.flush()
        ftl.write(1, b"buffered")
        # LBA 2 never written.
        batch = ftl.read_range(0, 3)
        assert batch[0].rstrip(b"\0") == b"flashed"
        assert batch[1].rstrip(b"\0") == b"buffered"
        assert batch[2] == bytes(4096)

    def test_sequential_layout_senses_fpages_once(self, ftl):
        # Freshly written sequential data: 40 LBAs on 10 fPages -> exactly
        # 10 chip reads for the whole range.
        for lba in range(40):
            ftl.write(lba, b"x")
        ftl.flush()
        before = ftl.chip.stats.reads
        ftl.read_range(0, 40)
        assert ftl.chip.stats.reads - before == 10

    def test_fragmented_layout_costs_more_senses(self, ftl):
        rng = np.random.default_rng(0)
        for lba in range(40):
            ftl.write(lba, b"x")
        # Fragment the mapping with scattered overwrites.
        for _ in range(400):
            ftl.write(int(rng.integers(0, 40)), b"y")
        ftl.flush()
        before = ftl.chip.stats.reads
        ftl.read_range(0, 40)
        senses = ftl.chip.stats.reads - before
        assert senses > 10  # no longer densely packed

    def test_counts_host_reads(self, ftl):
        ftl.write(0, b"a")
        ftl.flush()
        ftl.read_range(0, 8)
        assert ftl.stats.host_reads == 8

    def test_lost_lba_raises(self, ftl):
        ftl.write(5, b"doomed")
        ftl.flush()
        ftl._lose_lba(5, int(ftl._l2p[5]))
        with pytest.raises(UncorrectableError):
            ftl.read_range(0, 8)

    def test_bounds_checked(self, ftl):
        with pytest.raises(ConfigError):
            ftl.read_range(0, 0)
        with pytest.raises(Exception):
            ftl.read_range(ftl.n_lbas - 2, 5)


class TestDeviceReadRange:
    def test_salamander_minidisk_range(self, make_salamander):
        device = make_salamander()
        for lba in range(8):
            device.write(1, lba, stamp_payload(lba, 7))
        device.flush()
        batch = device.read_range(1, 0, 8)
        for lba in range(8):
            assert batch[lba] == device.read(1, lba)

    def test_salamander_range_bounds(self, make_salamander):
        device = make_salamander()
        with pytest.raises(ConfigError):
            device.read_range(0, device.msize_lbas - 2, 4)

    def test_baseline_gated_when_bricked(self, make_baseline):
        from repro.errors import DeviceBrickedError
        device = make_baseline()
        device._failed = True
        with pytest.raises(DeviceBrickedError):
            device.read_range(0, 4)

    def test_volume_read_chunk_uses_scatter_gather(self, make_salamander):
        from repro.difs.volume import MinidiskVolume
        device = make_salamander()
        volume = MinidiskVolume("v", "n", 4, device, 0)
        volume.write_chunk(0, [b"a", b"b", b"c", b"d"])
        device.flush()
        before = device.chip.stats.reads
        payloads = volume.read_chunk(0)
        assert payloads[3].rstrip(b"\0") == b"d"
        assert device.chip.stats.reads - before == 1  # one fPage sense
