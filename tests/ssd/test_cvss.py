"""Unit tests for the CVSS capacity-variant comparator."""

import numpy as np
import pytest

from repro.errors import (
    ConfigError,
    DeviceBrickedError,
    OutOfSpaceError,
    ReproError,
)
from repro.ssd.cvss import CVSSConfig, CVSSDevice
from repro.ssd.ftl import FTLConfig


def churn(device, utilization=0.6, seed=0, max_writes=500_000):
    """Overwrite within the shrinking capacity until the device dies."""
    rng = np.random.default_rng(seed)
    writes = 0
    try:
        while writes < max_writes:
            capacity = getattr(device, "capacity_lbas", device.n_lbas)
            hot = max(1, int(utilization * capacity))
            device.write(int(rng.integers(0, hot)), b"x")
            writes += 1
    except ReproError as error:
        return writes, error
    return writes, None


class TestConfig:
    def test_max_level_must_be_zero(self, ftl_config):
        from dataclasses import replace
        with pytest.raises(ConfigError):
            CVSSConfig(ftl=replace(ftl_config, max_level=1))

    def test_retire_rule_validated(self, ftl_config):
        with pytest.raises(ConfigError):
            CVSSConfig(ftl=ftl_config, retire_rule="whatever")


class TestShrinking:
    def test_device_shrinks_instead_of_bricking(self, make_cvss):
        device = make_cvss(seed=1)
        initial = device.capacity_lbas
        churn(device)
        assert device.capacity_lbas < initial
        assert device.stats.retired_blocks > 0

    def test_shrink_listener_called_monotonically(self, make_cvss):
        device = make_cvss(seed=1)
        capacities = []
        device.shrink_listener = capacities.append
        churn(device)
        assert capacities, "expected at least one shrink event"
        assert all(a > b for a, b in zip(capacities, capacities[1:]))

    def test_writes_beyond_capacity_rejected(self, make_cvss):
        device = make_cvss(seed=1)
        with pytest.raises(OutOfSpaceError):
            device.write(device.capacity_lbas, b"x")

    def test_dead_device_rejects_io(self, make_cvss):
        device = make_cvss(seed=1)
        churn(device, utilization=0.7)
        if not device.is_alive:
            with pytest.raises(DeviceBrickedError):
                device.read(0)

    def test_outlives_baseline_on_same_chip(self, make_cvss, make_baseline):
        base_writes, _ = churn(make_baseline(seed=1), utilization=0.6)
        cvss_writes, _ = churn(make_cvss(seed=1), utilization=0.6)
        assert cvss_writes > base_writes

    def test_lower_utilization_extends_life(self, make_cvss):
        # CVSS's defining dependence on host free space (paper §1, §4).
        high, _ = churn(make_cvss(seed=1), utilization=0.72)
        low, _ = churn(make_cvss(seed=1), utilization=0.45)
        assert low > high


class TestRetireRules:
    def test_avg_rule_retires_later_than_first_page(self, make_cvss):
        first = make_cvss(seed=1, retire_rule="first-page")
        churn(first)
        avg = make_cvss(seed=1, retire_rule="avg-rber")
        churn(avg)
        # The average rule tolerates weak pages, so it retires fewer blocks
        # by the time the device dies — and wears the flash further.
        assert (avg.chip.wear_summary()["mean_pec"]
                >= first.chip.wear_summary()["mean_pec"])

    def test_avg_rule_risks_data_loss(self, make_cvss):
        # Keeping overworn pages in service has a price: uncorrectable
        # reads. The conservative rule should see none.
        device = make_cvss(seed=3, retire_rule="avg-rber")
        churn(device, utilization=0.7)
        conservative = make_cvss(seed=3, retire_rule="first-page")
        churn(conservative, utilization=0.7)
        assert (device.stats.lost_opages
                >= conservative.stats.lost_opages)
