"""Unit tests for the page-mapped FTL core."""

import numpy as np
import pytest

from repro.errors import ConfigError, InvalidLBAError, UncorrectableError
from repro.ssd.ftl import LOST, UNMAPPED, FTLConfig, PageMappedFTL
from repro.workloads.generators import stamp_payload


@pytest.fixture
def ftl(make_chip, ftl_config):
    chip = make_chip(seed=2, variation_sigma=0.0)
    return PageMappedFTL.for_chip(chip, ftl_config)


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"overprovision": -0.1},
        {"overprovision": 1.0},
        {"gc_reserve_blocks": 0},
        {"buffer_opages": 0},
        {"gc_policy": "nonsense"},
        {"max_level": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            FTLConfig(**kwargs)

    def test_max_level_must_be_below_dead(self, make_chip):
        with pytest.raises(ConfigError):
            PageMappedFTL(make_chip(), 64, FTLConfig(max_level=4))

    def test_headroom_enforced(self, make_chip):
        chip = make_chip()
        with pytest.raises(ConfigError):
            PageMappedFTL(chip, chip.geometry.total_opage_slots, FTLConfig())

    def test_for_chip_respects_overprovision(self, make_chip):
        chip = make_chip()
        ftl = PageMappedFTL.for_chip(chip, FTLConfig(overprovision=0.5))
        assert ftl.n_lbas == chip.geometry.total_opage_slots // 2


class TestReadWrite:
    def test_unwritten_reads_zeros(self, ftl):
        assert ftl.read(0) == bytes(4096)

    def test_buffered_write_is_readable(self, ftl):
        ftl.write(5, b"hello")
        assert ftl.read(5).rstrip(b"\0") == b"hello"

    def test_flushed_write_is_readable(self, ftl):
        ftl.write(5, b"hello")
        ftl.flush()
        assert len(ftl.buffer) == 0
        assert ftl.read(5).rstrip(b"\0") == b"hello"

    def test_overwrite_returns_newest(self, ftl):
        ftl.write(5, b"v1")
        ftl.flush()
        ftl.write(5, b"v2")
        ftl.flush()
        assert ftl.read(5).rstrip(b"\0") == b"v2"

    def test_many_writes_roundtrip(self, ftl):
        for lba in range(200):
            ftl.write(lba, stamp_payload(lba, 1))
        ftl.flush()
        for lba in range(200):
            assert ftl.read(lba).rstrip(b"\0") == stamp_payload(lba, 1)

    def test_lba_bounds(self, ftl):
        with pytest.raises(InvalidLBAError):
            ftl.read(ftl.n_lbas)
        with pytest.raises(InvalidLBAError):
            ftl.write(-1, b"")

    def test_oversized_write_rejected(self, ftl):
        with pytest.raises(ConfigError):
            ftl.write(0, b"x" * 4097)

    def test_capacity_bytes(self, ftl):
        assert ftl.capacity_bytes == ftl.n_lbas * 4096


class TestTrim:
    def test_trim_mapped_lba(self, ftl):
        ftl.write(3, b"data")
        ftl.flush()
        ftl.trim(3)
        assert ftl.read(3) == bytes(4096)

    def test_trim_buffered_lba(self, ftl):
        ftl.write(3, b"data")
        ftl.trim(3)
        assert ftl.read(3) == bytes(4096)
        ftl.flush()
        assert ftl.read(3) == bytes(4096)

    def test_trim_frees_live_space(self, ftl):
        for lba in range(64):
            ftl.write(lba, b"x")
        ftl.flush()
        before = ftl.live_lbas()
        for lba in range(32):
            ftl.trim(lba)
        assert ftl.live_lbas() == before - 32


class TestGarbageCollection:
    def test_sustained_overwrites_reclaim_space(self, ftl):
        # Working set near capacity, overwritten repeatedly: GC must keep up.
        rng = np.random.default_rng(0)
        hot = int(ftl.n_lbas * 0.7)
        for i in range(6 * ftl.n_lbas):
            lba = int(rng.integers(0, hot))
            ftl.write(lba, stamp_payload(lba, i))
        assert ftl.stats.erases > 0
        assert ftl.stats.gc_relocations > 0

    def test_write_amplification_reasonable(self, ftl):
        rng = np.random.default_rng(0)
        hot = int(ftl.n_lbas * 0.5)
        for i in range(6 * ftl.n_lbas):
            lba = int(rng.integers(0, hot))
            ftl.write(lba, b"")
        waf = ftl.stats.write_amplification
        assert 1.0 <= waf < 3.0

    def test_data_survives_gc(self, ftl):
        rng = np.random.default_rng(1)
        latest = {}
        for i in range(4 * ftl.n_lbas):
            lba = int(rng.integers(0, ftl.n_lbas // 2))
            payload = stamp_payload(lba, i)
            ftl.write(lba, payload)
            latest[lba] = payload
        for lba, payload in latest.items():
            assert ftl.read(lba).rstrip(b"\0") == payload

    def test_wear_leveling_keeps_erases_even(self, ftl):
        rng = np.random.default_rng(2)
        for i in range(8 * ftl.n_lbas):
            ftl.write(int(rng.integers(0, ftl.n_lbas // 2)), b"")
        counts = ftl._erase_counts
        worked = counts[counts > 0]
        assert worked.size > 1
        assert counts.max() - counts.min() <= max(4, 0.5 * counts.mean())

    def test_cost_benefit_policy_also_works(self, make_chip):
        config = FTLConfig(overprovision=0.25, buffer_opages=8,
                           gc_policy="cost-benefit")
        ftl = PageMappedFTL.for_chip(make_chip(variation_sigma=0.0), config)
        rng = np.random.default_rng(3)
        for i in range(4 * ftl.n_lbas):
            lba = int(rng.integers(0, ftl.n_lbas // 2))
            ftl.write(lba, stamp_payload(lba, i))
        assert ftl.stats.erases > 0


class TestAccounting:
    def test_usable_slots_initially_all(self, ftl):
        assert ftl.usable_opage_slots() == ftl.geometry.total_opage_slots

    def test_retired_page_reduces_usable_slots(self, ftl):
        ftl.chip.retire(0)
        assert (ftl.usable_opage_slots()
                == ftl.geometry.total_opage_slots - 4)

    def test_promoted_page_reduces_usable_slots_by_level(self, ftl):
        ftl.chip.set_level(0, 1)
        assert (ftl.usable_opage_slots()
                == ftl.geometry.total_opage_slots - 1)

    def test_live_lbas_counts_buffer_and_map(self, ftl):
        ftl.write(0, b"a")
        ftl.write(1, b"b")
        assert ftl.live_lbas() == 2
        ftl.flush()
        assert ftl.live_lbas() == 2
        ftl.write(0, b"c")  # overwrite: still 2 live
        assert ftl.live_lbas() == 2


class TestMediaErrors:
    def test_lost_lba_raises_until_rewritten(self, ftl):
        ftl.write(9, b"data")
        ftl.flush()
        # Simulate a media error by forcing the mapping to LOST.
        slot = int(ftl._l2p[9])
        ftl._lose_lba(9, slot)
        with pytest.raises(UncorrectableError):
            ftl.read(9)
        ftl.write(9, b"fresh")
        assert ftl.read(9).rstrip(b"\0") == b"fresh"

    def test_lose_lba_updates_stats(self, ftl):
        ftl.write(9, b"data")
        ftl.flush()
        ftl._lose_lba(9, int(ftl._l2p[9]))
        assert ftl.stats.lost_opages == 1
        assert ftl.stats.uncorrectable_reads == 1
