"""Tests for power-loss recovery: OOB replay and remount."""

import numpy as np
import pytest

import repro.errors as E
from repro.ssd.device import BaselineSSD, SSDConfig
from repro.ssd.ftl import FTLConfig, PageMappedFTL
from repro.workloads.generators import stamp_payload


def crash_and_remount(ftl: PageMappedFTL, keep_buffer: bool = True):
    """Simulate power loss: only chip state (and optionally NVRAM) survive."""
    entries = ([(lba, ftl.buffer.get(lba)) for lba in ftl.buffer.keys()]
               if keep_buffer else None)
    return PageMappedFTL.remount(ftl.chip, ftl.n_lbas, ftl.config, entries)


class TestRemount:
    def test_flushed_data_survives(self, make_chip, ftl_config):
        ftl = PageMappedFTL.for_chip(make_chip(variation_sigma=0.0),
                                     ftl_config)
        for lba in range(60):
            ftl.write(lba, stamp_payload(lba, 1))
        ftl.flush()
        recovered = crash_and_remount(ftl)
        for lba in range(60):
            assert recovered.read(lba).rstrip(b"\0") == stamp_payload(lba, 1)

    def test_newest_version_wins(self, make_chip, ftl_config):
        ftl = PageMappedFTL.for_chip(make_chip(variation_sigma=0.0),
                                     ftl_config)
        for generation in range(5):
            for lba in range(24):
                ftl.write(lba, stamp_payload(lba, generation))
        ftl.flush()
        recovered = crash_and_remount(ftl)
        for lba in range(24):
            assert recovered.read(lba).rstrip(b"\0") == \
                stamp_payload(lba, 4)

    def test_survives_gc_relocations(self, make_chip, ftl_config):
        ftl = PageMappedFTL.for_chip(make_chip(variation_sigma=0.0),
                                     ftl_config)
        rng = np.random.default_rng(0)
        latest = {}
        for i in range(5 * ftl.n_lbas):
            lba = int(rng.integers(0, ftl.n_lbas // 2))
            payload = stamp_payload(lba, i)
            ftl.write(lba, payload)
            latest[lba] = payload
        ftl.flush()
        assert ftl.stats.erases > 0  # GC actually ran
        recovered = crash_and_remount(ftl)
        for lba, payload in latest.items():
            assert recovered.read(lba).rstrip(b"\0") == payload

    def test_nvram_buffer_restored(self, make_chip, ftl_config):
        ftl = PageMappedFTL.for_chip(make_chip(variation_sigma=0.0),
                                     ftl_config)
        ftl.write(0, b"flushed")
        ftl.flush()
        ftl.write(1, b"unflushed")
        recovered = crash_and_remount(ftl, keep_buffer=True)
        assert recovered.read(1).rstrip(b"\0") == b"unflushed"

    def test_nvram_failure_loses_unflushed_only(self, make_chip,
                                                ftl_config):
        ftl = PageMappedFTL.for_chip(make_chip(variation_sigma=0.0),
                                     ftl_config)
        ftl.write(0, b"flushed")
        ftl.flush()
        ftl.write(1, b"unflushed")
        recovered = crash_and_remount(ftl, keep_buffer=False)
        assert recovered.read(0).rstrip(b"\0") == b"flushed"
        assert recovered.read(1) == bytes(4096)

    def test_trim_resurrection_is_documented_semantics(self, make_chip,
                                                       ftl_config):
        ftl = PageMappedFTL.for_chip(make_chip(variation_sigma=0.0),
                                     ftl_config)
        ftl.write(3, b"zombie")
        ftl.flush()
        ftl.trim(3)
        assert ftl.read(3) == bytes(4096)
        recovered = crash_and_remount(ftl)
        # No trim journal: the trimmed write resurrects.
        assert recovered.read(3).rstrip(b"\0") == b"zombie"

    def test_remounted_device_keeps_working(self, make_chip, ftl_config):
        ftl = PageMappedFTL.for_chip(make_chip(variation_sigma=0.0),
                                     ftl_config)
        rng = np.random.default_rng(1)
        for i in range(3 * ftl.n_lbas):
            ftl.write(int(rng.integers(0, ftl.n_lbas // 2)),
                      stamp_payload(i, i))
        ftl.flush()
        recovered = crash_and_remount(ftl)
        # Keep writing well past another device-worth of traffic.
        latest = {}
        for i in range(3 * recovered.n_lbas):
            lba = int(rng.integers(0, recovered.n_lbas // 2))
            payload = stamp_payload(lba, 10_000 + i)
            recovered.write(lba, payload)
            latest[lba] = payload
        for lba, payload in latest.items():
            assert recovered.read(lba).rstrip(b"\0") == payload

    def test_write_seq_continues_after_remount(self, make_chip, ftl_config):
        ftl = PageMappedFTL.for_chip(make_chip(variation_sigma=0.0),
                                     ftl_config)
        for lba in range(16):
            ftl.write(lba, b"a")
        ftl.flush()
        recovered = crash_and_remount(ftl)
        before = recovered._write_seq
        recovered.write(0, b"b")
        recovered.flush()
        assert recovered._write_seq > before >= ftl._write_seq - 1

    def test_accounting_matches_fresh_scan(self, make_chip, ftl_config):
        ftl = PageMappedFTL.for_chip(make_chip(variation_sigma=0.0),
                                     ftl_config)
        rng = np.random.default_rng(2)
        for i in range(4 * ftl.n_lbas):
            ftl.write(int(rng.integers(0, ftl.n_lbas // 2)), b"x")
        ftl.flush()
        recovered = crash_and_remount(ftl)
        assert recovered.live_lbas() == ftl.live_lbas()
        assert np.array_equal(recovered._valid_per_block,
                              ftl._valid_per_block)


class TestBaselineRemount:
    def test_ledger_rebuilt_from_retired_pages(self, make_baseline,
                                               make_chip, ftl_config):
        device = make_baseline(seed=1)
        rng = np.random.default_rng(0)
        try:
            while True:
                device.write(int(rng.integers(0, device.n_lbas // 2)), b"x")
        except E.ReproError:
            pass
        bad_before = device.ledger.bad_blocks()
        remounted = BaselineSSD.remount(
            device.chip, device.device_config, device.n_lbas)
        assert remounted.ledger.bad_blocks() == bad_before
        assert remounted.is_failed == device.is_failed

    def test_healthy_device_remounts_alive(self, make_baseline):
        device = make_baseline(seed=2)
        device.write(0, b"hello")
        device.flush()
        remounted = BaselineSSD.remount(
            device.chip, device.device_config, device.n_lbas)
        assert remounted.is_alive
        assert remounted.read(0).rstrip(b"\0") == b"hello"
