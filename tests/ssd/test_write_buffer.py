"""Unit tests for the NVRAM write buffer."""

import pytest

from repro.errors import ConfigError
from repro.ssd.write_buffer import WriteBuffer


class TestBasics:
    def test_put_get(self):
        buf = WriteBuffer(4)
        buf.put(7, b"seven")
        assert buf.get(7) == b"seven"
        assert buf.get(8) is None
        assert 7 in buf and 8 not in buf

    def test_overwrite_updates_in_place(self):
        buf = WriteBuffer(4)
        buf.put(1, b"old")
        buf.put(2, b"two")
        buf.put(1, b"new")
        assert len(buf) == 2
        assert buf.get(1) == b"new"
        # Drain order unchanged: 1 was inserted first, stays first.
        assert [k for k, _ in buf.pop_batch(2)] == [1, 2]

    def test_full_rejects_new_keys_but_not_overwrites(self):
        buf = WriteBuffer(2)
        buf.put(1, b"a")
        buf.put(2, b"b")
        assert buf.is_full
        buf.put(1, b"a2")  # overwrite allowed
        with pytest.raises(ConfigError):
            buf.put(3, b"c")

    def test_discard(self):
        buf = WriteBuffer(4)
        buf.put(1, b"a")
        assert buf.discard(1) is True
        assert buf.discard(1) is False
        assert len(buf) == 0


class TestPopBatch:
    def test_fifo_order(self):
        buf = WriteBuffer(8)
        for key in (5, 3, 9):
            buf.put(key, str(key).encode())
        assert [k for k, _ in buf.pop_batch(3)] == [5, 3, 9]

    def test_partial_batch(self):
        buf = WriteBuffer(8)
        buf.put(1, b"a")
        batch = buf.pop_batch(4)
        assert batch == [(1, b"a")]
        assert len(buf) == 0

    def test_zero_count(self):
        buf = WriteBuffer(8)
        buf.put(1, b"a")
        assert buf.pop_batch(0) == []
        assert len(buf) == 1

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            WriteBuffer(8).pop_batch(-1)

    def test_keys_view(self):
        buf = WriteBuffer(8)
        buf.put(2, b"")
        buf.put(1, b"")
        assert buf.keys() == [2, 1]


def test_capacity_validation():
    with pytest.raises(ConfigError):
        WriteBuffer(0)
