"""Tests for the proactive scrubber and read-disturb modelling."""

import numpy as np
import pytest

from repro.errors import ConfigError, UncorrectableError
from repro.flash.chip import FlashChip, PageState
from repro.flash.geometry import FlashGeometry
from repro.ssd.ftl import FTLConfig, PageMappedFTL


def worn_ftl(make_chip, pec_past_limit: int = 2):
    """An FTL whose block 0 holds data on pages near their wear limit."""
    chip = make_chip(seed=3, variation_sigma=0.0)
    ftl = PageMappedFTL.for_chip(chip, FTLConfig(
        overprovision=0.25, buffer_opages=8))
    return chip, ftl


def _age_written_blocks(chip, pec: int) -> None:
    """Set PEC of every block holding written pages (test backdoor)."""
    states = chip.state_array()
    for block in range(chip.geometry.blocks):
        pages = list(chip.geometry.fpage_range_of_block(block))
        if any(states[p] == 1 for p in pages):  # WRITTEN code
            chip._pec[pages] = pec


class TestScrub:
    def test_scrub_clean_device_is_noop(self, make_chip):
        chip, ftl = worn_ftl(make_chip)
        for lba in range(32):
            ftl.write(lba, b"x")
        ftl.flush()
        assert ftl.scrub() == 0
        assert ftl.stats.wear_relocations == 0

    def test_scrub_relocates_overworn_written_pages(self, make_chip,
                                                    policy, fast_model):
        chip = make_chip(seed=3, variation_sigma=0.0)
        ftl = PageMappedFTL.for_chip(chip, FTLConfig(
            overprovision=0.25, buffer_opages=8))
        for lba in range(8):
            ftl.write(lba, f"keep-{lba}".encode())
        ftl.flush()
        # Age the data-holding blocks past the L0 limit while preserving
        # the mapping (as if the data had been written at end of life);
        # free blocks stay fresh so the scrubber has somewhere to go.
        limit = int(policy.pec_limits(fast_model)[0])
        _age_written_blocks(chip, limit + 1)
        assert any(chip.is_overworn(f)
                   for f in range(chip.geometry.total_fpages)
                   if chip.state(f) is PageState.WRITTEN)
        moved = ftl.scrub()
        assert moved >= 8
        assert ftl.stats.wear_relocations == moved
        # All data must now live on pages that are not overworn...
        for lba in range(8):
            slot = int(ftl._l2p[lba])
            fpage = slot // chip.geometry.opages_per_fpage
            assert not chip.is_overworn(fpage)
            assert ftl.read(lba).rstrip(b"\0") == f"keep-{lba}".encode()

    def test_scrub_budget_and_rolling_cursor(self, make_chip, policy,
                                             fast_model):
        chip = make_chip(seed=3, variation_sigma=0.0)
        ftl = PageMappedFTL.for_chip(chip, FTLConfig(
            overprovision=0.25, buffer_opages=8))
        for lba in range(64):
            ftl.write(lba, b"d")
        ftl.flush()
        _age_written_blocks(chip, int(policy.pec_limits(fast_model)[0]) + 1)
        total = chip.geometry.total_fpages
        first = ftl.scrub(max_fpages=total // 2)
        second = ftl.scrub(max_fpages=total // 2)
        # Two half-device sweeps cover everything once.
        assert first + second >= 64

    def test_autoscrub_runs_during_writes(self, make_chip):
        chip = make_chip(seed=3, variation_sigma=0.0)
        ftl = PageMappedFTL.for_chip(chip, FTLConfig(
            overprovision=0.25, buffer_opages=8,
            scrub_interval_writes=16, scrub_batch_fpages=32))
        rng = np.random.default_rng(0)
        for i in range(4 * ftl.n_lbas):
            ftl.write(int(rng.integers(0, ftl.n_lbas // 2)), b"x")
        # No overworn pages at this low wear, but the machinery must have
        # cycled without disturbing correctness.
        assert ftl.stats.host_writes == 4 * ftl.n_lbas

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            FTLConfig(scrub_interval_writes=-1)
        with pytest.raises(ConfigError):
            FTLConfig(scrub_batch_fpages=0)


class TestStreamSeparation:
    def test_streams_use_distinct_open_blocks(self, make_chip):
        chip = make_chip(seed=3, variation_sigma=0.0)
        ftl = PageMappedFTL.for_chip(chip, FTLConfig(
            overprovision=0.25, buffer_opages=8, stream_separation=True))
        rng = np.random.default_rng(0)
        for i in range(4 * ftl.n_lbas):
            ftl.write(int(rng.integers(0, ftl.n_lbas // 2)), b"x")
        host = ftl._open["host0"]
        gc = ftl._open["gc"]
        if host is not None and gc is not None:
            assert host[0] != gc[0]

    def test_separation_off_shares_one_block(self, make_chip):
        chip = make_chip(seed=3, variation_sigma=0.0)
        ftl = PageMappedFTL.for_chip(chip, FTLConfig(
            overprovision=0.25, buffer_opages=8, stream_separation=False))
        rng = np.random.default_rng(0)
        for i in range(4 * ftl.n_lbas):
            ftl.write(int(rng.integers(0, ftl.n_lbas // 2)), b"x")
        assert ftl._open["gc"] is None  # gc stream aliases host

    def test_separation_does_not_break_integrity(self, make_chip):
        from repro.workloads.generators import stamp_payload
        for separated in (True, False):
            chip = make_chip(seed=3, variation_sigma=0.0)
            ftl = PageMappedFTL.for_chip(chip, FTLConfig(
                overprovision=0.25, buffer_opages=8,
                stream_separation=separated))
            rng = np.random.default_rng(1)
            latest = {}
            for i in range(5 * ftl.n_lbas):
                lba = int(rng.integers(0, ftl.n_lbas // 2))
                payload = stamp_payload(lba, i)
                ftl.write(lba, payload)
                latest[lba] = payload
            for lba, payload in latest.items():
                assert ftl.read(lba).rstrip(b"\0") == payload


class TestReadDisturb:
    def test_disabled_by_default(self, tiny_geometry):
        chip = FlashChip(tiny_geometry, seed=1, variation_sigma=0.0)
        chip.program(0, [b"a", b"b", b"c", b"d"])
        before = chip.rber_of(0)
        for _ in range(100):
            chip.read(0, 0)
        assert chip.rber_of(0) == before
        assert chip.reads_since_erase(0) == 0

    def test_reads_raise_rber_blockwide(self, tiny_geometry):
        chip = FlashChip(tiny_geometry, seed=1, variation_sigma=0.0,
                         read_disturb_rber=1e-7)
        chip.program(0, [b"a"] * 4)
        chip.program(1, [b"b"] * 4)  # same block as fpage 0
        before = chip.rber_of(1)
        for _ in range(50):
            chip.read(0, 0)
        assert chip.reads_since_erase(1) == 50  # neighbour disturbed
        assert chip.rber_of(1) == pytest.approx(before + 50 * 1e-7)

    def test_erase_resets_disturb(self, tiny_geometry):
        chip = FlashChip(tiny_geometry, seed=1, variation_sigma=0.0,
                         read_disturb_rber=1e-7)
        chip.program(0, [b"a"] * 4)
        for _ in range(10):
            chip.read(0, 0)
        chip.erase(0)
        assert chip.reads_since_erase(0) == 0

    def test_heavy_reads_eventually_uncorrectable(self, tiny_geometry):
        chip = FlashChip(tiny_geometry, seed=1, variation_sigma=0.0,
                         read_disturb_rber=5e-4)
        chip.program(0, [b"a"] * 4)
        with pytest.raises(UncorrectableError):
            for _ in range(500):
                chip.read(0, 0)

    def test_negative_coefficient_rejected(self, tiny_geometry):
        with pytest.raises(ConfigError):
            FlashChip(tiny_geometry, read_disturb_rber=-1e-9)
