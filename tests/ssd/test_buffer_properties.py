"""Property tests for the write buffer's FIFO and filtering semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ssd.write_buffer import WriteBuffer

ops = st.lists(
    st.tuples(st.integers(0, 15), st.binary(min_size=0, max_size=4)),
    min_size=0, max_size=40)


class TestBufferProperties:
    @given(writes=ops)
    def test_fifo_of_first_insertions(self, writes):
        buffer = WriteBuffer(64)
        order = []
        for key, payload in writes:
            if key not in buffer:
                order.append(key)
            buffer.put(key, payload)
        drained = [k for k, _ in buffer.pop_batch(100)]
        assert drained == order

    @given(writes=ops, keep=st.sets(st.integers(0, 15)))
    def test_filtered_pop_leaves_others_untouched(self, writes, keep):
        buffer = WriteBuffer(64)
        latest = {}
        for key, payload in writes:
            buffer.put(key, payload)
            latest[key] = payload
        taken = buffer.pop_batch(100, keys=keep)
        assert all(key in keep for key, _ in taken)
        for key, payload in taken:
            assert payload == latest[key]
        # Everything not taken is still present with its latest payload.
        for key, payload in latest.items():
            if key not in keep:
                assert buffer.get(key) == payload

    @given(writes=ops, count=st.integers(0, 10))
    def test_pop_respects_count(self, writes, count):
        buffer = WriteBuffer(64)
        for key, payload in writes:
            buffer.put(key, payload)
        size_before = len(buffer)
        taken = buffer.pop_batch(count)
        assert len(taken) == min(count, size_before)
        assert len(buffer) == size_before - len(taken)
