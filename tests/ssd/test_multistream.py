"""Tests for multi-stream write hints."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ssd.ftl import FTLConfig, PageMappedFTL
from repro.workloads.generators import stamp_payload


def streamed_ftl(make_chip, streams: int) -> PageMappedFTL:
    return PageMappedFTL.for_chip(
        make_chip(variation_sigma=0.0),
        FTLConfig(overprovision=0.25, buffer_opages=8,
                  host_streams=streams))


class TestMultiStream:
    def test_stream_validated(self, make_chip):
        ftl = streamed_ftl(make_chip, 2)
        with pytest.raises(ConfigError):
            ftl.write(0, b"x", stream=2)
        with pytest.raises(ConfigError):
            ftl.write(0, b"x", stream=-1)
        with pytest.raises(ConfigError):
            FTLConfig(host_streams=0)

    def test_streams_land_in_distinct_blocks(self, make_chip):
        ftl = streamed_ftl(make_chip, 2)
        for lba in range(16):
            ftl.write(lba, b"hot", stream=0)
            ftl.write(64 + lba, b"cold", stream=1)
        ftl.flush()
        blocks = {0: set(), 1: set()}
        for lba, stream in [(i, 0) for i in range(16)] + \
                           [(64 + i, 1) for i in range(16)]:
            slot = int(ftl._l2p[lba])
            fpage = slot // ftl.geometry.opages_per_fpage
            blocks[stream].add(ftl.geometry.block_of_fpage(fpage))
        assert blocks[0].isdisjoint(blocks[1])

    def test_integrity_with_streams(self, make_chip):
        ftl = streamed_ftl(make_chip, 3)
        rng = np.random.default_rng(0)
        latest = {}
        for i in range(4 * ftl.n_lbas):
            lba = int(rng.integers(0, ftl.n_lbas // 2))
            stream = lba % 3
            payload = stamp_payload(lba, i)
            ftl.write(lba, payload, stream=stream)
            latest[lba] = payload
        for lba, payload in latest.items():
            assert ftl.read(lba).rstrip(b"\0") == payload

    def test_hot_cold_separation_reduces_waf(self, make_chip):
        """The multi-stream payoff: when hot updates and cold appends are
        *interleaved*, one stream mixes them in every block (GC must then
        relocate the cold rows out of mostly-dead blocks); tagging them
        keeps cold blocks fully valid and hot blocks fully dead."""

        def run(streams: int) -> float:
            ftl = streamed_ftl(make_chip, streams)
            rng = np.random.default_rng(1)
            hot_span = ftl.n_lbas // 4
            cold_next = ftl.n_lbas // 2
            cold_end = ftl.n_lbas - 16
            for i in range(8 * ftl.n_lbas):
                if i % 4 == 0 and cold_next < cold_end:
                    ftl.write(cold_next, b"cold",
                              stream=min(1, streams - 1))
                    cold_next = cold_next + 1 if cold_next + 1 < cold_end \
                        else ftl.n_lbas // 2
                else:
                    ftl.write(int(rng.integers(0, hot_span)), b"hot",
                              stream=0)
            return ftl.stats.write_amplification

        assert run(2) < run(1)

    def test_remount_preserves_stream_config(self, make_chip):
        ftl = streamed_ftl(make_chip, 2)
        ftl.write(0, b"data", stream=1)
        ftl.flush()
        recovered = PageMappedFTL.remount(ftl.chip, ftl.n_lbas, ftl.config)
        assert set(recovered._open) == {"host0", "host1", "gc"}
        assert recovered.read(0).rstrip(b"\0") == b"data"
