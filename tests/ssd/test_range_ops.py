"""Tests for range-granular trim and write."""

import pytest

from repro.errors import ConfigError
from repro.ssd.ftl import FTLConfig, PageMappedFTL
from repro.workloads.generators import stamp_payload


@pytest.fixture
def ftl(make_chip, ftl_config):
    return PageMappedFTL.for_chip(make_chip(variation_sigma=0.0),
                                  ftl_config)


class TestTrimRange:
    def test_discards_whole_range(self, ftl):
        for lba in range(16):
            ftl.write(lba, b"data")
        ftl.flush()
        ftl.trim_range(4, 8)
        for lba in range(16):
            expected = bytes(4096) if 4 <= lba < 12 else b"data".ljust(
                4096, b"\0")
            assert ftl.read(lba) == expected

    def test_covers_buffered_writes(self, ftl):
        ftl.write(0, b"buffered")
        ftl.trim_range(0, 4)
        assert ftl.read(0) == bytes(4096)
        ftl.flush()
        assert ftl.read(0) == bytes(4096)

    def test_counts_trims(self, ftl):
        ftl.trim_range(0, 10)
        assert ftl.stats.trims == 10

    def test_frees_space(self, ftl):
        for lba in range(32):
            ftl.write(lba, b"x")
        ftl.flush()
        before = ftl.live_lbas()
        ftl.trim_range(0, 32)
        assert ftl.live_lbas() == before - 32

    def test_validation(self, ftl):
        with pytest.raises(ConfigError):
            ftl.trim_range(0, 0)
        with pytest.raises(Exception):
            ftl.trim_range(ftl.n_lbas - 1, 2)


class TestWriteRange:
    def test_roundtrip(self, ftl):
        payloads = [stamp_payload(lba, 1) for lba in range(10, 26)]
        ftl.write_range(10, payloads)
        ftl.flush()
        for offset, payload in enumerate(payloads):
            assert ftl.read(10 + offset).rstrip(b"\0") == payload

    def test_sequential_batch_packs_densely(self, ftl):
        ftl.write_range(0, [b"x"] * 32)
        ftl.flush()
        # 32 consecutive LBAs -> 8 full fPages, no padding holes: a
        # subsequent range read needs exactly 8 senses.
        before = ftl.chip.stats.reads
        ftl.read_range(0, 32)
        assert ftl.chip.stats.reads - before == 8

    def test_validation(self, ftl):
        with pytest.raises(ConfigError):
            ftl.write_range(0, [])
        with pytest.raises(Exception):
            ftl.write_range(ftl.n_lbas - 1, [b"a", b"b"])
