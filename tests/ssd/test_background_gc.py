"""Tests for idle-time (background) garbage collection."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ssd.ftl import FTLConfig, PageMappedFTL


@pytest.fixture
def loaded_ftl(make_chip, ftl_config):
    """An FTL churned until the free pool is tight."""
    ftl = PageMappedFTL.for_chip(make_chip(variation_sigma=0.0),
                                 ftl_config)
    rng = np.random.default_rng(0)
    hot = int(ftl.n_lbas * 0.8)
    for _ in range(3 * ftl.n_lbas):
        ftl.write(int(rng.integers(0, hot)), b"x")
    return ftl


class TestBackgroundGC:
    def test_ticks_grow_the_free_pool(self, loaded_ftl):
        before = len(loaded_ftl._usable_free_blocks())
        performed = loaded_ftl.background_tick(max_collections=3,
                                               watermark_blocks=8)
        after = len(loaded_ftl._usable_free_blocks())
        assert performed > 0
        assert after >= before

    def test_respects_watermark(self, loaded_ftl):
        # Bring the pool up to a watermark, then further ticks are no-ops.
        while loaded_ftl.background_tick(max_collections=1,
                                         watermark_blocks=6):
            pass
        assert loaded_ftl.background_tick(max_collections=5,
                                          watermark_blocks=6) == 0

    def test_idle_gc_shrinks_foreground_tails(self, make_chip, ftl_config):
        from repro.workloads.generators import stamp_payload

        def run(with_idle_gc: bool) -> float:
            ftl = PageMappedFTL.for_chip(make_chip(variation_sigma=0.0),
                                         ftl_config)
            rng = np.random.default_rng(1)
            hot = int(ftl.n_lbas * 0.8)
            for i in range(6 * ftl.n_lbas):
                ftl.write(int(rng.integers(0, hot)), stamp_payload(i, i))
                if with_idle_gc and i % 4 == 0:
                    ftl.background_tick(max_collections=1,
                                        watermark_blocks=5)
            return ftl.stats.write_latency.percentile(99)

        assert run(True) <= run(False)

    def test_data_intact_after_background_work(self, make_chip, ftl_config):
        from repro.workloads.generators import stamp_payload
        ftl = PageMappedFTL.for_chip(make_chip(variation_sigma=0.0),
                                     ftl_config)
        rng = np.random.default_rng(2)
        latest = {}
        for i in range(4 * ftl.n_lbas):
            lba = int(rng.integers(0, ftl.n_lbas // 2))
            payload = stamp_payload(lba, i)
            ftl.write(lba, payload)
            latest[lba] = payload
            # Note the modest watermark: an aggressive one would burn
            # erase cycles on futile net-zero collections (GC churn).
            ftl.background_tick(max_collections=1, watermark_blocks=5)
        for lba, payload in latest.items():
            assert ftl.read(lba).rstrip(b"\0") == payload

    def test_validation(self, loaded_ftl):
        with pytest.raises(ConfigError):
            loaded_ftl.background_tick(max_collections=-1)
