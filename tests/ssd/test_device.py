"""Unit tests for the baseline SSD's failure semantics."""

import numpy as np
import pytest

from repro.errors import (
    ConfigError,
    DeviceBrickedError,
    DeviceReadOnlyError,
    OutOfSpaceError,
    ReproError,
)
from repro.ssd.device import BaselineSSD, SSDConfig
from repro.ssd.ftl import FTLConfig


def wear_to_death(device, seed=0, max_writes=500_000):
    """Random overwrites until the device refuses service."""
    rng = np.random.default_rng(seed)
    hot = int(device.n_lbas * 0.75)
    writes = 0
    with pytest.raises(ReproError) as excinfo:
        while writes < max_writes:
            device.write(int(rng.integers(0, hot)), b"x")
            writes += 1
    return writes, excinfo.value


class TestConfig:
    def test_max_level_must_be_zero(self, ftl_config):
        from dataclasses import replace
        with pytest.raises(ConfigError):
            SSDConfig(ftl=replace(ftl_config, max_level=1))

    def test_create_convenience(self, tiny_geometry, ftl_config):
        device = BaselineSSD.create(tiny_geometry,
                                    SSDConfig(ftl=ftl_config), seed=3)
        assert device.is_alive
        assert device.n_lbas > 0


class TestBasicIO:
    def test_roundtrip(self, make_baseline):
        device = make_baseline()
        device.write(0, b"hello")
        assert device.read(0).rstrip(b"\0") == b"hello"

    def test_smart_report(self, make_baseline):
        device = make_baseline()
        device.write(0, b"x")
        report = device.smart()
        assert report["alive"] == 1.0
        assert report["host_writes"] == 1
        assert report["bad_blocks"] == 0


class TestEndOfLife:
    def test_device_eventually_bricks(self, make_baseline):
        device = make_baseline(seed=1)
        writes, error = wear_to_death(device)
        assert isinstance(error, (DeviceBrickedError, OutOfSpaceError))
        assert not device.is_alive
        assert device.is_failed

    def test_bricked_device_rejects_everything(self, make_baseline):
        device = make_baseline(seed=1)
        wear_to_death(device)
        with pytest.raises(DeviceBrickedError):
            device.write(0, b"x")
        with pytest.raises(DeviceBrickedError):
            device.read(0)
        with pytest.raises(DeviceBrickedError):
            device.trim(0)

    def test_bricks_well_before_median_wear(self, make_baseline,
                                            fast_model, policy):
        # The paper's premise: devices die with "considerable lifetime
        # potential left" — mean PEC at death is below the rated limit.
        device = make_baseline(seed=1)
        wear_to_death(device)
        rated = policy.pec_limits(fast_model)[0]
        assert device.chip.wear_summary()["mean_pec"] < rated

    def test_bad_block_threshold_respected(self, make_baseline):
        device = make_baseline(seed=1)
        wear_to_death(device)
        # At death the ledger is just past the threshold, not far past:
        # retirement is block-granular, so one block's fraction is the step.
        step = 1 / device.geometry.blocks
        assert device.ledger.bad_fraction <= (
            device.device_config.brick_threshold + 2 * step)

    def test_read_only_mode(self, make_chip, ftl_config):
        device = BaselineSSD(
            make_chip(seed=1),
            SSDConfig(ftl=ftl_config, read_only_at_eol=True))
        rng = np.random.default_rng(0)
        hot = int(device.n_lbas * 0.75)
        payload_lba = 1
        device.write(payload_lba, b"keep-me")
        with pytest.raises(ReproError):
            while True:
                device.write(int(rng.integers(0, hot)), b"x")
        if device.is_read_only:
            # Reads still work in read-only end-of-life.
            device.read(payload_lba)
            with pytest.raises(DeviceReadOnlyError):
                device.write(0, b"x")

    def test_death_is_variation_dependent(self, make_baseline):
        # Different chips (seeds) die at different times — no magic constant.
        w1, _ = wear_to_death(make_baseline(seed=1))
        w2, _ = wear_to_death(make_baseline(seed=2))
        assert w1 != w2

    def test_no_variation_no_early_brick(self, make_baseline, fast_model,
                                         policy):
        # With sigma=0 every page has the same limit, so the device survives
        # until close to the rated PEC.
        device = make_baseline(seed=1, variation_sigma=0.0)
        wear_to_death(device)
        rated = policy.pec_limits(fast_model)[0]
        assert device.chip.wear_summary()["mean_pec"] >= 0.8 * rated
