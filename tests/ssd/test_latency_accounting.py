"""Tests for per-operation read-latency accounting."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ssd.stats import LatencyReservoir
from repro.ssd.ftl import FTLConfig, PageMappedFTL


class TestReservoir:
    def test_tracks_count_mean_max(self):
        reservoir = LatencyReservoir()
        for value in (10.0, 20.0, 30.0):
            reservoir.add(value)
        assert reservoir.count == 3
        assert reservoir.mean == pytest.approx(20.0)
        assert reservoir.max == 30.0

    def test_percentiles_on_uniform_data(self):
        reservoir = LatencyReservoir()
        for value in range(1, 1001):
            reservoir.add(float(value))
        assert reservoir.percentile(50) == pytest.approx(500, rel=0.05)
        assert reservoir.percentile(99) == pytest.approx(990, rel=0.05)

    def test_decimation_bounds_memory_but_keeps_shape(self):
        reservoir = LatencyReservoir(capacity=256)
        rng = np.random.default_rng(0)
        values = rng.exponential(100.0, size=50_000)
        for value in values:
            reservoir.add(float(value))
        assert len(reservoir._samples) <= 256
        assert reservoir.count == 50_000
        true_p99 = float(np.percentile(values, 99))
        assert reservoir.percentile(99) == pytest.approx(true_p99, rel=0.35)

    def test_empty_percentile_is_zero(self):
        assert LatencyReservoir().percentile(99) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            LatencyReservoir(capacity=1)
        reservoir = LatencyReservoir()
        with pytest.raises(ConfigError):
            reservoir.add(-1.0)
        with pytest.raises(ConfigError):
            reservoir.percentile(101)


class TestFTLLatencyAccounting:
    def test_flash_reads_recorded(self, make_chip, ftl_config):
        ftl = PageMappedFTL.for_chip(make_chip(variation_sigma=0.0),
                                     ftl_config)
        ftl.write(0, b"data")
        ftl.flush()
        for _ in range(10):
            ftl.read(0)
        assert ftl.stats.read_latency.count == 10
        assert ftl.stats.read_latency.mean > 0

    def test_buffer_hits_not_charged_flash_latency(self, make_chip,
                                                   ftl_config):
        ftl = PageMappedFTL.for_chip(make_chip(variation_sigma=0.0),
                                     ftl_config)
        ftl.write(0, b"data")  # stays buffered
        ftl.read(0)
        assert ftl.stats.read_latency.count == 0

    def test_read_range_records_one_sample(self, make_chip, ftl_config):
        ftl = PageMappedFTL.for_chip(make_chip(variation_sigma=0.0),
                                     ftl_config)
        for lba in range(8):
            ftl.write(lba, b"x")
        ftl.flush()
        ftl.read_range(0, 8)
        assert ftl.stats.read_latency.count == 1

    def test_worn_pages_inflate_latency(self, make_chip, policy,
                                        fast_model, ftl_config):
        ftl = PageMappedFTL.for_chip(make_chip(variation_sigma=0.0),
                                     ftl_config)
        for lba in range(16):
            ftl.write(lba, b"x")
        ftl.flush()
        for _ in range(20):
            ftl.read(0)
        fresh_mean = ftl.stats.read_latency.mean
        # Age the written blocks close to the L0 limit: retries ramp.
        from tests.ssd.test_scrub import _age_written_blocks
        limit = int(policy.pec_limits(fast_model)[0])
        _age_written_blocks(ftl.chip, limit - 1)
        worn = PageMappedFTL.remount(ftl.chip, ftl.n_lbas, ftl.config)
        worn.chip.inject_errors = False  # isolate the latency effect
        for _ in range(20):
            worn.read(0)
        assert worn.stats.read_latency.mean > fresh_mean

    def test_snapshot_contains_latency_fields(self, make_chip, ftl_config):
        ftl = PageMappedFTL.for_chip(make_chip(variation_sigma=0.0),
                                     ftl_config)
        ftl.write(0, b"x")
        ftl.flush()
        ftl.read(0)
        snapshot = ftl.stats.snapshot()
        assert snapshot["read_latency_mean_us"] > 0
        assert "read_latency_p99_us" in snapshot
