"""Property-based tests: the FTL is a correct block device.

Hypothesis drives random write/trim/read/flush sequences against a shadow
dict; the FTL must agree with the shadow at every point. Error injection is
off so any divergence is a logic bug, not a media event.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.ssd.ftl import FTLConfig, PageMappedFTL

N_LBAS = 96

operations = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, N_LBAS - 1),
                  st.binary(min_size=0, max_size=16)),
        st.tuples(st.just("trim"), st.integers(0, N_LBAS - 1), st.none()),
        st.tuples(st.just("read"), st.integers(0, N_LBAS - 1), st.none()),
        st.tuples(st.just("flush"), st.none(), st.none()),
    ),
    min_size=1, max_size=120,
)


def fresh_ftl() -> PageMappedFTL:
    geometry = FlashGeometry(blocks=12, fpages_per_block=4)
    chip = FlashChip(geometry, seed=1, variation_sigma=0.0,
                     inject_errors=False)
    return PageMappedFTL(chip, N_LBAS,
                         FTLConfig(buffer_opages=6, gc_reserve_blocks=2))


class TestFTLAgainstShadow:
    @given(ops=operations)
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_matches_shadow_dict(self, ops):
        ftl = fresh_ftl()
        shadow: dict[int, bytes] = {}
        for op, lba, payload in ops:
            if op == "write":
                ftl.write(lba, payload)
                shadow[lba] = payload
            elif op == "trim":
                ftl.trim(lba)
                shadow.pop(lba, None)
            elif op == "flush":
                ftl.flush()
            else:  # read
                expected = shadow.get(lba, b"")
                assert ftl.read(lba).rstrip(b"\0") == expected.rstrip(b"\0")
        ftl.flush()
        for lba in range(N_LBAS):
            expected = shadow.get(lba, b"")
            assert ftl.read(lba).rstrip(b"\0") == expected.rstrip(b"\0")

    @given(ops=operations)
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_accounting_invariants(self, ops):
        ftl = fresh_ftl()
        shadow: dict[int, bytes] = {}
        for op, lba, payload in ops:
            if op == "write":
                ftl.write(lba, payload)
                shadow[lba] = payload
            elif op == "trim":
                ftl.trim(lba)
                shadow.pop(lba, None)
            elif op == "flush":
                ftl.flush()
            else:
                ftl.read(lba)
            # Live LBAs always equals the shadow's population.
            assert ftl.live_lbas() == len(shadow)
            # Valid counts never go negative or exceed block capacity.
            per_block = ftl._valid_per_block
            block_slots = (ftl.geometry.fpages_per_block
                           * ftl.geometry.opages_per_fpage)
            assert (per_block >= 0).all()
            assert (per_block <= block_slots).all()

    @given(seed=st.integers(0, 2**16), burst=st.integers(100, 400))
    @settings(max_examples=15, deadline=None)
    def test_heavy_uniform_churn_never_corrupts(self, seed, burst):
        import numpy as np
        ftl = fresh_ftl()
        rng = np.random.default_rng(seed)
        latest = {}
        for i in range(burst):
            lba = int(rng.integers(0, N_LBAS))
            payload = f"{lba}:{i}".encode()
            ftl.write(lba, payload)
            latest[lba] = payload
        for lba, payload in latest.items():
            assert ftl.read(lba).rstrip(b"\0") == payload
