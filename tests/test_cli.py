"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    @pytest.mark.parametrize("argv", [
        ["fig2"],
        ["fig2", "--ecc-family", "ldpc", "--pec-limit", "500"],
        ["carbon"],
        ["carbon", "--ru", "0.8", "--renewable"],
        ["tco", "--f-opex", "0.5"],
    ])
    def test_fast_commands_run(self, argv, capsys):
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_fig2_output_contains_levels(self, capsys):
        main(["fig2"])
        out = capsys.readouterr().out
        for level in ("L0", "L1", "L2", "L3"):
            assert level in out
        assert "+50%" in out  # the paper's anchor

    def test_carbon_single_rate(self, capsys):
        main(["carbon", "--ru", "0.8", "--renewable"])
        out = capsys.readouterr().out
        assert "+20.0%" in out

    def test_tco_headline(self, capsys):
        main(["tco"])
        out = capsys.readouterr().out
        assert "+12.9%" in out
        assert "+25.8%" in out

    def test_fleet_small_run(self, capsys):
        assert main(["fleet", "--devices", "8", "--blocks", "32",
                     "--years", "4", "--step-days", "20",
                     "--mode", "baseline", "--points", "5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3a" in out
        assert "baseline" in out

    def test_tournament_small_run(self, capsys):
        assert main(["tournament", "--blocks", "24",
                     "--pec-limit", "20"]) == 0
        out = capsys.readouterr().out
        assert "regens" in out

    def test_replacement_small_run(self, capsys):
        assert main(["replacement", "--slots", "10", "--years", "6",
                     "--dwpd", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "measured Ru" in out

    def test_run_scenario_command(self, capsys, tmp_path):
        import json
        scenario = tmp_path / "s.json"
        scenario.write_text(json.dumps(
            {"name": "cli-fig2", "kind": "fig2",
             "params": {"pec_limit": 500}}))
        assert main(["run", str(scenario), "--out",
                     str(tmp_path / "artifacts")]) == 0
        out = capsys.readouterr().out
        assert "cli-fig2" in out
        assert (tmp_path / "artifacts" / "cli-fig2.json").exists()

    def test_health_small_run(self, capsys):
        assert main(["health", "--devices", "40", "--dwpd", "3.0",
                     "--max-days", "2500"]) == 0
        out = capsys.readouterr().out
        assert "predictor" in out
        assert "run-to-failure" in out
