"""Tests for the command-line interface."""

import json

import pytest

from repro import obs
from repro.cli import (
    EXIT_CLAIM_FAILED,
    EXIT_CONFIG_ERROR,
    EXIT_UNEXPECTED_ERROR,
    build_parser,
    main,
)
from repro.obs import validate_metrics_document, validate_timeseries_document


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    @pytest.mark.parametrize("argv", [
        ["fig2"],
        ["fig2", "--ecc-family", "ldpc", "--pec-limit", "500"],
        ["carbon"],
        ["carbon", "--ru", "0.8", "--renewable"],
        ["tco", "--f-opex", "0.5"],
    ])
    def test_fast_commands_run(self, argv, capsys):
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_fig2_output_contains_levels(self, capsys):
        main(["fig2"])
        out = capsys.readouterr().out
        for level in ("L0", "L1", "L2", "L3"):
            assert level in out
        assert "+50%" in out  # the paper's anchor

    def test_carbon_single_rate(self, capsys):
        main(["carbon", "--ru", "0.8", "--renewable"])
        out = capsys.readouterr().out
        assert "+20.0%" in out

    def test_tco_headline(self, capsys):
        main(["tco"])
        out = capsys.readouterr().out
        assert "+12.9%" in out
        assert "+25.8%" in out

    def test_fleet_small_run(self, capsys):
        assert main(["fleet", "--devices", "8", "--blocks", "32",
                     "--years", "4", "--step-days", "20",
                     "--mode", "baseline", "--points", "5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3a" in out
        assert "baseline" in out

    def test_tournament_small_run(self, capsys):
        assert main(["tournament", "--blocks", "24",
                     "--pec-limit", "20"]) == 0
        out = capsys.readouterr().out
        assert "regens" in out

    def test_replacement_small_run(self, capsys):
        assert main(["replacement", "--slots", "10", "--years", "6",
                     "--dwpd", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "measured Ru" in out

    def test_run_scenario_command(self, capsys, tmp_path):
        import json
        scenario = tmp_path / "s.json"
        scenario.write_text(json.dumps(
            {"name": "cli-fig2", "kind": "fig2",
             "params": {"pec_limit": 500}}))
        assert main(["run", str(scenario), "--out",
                     str(tmp_path / "artifacts")]) == 0
        out = capsys.readouterr().out
        assert "cli-fig2" in out
        assert (tmp_path / "artifacts" / "cli-fig2.json").exists()

    def test_health_small_run(self, capsys):
        assert main(["health", "--devices", "40", "--dwpd", "3.0",
                     "--max-days", "2500"]) == 0
        out = capsys.readouterr().out
        assert "predictor" in out
        assert "run-to-failure" in out


class TestVersionAndExitCodes:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()

    def test_config_error_maps_to_exit_2(self, capsys):
        # afr is a probability; 2.0 passes argparse but fails validation.
        assert main(["fleet", "--devices", "4", "--blocks", "32",
                     "--years", "1", "--afr", "2.0"]) == EXIT_CONFIG_ERROR
        err = capsys.readouterr().err
        assert "configuration error" in err

    def test_unexpected_error_maps_to_exit_3(self, capsys, monkeypatch):
        def boom(args):
            raise RuntimeError("wires crossed")

        # build_parser resolves the handler from module globals at call
        # time, so patching the name reroutes the subcommand.
        monkeypatch.setattr("repro.cli._cmd_fig2", boom)
        assert main(["fig2"]) == EXIT_UNEXPECTED_ERROR
        err = capsys.readouterr().err
        assert "unexpected error" in err
        assert "RuntimeError" in err


class TestObservabilityFlags:
    def test_fleet_writes_metrics_and_trace(self, capsys, tmp_path):
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.jsonl"
        assert main(["fleet", "--devices", "8", "--blocks", "32",
                     "--years", "2", "--step-days", "20",
                     "--mode", "regen", "--points", "5",
                     "--metrics-out", str(metrics_path),
                     "--trace-out", str(trace_path)]) == 0
        assert not obs.metrics_enabled()  # CLI restores the no-op state
        document = json.loads(metrics_path.read_text())
        validate_metrics_document(document)
        names = {family["name"] for family in document["metrics"]}
        assert "repro_fleet_step_duration_seconds" in names
        assert "repro_fleet_devices_functioning" in names
        records = [json.loads(line)
                   for line in trace_path.read_text().splitlines()]
        times = [record["time"] for record in records]
        assert times == sorted(times)
        out = capsys.readouterr().out
        assert str(metrics_path) in out
        assert str(trace_path) in out

    def test_run_embeds_metrics_in_artifact(self, capsys, tmp_path):
        scenario = tmp_path / "s.json"
        scenario.write_text(json.dumps(
            {"name": "cli-obs", "kind": "fig2",
             "params": {"pec_limit": 500}}))
        metrics_path = tmp_path / "m.json"
        assert main(["run", str(scenario),
                     "--out", str(tmp_path / "artifacts"),
                     "--metrics-out", str(metrics_path)]) == 0
        artifact = json.loads(
            (tmp_path / "artifacts" / "cli-obs.json").read_text())
        assert "metrics" in artifact
        validate_metrics_document(json.loads(metrics_path.read_text()))

    def test_flags_off_means_no_observability_cost(self, capsys, tmp_path):
        assert main(["fleet", "--devices", "4", "--blocks", "32",
                     "--years", "1", "--step-days", "20",
                     "--points", "3"]) == 0
        assert not obs.metrics_enabled()
        assert not obs.tracing_enabled()
        assert not obs.timeseries_enabled()


class TestTimeseriesFlag:
    def test_fleet_writes_timeseries(self, capsys, tmp_path):
        ts_path = tmp_path / "ts.jsonl"
        assert main(["fleet", "--devices", "8", "--blocks", "32",
                     "--years", "2", "--step-days", "20",
                     "--mode", "all", "--points", "3",
                     "--timeseries-out", str(ts_path)]) == 0
        assert not obs.timeseries_enabled()  # CLI restores no-op state
        from repro.obs import load_timeseries
        document = load_timeseries(ts_path)  # validates on load
        names = {entry["name"] for entry in document["series"]}
        assert "repro_fleet_capacity_bytes" in names
        assert "repro_fleet_mean_lifetime_days" in names
        assert "repro_smart_wear_percentile" in names
        modes = {entry["labels"].get("mode")
                 for entry in document["series"]}
        assert {"baseline", "shrink", "regen"} <= modes
        assert str(ts_path) in capsys.readouterr().out

    def test_timeseries_cadence_thins_samples(self, tmp_path):
        dense = tmp_path / "dense.jsonl"
        sparse = tmp_path / "sparse.jsonl"
        argv = ["fleet", "--devices", "4", "--blocks", "32",
                "--years", "2", "--step-days", "10",
                "--mode", "baseline", "--points", "3"]
        assert main(argv + ["--timeseries-out", str(dense)]) == 0
        assert main(argv + ["--timeseries-out", str(sparse),
                            "--timeseries-cadence", "100"]) == 0
        from repro.obs import load_timeseries, series_from_document
        dense_t, _ = series_from_document(
            load_timeseries(dense), "repro_fleet_devices_functioning")
        sparse_t, _ = series_from_document(
            load_timeseries(sparse), "repro_fleet_devices_functioning")
        assert len(sparse_t) < len(dense_t)

    def test_run_embeds_timeseries_in_artifact(self, capsys, tmp_path):
        scenario = tmp_path / "s.json"
        scenario.write_text(json.dumps({
            "name": "cli-ts", "kind": "fleet",
            "params": {"devices": 4, "horizon_days": 400,
                       "step_days": 20,
                       "geometry": {"blocks": 32,
                                    "fpages_per_block": 64}},
        }))
        ts_path = tmp_path / "ts.csv"
        assert main(["run", str(scenario),
                     "--out", str(tmp_path / "artifacts"),
                     "--timeseries-out", str(ts_path)]) == 0
        artifact = json.loads(
            (tmp_path / "artifacts" / "cli-ts.json").read_text())
        embedded = validate_timeseries_document(artifact["timeseries"])
        assert embedded["series"]
        assert ts_path.exists()  # CSV export alongside the artifact


class TestReportCommand:
    @staticmethod
    def _write_timeseries(path, lifetimes):
        lines = [json.dumps({"schema": "repro.obs.timeseries/v1",
                             "cadence": 0.0, "capacity": 4096,
                             "samples_taken": 1})]
        for mode, value in lifetimes.items():
            lines.append(json.dumps({
                "name": "repro_fleet_mean_lifetime_days",
                "labels": {"mode": mode}, "unit": "days",
                "kind": "gauge", "resolution": 0.0, "downsamples": 0,
                "t": [100.0], "v": [value]}))
        path.write_text("\n".join(lines) + "\n")

    def test_report_passes_on_healthy_timeseries(self, capsys, tmp_path):
        ts_path = tmp_path / "ts.jsonl"
        self._write_timeseries(ts_path, {"baseline": 400.0,
                                         "shrink": 520.0,
                                         "regen": 600.0})
        json_path = tmp_path / "report.json"
        assert main(["report", "--timeseries", str(ts_path),
                     "--json", str(json_path)]) == 0
        report = json.loads(json_path.read_text())
        assert report["schema"] == "repro.report/v1"
        assert report["summary"]["fail"] == 0
        by_claim = {c["claim"]: c for c in report["claims"]}
        assert by_claim["lifetime_extension/shrink"]["status"] == "pass"
        assert by_claim["throughput_degradation/L2"]["status"] == "pass"

    def test_report_claim_failure_exits_1(self, capsys, tmp_path):
        ts_path = tmp_path / "ts.jsonl"
        self._write_timeseries(ts_path, {"baseline": 400.0,
                                         "shrink": 100.0,
                                         "regen": 600.0})
        assert main(["report", "--timeseries", str(ts_path)]) \
            == EXIT_CLAIM_FAILED
        captured = capsys.readouterr()
        assert "FAILED" in captured.err
        assert "`lifetime_extension/shrink` | fail" in captured.out

    def test_report_prints_markdown_by_default(self, capsys, tmp_path):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "## Salamander claim check" in out
        assert "| claim | status |" in out

    def test_missing_metrics_exits_2(self, capsys, tmp_path):
        assert main(["report", "--metrics",
                     str(tmp_path / "nope.json")]) == EXIT_CONFIG_ERROR
        assert "not found" in capsys.readouterr().err

    def test_corrupt_metrics_exits_2(self, capsys, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{not json")
        assert main(["report", "--metrics", str(path)]) \
            == EXIT_CONFIG_ERROR
        assert "not valid JSON" in capsys.readouterr().err

    def test_corrupt_timeseries_exits_2(self, capsys, tmp_path):
        path = tmp_path / "ts.jsonl"
        path.write_text("{broken\n")
        assert main(["report", "--timeseries", str(path)]) \
            == EXIT_CONFIG_ERROR

    def test_missing_artifact_exits_2(self, capsys, tmp_path):
        assert main(["report", "--artifact",
                     str(tmp_path / "nope.json")]) == EXIT_CONFIG_ERROR

    def test_bad_tolerance_exits_2(self, capsys, tmp_path):
        assert main(["report", "--tolerance", "1.5"]) \
            == EXIT_CONFIG_ERROR


class TestSweepCommand:
    ARGS = ["sweep", "--devices", "6", "--blocks", "16", "--years", "2",
            "--step-days", "20", "--runs", "2"]

    def test_jobs_do_not_change_artifact_bytes(self, capsys, tmp_path):
        """`--jobs 2` must emit the same bytes as `--jobs 1` — the CLI
        face of the parallel runner's determinism contract."""
        j1, j2 = tmp_path / "j1.json", tmp_path / "j2.json"
        assert main([*self.ARGS, "--jobs", "1", "--out", str(j1)]) == 0
        assert main([*self.ARGS, "--jobs", "2", "--out", str(j2)]) == 0
        assert j1.read_bytes() == j2.read_bytes()
        out = capsys.readouterr().out
        assert "sweep artifact" in out
        assert "fleet sweep" in out

    def test_artifact_validates_and_covers_grid(self, capsys, tmp_path):
        from repro.sim.parallel import load_sweep_artifact
        path = tmp_path / "sweep.json"
        assert main([*self.ARGS, "--jobs", "1", "--out", str(path)]) == 0
        document = load_sweep_artifact(path)
        assert len(document["seeds"]) == 2
        assert len(document["results"]) == \
            len(document["modes"]) * len(document["seeds"])

    def test_single_mode_sweep(self, capsys, tmp_path):
        path = tmp_path / "regen.json"
        assert main([*self.ARGS, "--mode", "regen", "--runs", "1",
                     "--out", str(path)]) == 0
        from repro.sim.parallel import load_sweep_artifact
        document = load_sweep_artifact(path)
        assert document["modes"] == ["regen"]

    def test_bad_jobs_maps_to_exit_2(self, capsys, tmp_path):
        assert main([*self.ARGS, "--jobs", "-2",
                     "--out", str(tmp_path / "x.json")]) == EXIT_CONFIG_ERROR
        assert "configuration error" in capsys.readouterr().err

    def test_jobs_auto_records_resolved_int(self, capsys, tmp_path):
        # 'auto' resolves in the parent; the artifact records the
        # resolved worker count, never the literal string.
        path = tmp_path / "auto.json"
        assert main([*self.ARGS, "--jobs", "auto",
                     "--out", str(path)]) == 0
        document = json.loads(path.read_text())
        assert isinstance(document["meta"]["jobs"], int)
        assert document["meta"]["jobs"] >= 1

    def test_explicit_jobs_leave_no_meta(self, capsys, tmp_path):
        # Explicit worker counts stay out of the document, so the
        # jobs-invariance byte-identity gates keep holding.
        path = tmp_path / "j2.json"
        assert main([*self.ARGS, "--jobs", "2", "--out", str(path)]) == 0
        assert "meta" not in json.loads(path.read_text())

    def test_jobs_gibberish_rejected_by_parser(self, tmp_path):
        with pytest.raises(SystemExit):
            main([*self.ARGS, "--jobs", "fast",
                  "--out", str(tmp_path / "x.json")])


class TestFleetShards:
    """`repro fleet --shards`: the sharded runner through the CLI."""

    ARGS = ["fleet", "--devices", "6", "--blocks", "16", "--years", "2",
            "--step-days", "20"]

    def test_single_shard_matches_serial_bytes(self, capsys, tmp_path):
        serial, sharded = tmp_path / "serial.json", tmp_path / "s1.json"
        assert main([*self.ARGS, "--out", str(serial)]) == 0
        assert main([*self.ARGS, "--shards", "1", "--jobs", "2",
                     "--out", str(sharded)]) == 0
        assert serial.read_bytes() == sharded.read_bytes()

    def test_jobs_do_not_change_artifact_bytes(self, capsys, tmp_path):
        j1, j4 = tmp_path / "j1.json", tmp_path / "j4.json"
        assert main([*self.ARGS, "--shards", "4", "--jobs", "1",
                     "--out", str(j1)]) == 0
        assert main([*self.ARGS, "--shards", "4", "--jobs", "4",
                     "--out", str(j4)]) == 0
        assert j1.read_bytes() == j4.read_bytes()

    def test_shards_recorded_in_config(self, capsys, tmp_path):
        path = tmp_path / "s2.json"
        assert main([*self.ARGS, "--shards", "2",
                     "--out", str(path)]) == 0
        assert json.loads(path.read_text())["config"]["shards"] == 2

    def test_bad_shards_maps_to_exit_2(self, capsys, tmp_path):
        assert main([*self.ARGS, "--shards", "0",
                     "--out", str(tmp_path / "x.json")]) \
            == EXIT_CONFIG_ERROR
        assert "configuration error" in capsys.readouterr().err


class TestTrafficCommand:
    """`repro traffic`: the multi-tenant engine behind the engine/v1
    artifact."""

    FAST = ["traffic", "--tenants", "12", "--duration", "4000",
            "--cells", "1"]

    def test_writes_validated_artifact(self, capsys, tmp_path):
        from repro.workloads.engine import load_engine_artifact

        out = tmp_path / "traffic.json"
        assert main([*self.FAST, "--out", str(out)]) == 0
        document = load_engine_artifact(out)
        assert document["config"]["tenants"] == 12
        assert document["totals"]["offered"] > 0
        printed = capsys.readouterr().out
        assert "traffic artifact ->" in printed
        assert "tenant class" in printed

    def test_jobs_do_not_change_artifact_bytes(self, capsys, tmp_path):
        a, b = tmp_path / "j1.json", tmp_path / "j2.json"
        assert main([*self.FAST, "--jobs", "1", "--out", str(a)]) == 0
        assert main([*self.FAST, "--jobs", "2", "--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_jobs_auto_records_resolved_int(self, capsys, tmp_path):
        path = tmp_path / "auto.json"
        assert main([*self.FAST, "--jobs", "auto",
                     "--out", str(path)]) == 0
        document = json.loads(path.read_text())
        assert isinstance(document["meta"]["jobs"], int)
        assert document["meta"]["jobs"] >= 1
        # Explicit jobs leave the document meta-free.
        plain = tmp_path / "j1b.json"
        assert main([*self.FAST, "--jobs", "1", "--out", str(plain)]) == 0
        assert "meta" not in json.loads(plain.read_text())

    def test_shards_raise_resolved_cells(self, capsys, tmp_path):
        # --shards guarantees at least that many failure-domain cells
        # (capped at the tenant count) and lands in the artifact config.
        path = tmp_path / "s4.json"
        assert main(["traffic", "--tenants", "12", "--duration", "4000",
                     "--shards", "4", "--jobs", "2",
                     "--out", str(path)]) == 0
        document = json.loads(path.read_text())
        assert document["config"]["shards"] == 4
        assert document["config"]["resolved_cells"] == 4

    def test_slo_gates_exit_code(self, capsys, tmp_path):
        config = TestSLOCommand.slo_config(tmp_path)
        out = tmp_path / "ok.json"
        assert main([*self.FAST, "--slo", str(config),
                     "--out", str(out)]) == 0
        capsys.readouterr()
        strict = TestSLOCommand.slo_config(tmp_path, threshold_us=0.001,
                                           name="impossible")
        assert main([*self.FAST, "--slo", str(strict),
                     "--out", str(tmp_path / "bad.json")]) \
            == EXIT_CLAIM_FAILED
        assert "VIOLATED" in capsys.readouterr().err

    def test_metrics_out_publishes_traffic_families(self, capsys,
                                                    tmp_path):
        metrics_path = tmp_path / "metrics.json"
        assert main([*self.FAST, "--out", str(tmp_path / "t.json"),
                     "--metrics-out", str(metrics_path)]) == 0
        names = {family["name"] for family in
                 json.loads(metrics_path.read_text())["metrics"]}
        assert "repro_traffic_requests_total" in names
        assert "repro_traffic_p99_latency_us" in names
        assert "repro_traffic_tenants" in names

    def test_bad_utilisation_exits_2(self, capsys, tmp_path):
        assert main([*self.FAST, "--utilisation", "0",
                     "--out", str(tmp_path / "t.json")]) \
            == EXIT_CONFIG_ERROR

    def test_missing_trace_exits_2(self, capsys, tmp_path):
        assert main([*self.FAST, "--trace",
                     str(tmp_path / "absent.trace")]) \
            == EXIT_CONFIG_ERROR

    def test_trace_replay(self, capsys, tmp_path):
        from repro.workloads import Trace
        from repro.workloads.generators import Operation, OpType

        trace = Trace(n_lbas=8)
        for lba in range(8):
            trace.append(Operation(OpType.WRITE, lba, b"x" * 16))
        trace_path = trace.save(tmp_path / "t.trace")
        out = tmp_path / "replay.json"
        assert main([*self.FAST, "--trace", str(trace_path),
                     "--out", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["config"]["trace_ops"] == 8
        assert all(row["class"] == "trace"
                   for row in document["tenants"])


class TestSLOCommand:
    """`repro slo`: probe-measured and offline SLO evaluation."""

    #: Small probe so the measured tests stay fast; deterministic for
    #: the default seed.
    MEASURE = ["slo", "--measure", "--mode", "baseline",
               "--requests", "120", "--every", "4"]

    @staticmethod
    def slo_config(tmp_path, threshold_us=1e9, name="read-p99"):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({
            "schema": "repro.obs.slo/v1",
            "objectives": [{"name": name, "kind": "latency",
                            "op": "read", "percentile": 99.0,
                            "threshold_us": threshold_us,
                            "window_us": 1e9}]}))
        return path

    def test_measure_meets_generous_objective(self, capsys, tmp_path):
        config = self.slo_config(tmp_path)
        report_path = tmp_path / "report.json"
        assert main([*self.MEASURE, "--slo", str(config),
                     "--json", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "SLO report" in out
        assert "all met" in out
        assert "Latency attribution" in out  # segments table printed
        report = json.loads(report_path.read_text())
        assert report["schema"] == "repro.obs.slo_report/v1"
        assert report["ok"]
        assert report["objectives"][0]["name"] == "baseline/read-p99"

    def test_violated_p99_exits_nonzero(self, capsys, tmp_path):
        # The acceptance criterion: an impossible threshold must gate
        # the exit code, not just print a sad table.
        config = self.slo_config(tmp_path, threshold_us=0.001)
        assert main([*self.MEASURE,
                     "--slo", str(config)]) == EXIT_CLAIM_FAILED
        captured = capsys.readouterr()
        assert "VIOLATED" in captured.err
        assert "**NO**" in captured.out

    def test_reqtrace_out_round_trips_offline(self, capsys, tmp_path):
        from repro.obs.reqtrace import (
            load_reqtrace,
            validate_reqtrace_records,
        )

        config = self.slo_config(tmp_path)
        trace_path = tmp_path / "rt.jsonl"
        assert main([*self.MEASURE, "--slo", str(config),
                     "--reqtrace-out", str(trace_path)]) == 0
        header, records = load_reqtrace(trace_path)
        assert header["meta"]["modes"] == ["baseline"]
        assert records
        validate_reqtrace_records(records)
        capsys.readouterr()
        # Offline evaluation of the artifact agrees: exit 0 here, exit
        # 1 under an impossible threshold.
        assert main(["slo", "--slo", str(config),
                     "--reqtrace", str(trace_path)]) == 0
        tight = self.slo_config(tmp_path, threshold_us=0.001)
        assert main(["slo", "--slo", str(tight),
                     "--reqtrace", str(trace_path)]) == EXIT_CLAIM_FAILED

    def test_needs_exactly_one_input(self, capsys, tmp_path):
        config = self.slo_config(tmp_path)
        assert main(["slo", "--slo", str(config)]) == EXIT_CONFIG_ERROR
        assert main(["slo", "--slo", str(config), "--measure",
                     "--reqtrace", "x.jsonl"]) == EXIT_CONFIG_ERROR
        err = capsys.readouterr().err
        assert "exactly one input" in err

    def test_bad_config_and_artifact_map_to_exit_2(self, capsys,
                                                   tmp_path):
        config = self.slo_config(tmp_path)
        assert main(["slo", "--slo", str(tmp_path / "absent.json"),
                     "--measure"]) == EXIT_CONFIG_ERROR
        assert main(["slo", "--slo", str(config), "--reqtrace",
                     str(tmp_path / "absent.jsonl")]) == EXIT_CONFIG_ERROR
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        assert main(["slo", "--slo", str(bad),
                     "--measure"]) == EXIT_CONFIG_ERROR
        capsys.readouterr()

    def test_default_config_ships_and_passes(self, capsys):
        # scenarios/slo_default.json is the CI smoke's config; it must
        # keep passing against the default probe.
        assert main(["slo", "--slo", "scenarios/slo_default.json",
                     "--measure", "--mode", "shrink",
                     "--requests", "120", "--every", "4"]) == 0
        assert "all met" in capsys.readouterr().out


class TestReqtraceFlags:
    """--reqtrace-out / --slo sidecar on fleet and run."""

    def test_fleet_writes_reqtrace_sidecar(self, capsys, tmp_path):
        trace_path = tmp_path / "rt.jsonl"
        assert main(["fleet", "--devices", "4", "--blocks", "16",
                     "--years", "1", "--step-days", "30",
                     "--mode", "baseline", "--points", "3",
                     "--reqtrace-out", str(trace_path)]) == 0
        from repro.obs.reqtrace import (
            load_reqtrace,
            validate_reqtrace_records,
        )
        header, records = load_reqtrace(trace_path)
        assert header["meta"]["modes"] == ["baseline"]
        assert records
        validate_reqtrace_records(records)
        assert all(r["device_kind"] == "baseline" for r in records)
        assert "reqtrace ->" in capsys.readouterr().out

    def test_run_scenario_with_slo_report(self, capsys, tmp_path):
        config = TestSLOCommand.slo_config(tmp_path)
        assert main(["run", "scenarios/quick_fleet.json",
                     "--out", str(tmp_path),
                     "--slo", str(config)]) == 0
        out = capsys.readouterr().out
        assert "SLO report" in out
