"""Tests for the command-line interface."""

import json

import pytest

from repro import obs
from repro.cli import (
    EXIT_CONFIG_ERROR,
    EXIT_UNEXPECTED_ERROR,
    build_parser,
    main,
)
from repro.obs import validate_metrics_document


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    @pytest.mark.parametrize("argv", [
        ["fig2"],
        ["fig2", "--ecc-family", "ldpc", "--pec-limit", "500"],
        ["carbon"],
        ["carbon", "--ru", "0.8", "--renewable"],
        ["tco", "--f-opex", "0.5"],
    ])
    def test_fast_commands_run(self, argv, capsys):
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_fig2_output_contains_levels(self, capsys):
        main(["fig2"])
        out = capsys.readouterr().out
        for level in ("L0", "L1", "L2", "L3"):
            assert level in out
        assert "+50%" in out  # the paper's anchor

    def test_carbon_single_rate(self, capsys):
        main(["carbon", "--ru", "0.8", "--renewable"])
        out = capsys.readouterr().out
        assert "+20.0%" in out

    def test_tco_headline(self, capsys):
        main(["tco"])
        out = capsys.readouterr().out
        assert "+12.9%" in out
        assert "+25.8%" in out

    def test_fleet_small_run(self, capsys):
        assert main(["fleet", "--devices", "8", "--blocks", "32",
                     "--years", "4", "--step-days", "20",
                     "--mode", "baseline", "--points", "5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3a" in out
        assert "baseline" in out

    def test_tournament_small_run(self, capsys):
        assert main(["tournament", "--blocks", "24",
                     "--pec-limit", "20"]) == 0
        out = capsys.readouterr().out
        assert "regens" in out

    def test_replacement_small_run(self, capsys):
        assert main(["replacement", "--slots", "10", "--years", "6",
                     "--dwpd", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "measured Ru" in out

    def test_run_scenario_command(self, capsys, tmp_path):
        import json
        scenario = tmp_path / "s.json"
        scenario.write_text(json.dumps(
            {"name": "cli-fig2", "kind": "fig2",
             "params": {"pec_limit": 500}}))
        assert main(["run", str(scenario), "--out",
                     str(tmp_path / "artifacts")]) == 0
        out = capsys.readouterr().out
        assert "cli-fig2" in out
        assert (tmp_path / "artifacts" / "cli-fig2.json").exists()

    def test_health_small_run(self, capsys):
        assert main(["health", "--devices", "40", "--dwpd", "3.0",
                     "--max-days", "2500"]) == 0
        out = capsys.readouterr().out
        assert "predictor" in out
        assert "run-to-failure" in out


class TestVersionAndExitCodes:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()

    def test_config_error_maps_to_exit_2(self, capsys):
        # afr is a probability; 2.0 passes argparse but fails validation.
        assert main(["fleet", "--devices", "4", "--blocks", "32",
                     "--years", "1", "--afr", "2.0"]) == EXIT_CONFIG_ERROR
        err = capsys.readouterr().err
        assert "configuration error" in err

    def test_unexpected_error_maps_to_exit_3(self, capsys, monkeypatch):
        def boom(args):
            raise RuntimeError("wires crossed")

        # build_parser resolves the handler from module globals at call
        # time, so patching the name reroutes the subcommand.
        monkeypatch.setattr("repro.cli._cmd_fig2", boom)
        assert main(["fig2"]) == EXIT_UNEXPECTED_ERROR
        err = capsys.readouterr().err
        assert "unexpected error" in err
        assert "RuntimeError" in err


class TestObservabilityFlags:
    def test_fleet_writes_metrics_and_trace(self, capsys, tmp_path):
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.jsonl"
        assert main(["fleet", "--devices", "8", "--blocks", "32",
                     "--years", "2", "--step-days", "20",
                     "--mode", "regen", "--points", "5",
                     "--metrics-out", str(metrics_path),
                     "--trace-out", str(trace_path)]) == 0
        assert not obs.metrics_enabled()  # CLI restores the no-op state
        document = json.loads(metrics_path.read_text())
        validate_metrics_document(document)
        names = {family["name"] for family in document["metrics"]}
        assert "repro_fleet_step_duration_seconds" in names
        assert "repro_fleet_devices_functioning" in names
        records = [json.loads(line)
                   for line in trace_path.read_text().splitlines()]
        times = [record["time"] for record in records]
        assert times == sorted(times)
        out = capsys.readouterr().out
        assert str(metrics_path) in out
        assert str(trace_path) in out

    def test_run_embeds_metrics_in_artifact(self, capsys, tmp_path):
        scenario = tmp_path / "s.json"
        scenario.write_text(json.dumps(
            {"name": "cli-obs", "kind": "fig2",
             "params": {"pec_limit": 500}}))
        metrics_path = tmp_path / "m.json"
        assert main(["run", str(scenario),
                     "--out", str(tmp_path / "artifacts"),
                     "--metrics-out", str(metrics_path)]) == 0
        artifact = json.loads(
            (tmp_path / "artifacts" / "cli-obs.json").read_text())
        assert "metrics" in artifact
        validate_metrics_document(json.loads(metrics_path.read_text()))

    def test_flags_off_means_no_observability_cost(self, capsys, tmp_path):
        assert main(["fleet", "--devices", "4", "--blocks", "32",
                     "--years", "1", "--step-days", "20",
                     "--points", "3"]) == 0
        assert not obs.metrics_enabled()
        assert not obs.tracing_enabled()
