"""Power-loss recovery for Salamander devices."""

import numpy as np
import pytest

import repro.errors as E
from repro.salamander.device import SalamanderSSD
from repro.salamander.minidisk import MinidiskStatus
from tests.salamander.test_device import wear_out


def crash_and_remount(device: SalamanderSSD) -> SalamanderSSD:
    snapshot = device.nvram_snapshot()
    return SalamanderSSD.remount(device.chip, device.salamander_config,
                                 snapshot)


class TestSalamanderRemount:
    def test_fresh_device_roundtrip(self, make_salamander):
        device = make_salamander(mode="regen", seed=1)
        device.write(0, 0, b"alpha")
        device.write(2, 5, b"beta")
        device.flush()
        device.write(1, 1, b"buffered")  # stays in NVRAM
        recovered = crash_and_remount(device)
        assert recovered.read(0, 0).rstrip(b"\0") == b"alpha"
        assert recovered.read(2, 5).rstrip(b"\0") == b"beta"
        assert recovered.read(1, 1).rstrip(b"\0") == b"buffered"

    def test_worn_device_state_restored(self, make_salamander):
        device = make_salamander(mode="regen", seed=1)
        wear_out(device, utilization=0.5, max_writes=40_000)
        device.flush()
        recovered = crash_and_remount(device)
        assert (len(recovered.active_minidisks())
                == len(device.active_minidisks()))
        assert recovered.advertised_lbas == device.advertised_lbas
        assert len(recovered.limbo) == len(device.limbo)
        assert recovered.limbo.counts() == device.limbo.counts()
        assert recovered.live_lbas() == device.live_lbas()

    def test_decommissioned_minidisks_stay_dead(self, make_salamander):
        device = make_salamander(mode="shrink", seed=1)
        device.write(0, 0, b"doomed")
        device.flush()
        device._decommission(device.minidisks[0], reason="test")
        recovered = crash_and_remount(device)
        assert (recovered.minidisk(0).status
                is MinidiskStatus.DECOMMISSIONED)
        with pytest.raises(E.MinidiskDecommissionedError):
            recovered.read(0, 0)

    def test_regenerated_minidisks_survive_remount(self, make_salamander):
        device = make_salamander(mode="regen", seed=1)
        rng = np.random.default_rng(0)
        while device.stats.regenerated_minidisks == 0:
            active = device.active_minidisks()
            mdisk = active[int(rng.integers(0, len(active)))]
            device.write(mdisk.mdisk_id,
                         int(rng.integers(0, mdisk.size_lbas)), b"x")
        regen_id = next(m.mdisk_id for m in device.minidisks
                        if m.level >= 1 and m.is_active)
        device.write(regen_id, 0, b"reborn-data")
        device.flush()
        recovered = crash_and_remount(device)
        assert recovered.minidisk(regen_id).level >= 1
        assert recovered.read(regen_id, 0).rstrip(b"\0") == b"reborn-data"

    def test_remounted_device_keeps_wearing_gracefully(self,
                                                       make_salamander):
        device = make_salamander(mode="regen", seed=1)
        wear_out(device, utilization=0.5, max_writes=20_000)
        device.flush()
        recovered = crash_and_remount(device)
        before = recovered.stats.decommissioned_minidisks
        wear_out(recovered, utilization=0.5, max_writes=40_000)
        # Wear machinery still functions after remount.
        assert (recovered.stats.decommissioned_minidisks >= before)
        assert recovered.capacity_deficit() <= 0 or \
            not recovered.active_minidisks()

    def test_surviving_data_intact_after_remount(self, make_salamander):
        device = make_salamander(mode="regen", seed=1)
        for mdisk in device.active_minidisks():
            device.write(mdisk.mdisk_id, 0, f"tag-{mdisk.mdisk_id}".encode())
        device.flush()
        wear_out(device, utilization=0.4, max_writes=12_000, seed=9)
        try:
            device.flush()
        except E.ReproError:
            pass  # the device may have died exactly at the wear budget
        recovered = crash_and_remount(device)
        if not recovered.is_alive:
            pytest.skip("device exhausted before the remount point")
        for mdisk in recovered.active_minidisks():
            if mdisk.level > 0:
                continue  # regenerated disks never held a tag
            data = recovered.read(mdisk.mdisk_id, 0).rstrip(b"\0")
            assert data in (f"tag-{mdisk.mdisk_id}".encode(), b"x", b"")
