"""Tests for mixed-tiredness regeneration (paper future work, §3.4)."""

import pytest

from repro.errors import ConfigError
from repro.salamander.device import SalamanderConfig
from repro.salamander.limbo import LimboLedger
from repro.salamander.regen import plan_revival, plan_revival_mixed


@pytest.fixture
def limbo():
    return LimboLedger(dead_level=4)


class TestMixedPlanner:
    def test_combines_levels_when_no_single_level_suffices(self, limbo):
        # 2 pages at L1 (6 oPages) + 2 at L2 (4 oPages): uniform planning
        # fails for 8 oPages, mixed succeeds.
        for fpage, level in [(1, 1), (2, 1), (3, 2), (4, 2)]:
            limbo.add(fpage, level)
        assert plan_revival(limbo, 8) is None
        plan = plan_revival_mixed(limbo, 8)
        assert plan is not None
        assert plan.mixed
        assert plan.capacity_opages >= 8
        assert plan.level == 2  # labelled with the worst included level

    def test_prefers_least_worn_pages_first(self, limbo):
        for fpage in range(4):
            limbo.add(fpage, 1)
        limbo.add(9, 3)
        plan = plan_revival_mixed(limbo, 6)
        assert plan is not None
        assert 9 not in plan.fpages  # L1 capacity sufficed
        assert plan.level == 1
        assert not plan.mixed or plan.level == 1

    def test_single_level_plan_not_marked_mixed(self, limbo):
        for fpage in range(4):
            limbo.add(fpage, 1)
        plan = plan_revival_mixed(limbo, 6)
        assert plan is not None
        assert not plan.mixed

    def test_none_when_total_capacity_insufficient(self, limbo):
        limbo.add(1, 3)  # 1 oPage
        assert plan_revival_mixed(limbo, 8) is None

    def test_validation(self, limbo):
        with pytest.raises(ConfigError):
            plan_revival_mixed(limbo, 0)


class TestMixedDevice:
    def test_mixed_regenerates_at_least_as_many_minidisks(
            self, make_chip, ftl_config):
        from repro.salamander.device import SalamanderSSD
        from tests.salamander.test_device import wear_out

        def run(mixed: bool):
            config = SalamanderConfig(
                msize_lbas=32, mode="regen", headroom_fraction=0.25,
                regen_max_level=2, regen_mixed_levels=mixed, ftl=ftl_config)
            device = SalamanderSSD(make_chip(seed=1), config)
            wear_out(device, utilization=0.6)
            return device

        uniform = run(False)
        mixed = run(True)
        assert (mixed.stats.regenerated_minidisks
                >= uniform.stats.regenerated_minidisks)
        # Mixed plans leave less capacity stranded in limbo at death.
        assert (mixed.limbo.capacity_opages()
                <= uniform.limbo.capacity_opages() + 32)
