"""Unit tests for minidisk objects."""

import pytest

from repro.errors import ConfigError
from repro.salamander.minidisk import Minidisk, MinidiskStatus


class TestMinidisk:
    def test_flat_addressing(self):
        mdisk = Minidisk(mdisk_id=3, size_lbas=256)
        assert mdisk.flat_base == 768
        assert mdisk.flat_lba(0) == 768
        assert mdisk.flat_lba(255) == 1023

    def test_lba_bounds(self):
        mdisk = Minidisk(mdisk_id=0, size_lbas=16)
        with pytest.raises(ConfigError):
            mdisk.flat_lba(16)
        with pytest.raises(ConfigError):
            mdisk.flat_lba(-1)

    def test_decommission_lifecycle(self):
        mdisk = Minidisk(mdisk_id=1, size_lbas=16)
        assert mdisk.is_active
        mdisk.decommission(seq=9)
        assert not mdisk.is_active
        assert mdisk.status is MinidiskStatus.DECOMMISSIONED
        assert mdisk.decommissioned_seq == 9

    def test_double_decommission_rejected(self):
        mdisk = Minidisk(mdisk_id=1, size_lbas=16)
        mdisk.decommission(seq=1)
        with pytest.raises(ConfigError):
            mdisk.decommission(seq=2)

    def test_regenerated_disk_carries_level(self):
        mdisk = Minidisk(mdisk_id=5, size_lbas=16, level=1, created_seq=12)
        assert mdisk.level == 1
        assert mdisk.created_seq == 12

    @pytest.mark.parametrize("kwargs", [
        {"mdisk_id": -1, "size_lbas": 16},
        {"mdisk_id": 0, "size_lbas": 0},
        {"mdisk_id": 0, "size_lbas": 16, "level": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            Minidisk(**kwargs)
