"""Tests for the §4.3 decommissioning grace period (paper future work)."""

import numpy as np
import pytest

from repro.errors import ConfigError, MinidiskDecommissionedError, ReproError
from repro.salamander.device import SalamanderConfig
from repro.salamander.minidisk import MinidiskStatus


@pytest.fixture
def make_grace_device(make_chip, ftl_config):
    from repro.salamander.device import SalamanderSSD

    def factory(grace: int = 2, mode: str = "regen", seed: int = 1):
        config = SalamanderConfig(
            msize_lbas=32, mode=mode, headroom_fraction=0.25,
            grace_decommissions=grace, ftl=ftl_config)
        return SalamanderSSD(make_chip(seed=seed), config)

    return factory


class TestDrainingState:
    def test_decommission_enters_draining(self, make_grace_device):
        device = make_grace_device()
        device.write(0, 0, b"precious")
        device._decommission(device.minidisks[0], reason="test")
        mdisk = device.minidisk(0)
        assert mdisk.status is MinidiskStatus.DRAINING
        assert not mdisk.is_active
        assert mdisk.is_readable

    def test_draining_minidisk_still_readable(self, make_grace_device):
        device = make_grace_device()
        device.write(0, 0, b"precious")
        device._decommission(device.minidisks[0], reason="test")
        assert device.read(0, 0).rstrip(b"\0") == b"precious"

    def test_draining_minidisk_rejects_writes(self, make_grace_device):
        device = make_grace_device()
        device._decommission(device.minidisks[0], reason="test")
        with pytest.raises(MinidiskDecommissionedError):
            device.write(0, 0, b"x")

    def test_release_drops_data(self, make_grace_device):
        device = make_grace_device()
        device.write(0, 0, b"precious")
        device._decommission(device.minidisks[0], reason="test")
        device.release_minidisk(0)
        assert device.minidisk(0).status is MinidiskStatus.DECOMMISSIONED
        with pytest.raises(MinidiskDecommissionedError):
            device.read(0, 0)

    def test_release_requires_draining(self, make_grace_device):
        device = make_grace_device()
        with pytest.raises(ConfigError):
            device.release_minidisk(0)  # still active

    def test_grace_budget_force_releases_oldest(self, make_grace_device):
        device = make_grace_device(grace=2)
        for mdisk_id in (0, 1, 2):
            device._decommission(device.minidisks[mdisk_id], reason="test")
        # Budget is 2: the oldest (0) was force-released.
        assert device.minidisk(0).status is MinidiskStatus.DECOMMISSIONED
        assert device.minidisk(1).status is MinidiskStatus.DRAINING
        assert device.minidisk(2).status is MinidiskStatus.DRAINING

    def test_grace_zero_is_immediate(self, make_grace_device):
        device = make_grace_device(grace=0)
        device.write(0, 0, b"x")
        device._decommission(device.minidisks[0], reason="test")
        assert device.minidisk(0).status is MinidiskStatus.DECOMMISSIONED

    def test_advertised_excludes_draining(self, make_grace_device):
        device = make_grace_device()
        before = device.advertised_lbas
        device._decommission(device.minidisks[0], reason="test")
        assert device.advertised_lbas == before - device.msize_lbas

    def test_draining_data_counts_as_physical_pressure(self,
                                                       make_grace_device):
        device = make_grace_device()
        for lba in range(device.msize_lbas):
            device.write(0, lba, b"x")
        device.flush()
        without = device.needed_opage_slots()
        device._decommission(device.minidisks[0], reason="test")
        with_draining = device.needed_opage_slots()
        # Advertised dropped by msize*(1+hf) worth but draining data adds
        # back its live footprint.
        assert with_draining > without - int(device.msize_lbas * 1.25)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            SalamanderConfig(grace_decommissions=-1)


class TestGraceUnderWear:
    def test_wear_driven_grace_eventually_releases(self, make_grace_device):
        device = make_grace_device(grace=2)
        rng = np.random.default_rng(0)
        try:
            for _ in range(60_000):
                active = device.active_minidisks()
                if not active:
                    break
                mdisk = active[int(rng.integers(0, len(active)))]
                device.write(mdisk.mdisk_id,
                             int(rng.integers(0, mdisk.size_lbas // 2)),
                             b"x")
        except ReproError:
            pass
        assert device.stats.decommissioned_minidisks > 0
        # The draining set never exceeds the grace budget.
        assert len(device._draining) <= 2
