"""Unit tests for the limbo ledger (Eq. 1 accounting)."""

import pytest

from repro.errors import ConfigError
from repro.salamander.limbo import LimboLedger


@pytest.fixture
def limbo():
    return LimboLedger(dead_level=4)


class TestMembership:
    def test_add_and_query(self, limbo):
        limbo.add(10, 1)
        assert 10 in limbo
        assert limbo.level_of(10) == 1
        assert len(limbo) == 1

    def test_double_add_rejected(self, limbo):
        limbo.add(10, 1)
        with pytest.raises(ConfigError):
            limbo.add(10, 2)

    def test_remove_returns_level(self, limbo):
        limbo.add(10, 2)
        assert limbo.remove(10) == 2
        assert 10 not in limbo

    def test_remove_missing_rejected(self, limbo):
        with pytest.raises(ConfigError):
            limbo.remove(99)

    def test_dead_level_not_parkable(self, limbo):
        with pytest.raises(ConfigError):
            limbo.add(1, 4)


class TestBump:
    def test_bump_raises_level(self, limbo):
        limbo.add(10, 1)
        limbo.bump(10, 3)
        assert limbo.level_of(10) == 3

    def test_bump_cannot_lower(self, limbo):
        limbo.add(10, 2)
        with pytest.raises(ConfigError):
            limbo.bump(10, 1)

    def test_bump_missing_rejected(self, limbo):
        with pytest.raises(ConfigError):
            limbo.bump(99, 2)


class TestEq1Accounting:
    def test_counts_histogram(self, limbo):
        for fpage, level in [(1, 1), (2, 1), (3, 2)]:
            limbo.add(fpage, level)
        assert limbo.counts() == {1: 2, 2: 1}

    def test_capacity_matches_eq1(self, limbo):
        # valid[limbo[Lj]] = (4 - j) * limbo[Lj]
        for fpage, level in [(1, 1), (2, 1), (3, 2), (4, 3)]:
            limbo.add(fpage, level)
        assert limbo.capacity_opages(1) == 3 * 2
        assert limbo.capacity_opages(2) == 2 * 1
        assert limbo.capacity_opages(3) == 1 * 1
        assert limbo.capacity_opages() == 6 + 2 + 1

    def test_pages_at_sorted(self, limbo):
        limbo.add(9, 1)
        limbo.add(3, 1)
        assert limbo.pages_at(1) == [3, 9]

    def test_empty_ledger(self, limbo):
        assert limbo.counts() == {}
        assert limbo.capacity_opages() == 0
