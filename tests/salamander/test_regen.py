"""Unit tests for revival planning (§3.4)."""

import pytest

from repro.errors import ConfigError
from repro.salamander.limbo import LimboLedger
from repro.salamander.regen import plan_revival


@pytest.fixture
def limbo():
    return LimboLedger(dead_level=4)


class TestPlanRevival:
    def test_none_when_empty(self, limbo):
        assert plan_revival(limbo, 10) is None

    def test_none_when_insufficient(self, limbo):
        limbo.add(1, 1)  # 3 oPages
        assert plan_revival(limbo, 10) is None

    def test_minimal_sufficient_pages(self, limbo):
        for fpage in range(10):
            limbo.add(fpage, 1)  # 3 oPages each
        plan = plan_revival(limbo, 10)
        assert plan is not None
        assert plan.level == 1
        assert len(plan.fpages) == 4  # ceil(10 / 3)
        assert plan.capacity_opages == 12

    def test_prefers_lowest_populated_level(self, limbo):
        for fpage in range(4):
            limbo.add(fpage, 2)       # level 2: 2 oPages each (8 total)
        for fpage in range(10, 14):
            limbo.add(fpage, 1)       # level 1: 3 oPages each (12 total)
        plan = plan_revival(limbo, 8)
        assert plan.level == 1

    def test_uniform_tiredness_no_level_mixing(self, limbo):
        # 2 pages at L1 (6 oPages) + 2 at L2 (4 oPages) = 10 combined, but
        # no single level covers 8 -> no plan (paper's uniformity rule).
        limbo.add(1, 1)
        limbo.add(2, 1)
        limbo.add(3, 2)
        limbo.add(4, 2)
        assert plan_revival(limbo, 8) is None

    def test_takes_pages_in_order(self, limbo):
        for fpage in (7, 3, 11):
            limbo.add(fpage, 1)
        plan = plan_revival(limbo, 4)
        assert plan.fpages == (3, 7)

    def test_does_not_mutate_ledger(self, limbo):
        for fpage in range(5):
            limbo.add(fpage, 1)
        plan_revival(limbo, 6)
        assert len(limbo) == 5

    def test_validation(self, limbo):
        with pytest.raises(ConfigError):
            plan_revival(limbo, 0)
