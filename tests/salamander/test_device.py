"""Unit tests for the SalamanderSSD host interface and configuration."""

import numpy as np
import pytest

from repro.errors import (
    ConfigError,
    DeviceBrickedError,
    MinidiskDecommissionedError,
    ReproError,
)
from repro.salamander.device import (
    SalamanderConfig,
    SalamanderMode,
    SalamanderSSD,
)
from repro.salamander.events import (
    DeviceExhausted,
    MinidiskDecommissioned,
    MinidiskRegenerated,
)


def wear_out(device, utilization=0.6, seed=0, max_writes=500_000):
    """Random overwrites over active minidisks until the device gives up."""
    rng = np.random.default_rng(seed)
    writes = 0
    try:
        while writes < max_writes:
            active = device.active_minidisks()
            if not active:
                break
            mdisk = active[int(rng.integers(0, len(active)))]
            hot = max(1, int(utilization * mdisk.size_lbas))
            device.write(mdisk.mdisk_id, int(rng.integers(0, hot)), b"x")
            writes += 1
    except ReproError as error:
        return writes, error
    return writes, None


class TestConfig:
    def test_mode_accepts_strings(self):
        config = SalamanderConfig(mode="regen")
        assert config.mode is SalamanderMode.REGEN

    @pytest.mark.parametrize("kwargs", [
        {"msize_lbas": 0},
        {"regen_max_level": 0},
        {"headroom_fraction": 1.0},
        {"victim_policy": "nope"},
        {"mode": "invalid"},
    ])
    def test_validation(self, kwargs):
        with pytest.raises((ConfigError, ValueError)):
            SalamanderConfig(**kwargs)

    def test_device_too_small_rejected(self, make_chip, ftl_config):
        config = SalamanderConfig(msize_lbas=100_000, ftl=ftl_config)
        with pytest.raises(ConfigError):
            SalamanderSSD(make_chip(), config)


class TestTopology:
    def test_initial_minidisk_count_fits_headroom(self, make_salamander):
        device = make_salamander()
        total = device.geometry.total_opage_slots
        needed = device.needed_opage_slots()
        assert needed <= total
        # Adding one more mDisk would not fit.
        one_more = needed + int(device.msize_lbas * 1.25)
        assert one_more > total

    def test_advertised_matches_active_disks(self, make_salamander):
        device = make_salamander()
        n = len(device.active_minidisks())
        assert device.advertised_lbas == n * device.msize_lbas
        assert device.advertised_bytes == device.advertised_lbas * 4096

    def test_minidisk_lookup(self, make_salamander):
        device = make_salamander()
        assert device.minidisk(0).mdisk_id == 0
        with pytest.raises(ConfigError):
            device.minidisk(len(device.minidisks))


class TestHostIO:
    def test_roundtrip_per_minidisk(self, make_salamander):
        device = make_salamander()
        device.write(0, 0, b"zero")
        device.write(1, 0, b"one")
        assert device.read(0, 0).rstrip(b"\0") == b"zero"
        assert device.read(1, 0).rstrip(b"\0") == b"one"

    def test_minidisks_are_isolated_address_spaces(self, make_salamander):
        device = make_salamander()
        device.write(0, 5, b"md0")
        assert device.read(1, 5) == bytes(4096)

    def test_lba_bounds_per_minidisk(self, make_salamander):
        device = make_salamander()
        with pytest.raises(ConfigError):
            device.write(0, device.msize_lbas, b"x")

    def test_trim(self, make_salamander):
        device = make_salamander()
        device.write(0, 1, b"data")
        device.trim(0, 1)
        assert device.read(0, 1) == bytes(4096)

    def test_io_to_decommissioned_minidisk_rejected(self, make_salamander):
        device = make_salamander()
        victim = device.minidisks[0]
        device._decommission(victim, reason="test")
        with pytest.raises(MinidiskDecommissionedError):
            device.write(0, 0, b"x")
        with pytest.raises(MinidiskDecommissionedError):
            device.read(0, 0)


class TestEvents:
    def test_listener_receives_decommission(self, make_salamander):
        device = make_salamander()
        events = []
        device.add_listener(events.append)
        device._decommission(device.minidisks[0], reason="test")
        assert len(events) == 1
        event = events[0]
        assert isinstance(event, MinidiskDecommissioned)
        assert event.mdisk_id == 0
        assert event.reason == "test"
        assert event.remaining_active == len(device.active_minidisks())

    def test_event_log_kept_on_device(self, make_salamander):
        device = make_salamander()
        device._decommission(device.minidisks[0], reason="test")
        assert len(device.events) == 1

    def test_exhaustion_event_and_refusal(self, make_salamander):
        device = make_salamander()
        for mdisk in list(device.active_minidisks()):
            device._decommission(mdisk, reason="test")
        device._exhaust()
        assert isinstance(device.events[-1], DeviceExhausted)
        assert not device.is_alive
        with pytest.raises(DeviceBrickedError):
            device.read(0, 0)

    def test_event_seq_totally_ordered(self, make_salamander):
        device = make_salamander()
        device._decommission(device.minidisks[0], reason="a")
        device._decommission(device.minidisks[1], reason="b")
        seqs = [e.seq for e in device.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestReport:
    def test_report_fields(self, make_salamander):
        device = make_salamander(mode="regen")
        report = device.report()
        assert report["mode"] == "regen"
        assert report["active_minidisks"] == len(device.active_minidisks())
        assert report["alive"] == 1.0
        assert report["in_service_opage_slots"] > 0
