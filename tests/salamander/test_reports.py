"""Tests for Salamander reporting surfaces."""

import pytest

from repro.salamander.minidisk import MinidiskStatus


class TestMinidiskReport:
    def test_one_row_per_minidisk(self, make_salamander):
        device = make_salamander()
        rows = device.minidisk_report()
        assert len(rows) == len(device.minidisks)
        assert {row["mdisk_id"] for row in rows} == \
            {m.mdisk_id for m in device.minidisks}

    def test_live_counts_track_writes(self, make_salamander):
        device = make_salamander()
        device.write(2, 0, b"a")
        device.write(2, 1, b"b")
        rows = {row["mdisk_id"]: row for row in device.minidisk_report()}
        assert rows[2]["live_lbas"] == 2
        assert rows[0]["live_lbas"] == 0

    def test_status_and_level_reported(self, make_salamander):
        device = make_salamander(mode="regen")
        device._decommission(device.minidisks[0], reason="test")
        rows = {row["mdisk_id"]: row for row in device.minidisk_report()}
        assert rows[0]["status"] == MinidiskStatus.DECOMMISSIONED.value
        assert rows[1]["status"] == MinidiskStatus.ACTIVE.value
        assert all("level" in row for row in rows.values())

    def test_report_has_headline_fields(self, make_salamander):
        device = make_salamander(mode="regen")
        report = device.report()
        for key in ("mode", "active_minidisks", "advertised_bytes",
                    "limbo_capacity_opages", "alive",
                    "write_amplification"):
            assert key in report

    def test_reports_survive_device_death(self, make_salamander):
        device = make_salamander()
        for mdisk in list(device.active_minidisks()):
            device._decommission(mdisk, reason="test")
        device._exhaust()
        assert device.report()["alive"] == 0.0
        assert all(row["status"] == "decommissioned"
                   for row in device.minidisk_report())
