"""Unit tests for decommission victim policies."""

import pytest

from repro.errors import ConfigError
from repro.salamander.minidisk import Minidisk
from repro.salamander.shrink import VICTIM_POLICIES, choose_victim


@pytest.fixture
def disks():
    return [
        Minidisk(mdisk_id=0, size_lbas=16, created_seq=0),
        Minidisk(mdisk_id=1, size_lbas=16, created_seq=5),
        Minidisk(mdisk_id=2, size_lbas=16, created_seq=2),
    ]


class TestPolicies:
    def test_youngest(self, disks):
        victim = choose_victim("youngest", disks, {})
        assert victim.mdisk_id == 1  # created_seq 5 is newest

    def test_oldest(self, disks):
        victim = choose_victim("oldest", disks, {})
        assert victim.mdisk_id == 0

    def test_emptiest(self, disks):
        victim = choose_victim("emptiest", disks, {0: 10, 1: 3, 2: 7})
        assert victim.mdisk_id == 1

    def test_emptiest_defaults_missing_counts_to_zero(self, disks):
        victim = choose_victim("emptiest", disks, {0: 10, 1: 3})
        assert victim.mdisk_id == 2

    def test_youngest_prefers_regenerated_disks(self, disks):
        regen = Minidisk(mdisk_id=9, size_lbas=16, level=1, created_seq=99)
        victim = choose_victim("youngest", disks + [regen], {})
        assert victim is regen

    def test_all_policies_registered(self):
        assert set(VICTIM_POLICIES) == {"youngest", "oldest", "emptiest"}

    def test_unknown_policy_rejected(self, disks):
        with pytest.raises(ConfigError):
            choose_victim("fifo", disks, {})

    def test_empty_active_set_rejected(self):
        with pytest.raises(ConfigError):
            choose_victim("youngest", [], {})
