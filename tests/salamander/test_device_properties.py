"""Property-based tests: Salamander device invariants under random traffic.

Hypothesis drives random write/read/trim streams (with wear arriving
naturally) and checks the device's structural invariants at every step:
Eq. 2 is never left violated, limbo pages are never in service, advertised
capacity always equals active minidisks x mSize, and surviving data is
never silently corrupted.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.errors as E
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.salamander.device import SalamanderConfig, SalamanderSSD
from repro.salamander.minidisk import MinidiskStatus
from repro.ssd.ftl import FTLConfig


def build_device(mode: str, seed: int, grace: int = 0) -> SalamanderSSD:
    geometry = FlashGeometry(blocks=24, fpages_per_block=8)
    policy = TirednessPolicy(geometry=geometry)
    model = calibrate_power_law(policy, pec_limit_l0=18)
    chip = FlashChip(geometry, rber_model=model, policy=policy,
                     seed=seed, variation_sigma=0.3)
    return SalamanderSSD(chip, SalamanderConfig(
        msize_lbas=32, mode=mode, headroom_fraction=0.25,
        grace_decommissions=grace,
        ftl=FTLConfig(overprovision=0.25, buffer_opages=8)))


def check_invariants(device: SalamanderSSD) -> None:
    # Eq. 2 is maintained (or the device is dead).
    if device.is_alive and device.active_minidisks():
        assert device.capacity_deficit() <= 0
    # Advertised capacity is an exact multiple of active minidisks.
    active = device.active_minidisks()
    assert device.advertised_lbas == len(active) * device.msize_lbas
    # Limbo pages are FREE and never hold data.
    states = device.chip.state_array()
    for fpage in list(device.limbo._level_of):
        assert states[fpage] != 1  # not WRITTEN
    # The draining FIFO only holds DRAINING minidisks, within budget.
    for mdisk_id in device._draining:
        assert device.minidisk(mdisk_id).status is MinidiskStatus.DRAINING
    assert len(device._draining) <= \
        device.salamander_config.grace_decommissions
    # Valid counts are within block capacity.
    per_block = device._valid_per_block
    block_slots = (device.geometry.fpages_per_block
                   * device.geometry.opages_per_fpage)
    assert (per_block >= 0).all() and (per_block <= block_slots).all()


@pytest.mark.parametrize("mode", ["shrink", "regen"])
class TestInvariantsUnderTraffic:
    @given(seed=st.integers(0, 2**16), grace=st.sampled_from([0, 2]),
           bursts=st.integers(3, 8))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    def test_random_traffic_preserves_invariants(self, mode, seed, grace,
                                                 bursts):
        device = build_device(mode, seed=seed % 7, grace=grace)
        rng = np.random.default_rng(seed)
        shadow: dict[tuple[int, int], bytes] = {}
        for _burst in range(bursts):
            for _ in range(400):
                active = device.active_minidisks()
                if not active:
                    return
                mdisk = active[int(rng.integers(0, len(active)))]
                lba = int(rng.integers(0, mdisk.size_lbas))
                payload = f"{mdisk.mdisk_id}:{lba}:{_burst}".encode()
                try:
                    device.write(mdisk.mdisk_id, lba, payload)
                except E.ReproError:
                    return
                shadow[(mdisk.mdisk_id, lba)] = payload
            check_invariants(device)
            # Survivor reads are never silently wrong.
            for (mdisk_id, lba), expected in list(shadow.items())[:40]:
                if not device.minidisk(mdisk_id).is_active:
                    shadow.pop((mdisk_id, lba), None)
                    continue
                try:
                    data = device.read(mdisk_id, lba)
                except E.UncorrectableError:
                    shadow.pop((mdisk_id, lba), None)
                    continue
                assert data.rstrip(b"\0") == expected
