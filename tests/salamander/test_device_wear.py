"""Wear-driven behaviour of Salamander devices (ShrinkS + RegenS end to end)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.salamander.events import (
    MinidiskDecommissioned,
    MinidiskRegenerated,
)
from tests.salamander.test_device import wear_out


class TestShrinkS:
    def test_device_shrinks_gradually(self, make_salamander):
        device = make_salamander(mode="shrink", seed=1)
        initial = device.advertised_lbas
        wear_out(device)
        assert device.stats.decommissioned_minidisks > 0
        assert device.advertised_lbas < initial
        # Decommissions happen one mDisk at a time.
        assert device.advertised_lbas % device.msize_lbas == 0

    def test_shrink_mode_never_regenerates(self, make_salamander):
        device = make_salamander(mode="shrink", seed=1)
        wear_out(device)
        assert device.stats.regenerated_minidisks == 0
        assert len(device.limbo) == 0
        assert all(not isinstance(e, MinidiskRegenerated)
                   for e in device.events)

    def test_shrink_retires_pages_individually(self, make_salamander):
        device = make_salamander(mode="shrink", seed=1)
        wear_out(device)
        assert device.stats.retired_fpages > 0
        # Some blocks must be partially retired (page granularity): find a
        # block with both retired and non-retired pages.
        states = device.chip.state_array().reshape(
            device.geometry.blocks, device.geometry.fpages_per_block)
        partial = ((states == 2).any(axis=1) & (states != 2).any(axis=1))
        assert partial.any()

    def test_eq2_never_violated(self, make_salamander):
        device = make_salamander(mode="shrink", seed=1)
        rng = np.random.default_rng(0)
        for step in range(30_000):
            active = device.active_minidisks()
            if not active:
                break
            mdisk = active[int(rng.integers(0, len(active)))]
            try:
                device.write(mdisk.mdisk_id,
                             int(rng.integers(0, mdisk.size_lbas)), b"x")
            except ReproError:
                break
            if step % 500 == 0:
                assert device.capacity_deficit() <= 0

    def test_surviving_minidisks_keep_data(self, make_salamander):
        device = make_salamander(mode="shrink", seed=1)
        # Tag lba 0 of every mDisk, then wear until a few decommissions.
        for mdisk in device.active_minidisks():
            device.write(mdisk.mdisk_id, 0, f"tag-{mdisk.mdisk_id}".encode())
        rng = np.random.default_rng(3)
        while device.stats.decommissioned_minidisks < 3:
            active = device.active_minidisks()
            mdisk = active[int(rng.integers(0, len(active)))]
            hot = max(1, mdisk.size_lbas // 2)
            try:
                device.write(mdisk.mdisk_id,
                             1 + int(rng.integers(0, hot - 1)), b"x")
            except ReproError:
                break
        survivors = device.active_minidisks()
        assert survivors, "some minidisks should survive this workload"
        intact = 0
        for mdisk in survivors:
            data = device.read(mdisk.mdisk_id, 0).rstrip(b"\0")
            if data == f"tag-{mdisk.mdisk_id}".encode():
                intact += 1
        # The workload overwrote lba 0 of some disks; the rest must be intact.
        assert intact > 0


class TestRegenS:
    def test_regenerates_minidisks(self, make_salamander):
        device = make_salamander(mode="regen", seed=1)
        wear_out(device)
        assert device.stats.regenerated_minidisks > 0
        regen_events = [e for e in device.events
                        if isinstance(e, MinidiskRegenerated)]
        assert regen_events
        assert all(1 <= e.level <= 1 for e in regen_events)

    def test_regenerated_minidisk_is_usable(self, make_salamander):
        device = make_salamander(mode="regen", seed=1)
        rng = np.random.default_rng(0)
        # Wear until the first regeneration.
        while device.stats.regenerated_minidisks == 0:
            active = device.active_minidisks()
            mdisk = active[int(rng.integers(0, len(active)))]
            device.write(mdisk.mdisk_id,
                         int(rng.integers(0, mdisk.size_lbas // 2)), b"x")
        new_id = next(e.mdisk_id for e in device.events
                      if isinstance(e, MinidiskRegenerated))
        device.write(new_id, 0, b"reborn")
        assert device.read(new_id, 0).rstrip(b"\0") == b"reborn"
        assert device.minidisk(new_id).level >= 1

    def test_regen_outlives_shrink(self, make_salamander):
        shrink_writes, _ = wear_out(make_salamander(mode="shrink", seed=1),
                                    utilization=0.6)
        regen_writes, _ = wear_out(make_salamander(mode="regen", seed=1),
                                   utilization=0.6)
        assert regen_writes > shrink_writes

    def test_pages_beyond_max_level_retire(self, make_salamander):
        device = make_salamander(mode="regen", seed=1, regen_max_level=1)
        wear_out(device, max_writes=200_000)
        levels = device.chip.level_array()
        states = device.chip.state_array()
        # No in-service page sits above the allowed level.
        in_service = states != 2
        assert (levels[in_service] <= 1).all()

    def test_higher_max_level_extends_life_further(self, make_salamander):
        l1_writes, _ = wear_out(
            make_salamander(mode="regen", seed=1, regen_max_level=1))
        l2_writes, _ = wear_out(
            make_salamander(mode="regen", seed=1, regen_max_level=2))
        assert l2_writes >= l1_writes

    def test_limbo_pages_not_allocated(self, make_salamander):
        device = make_salamander(mode="regen", seed=1)
        rng = np.random.default_rng(0)
        for _ in range(50_000):
            active = device.active_minidisks()
            if not active:
                break
            mdisk = active[int(rng.integers(0, len(active)))]
            try:
                device.write(mdisk.mdisk_id,
                             int(rng.integers(0, mdisk.size_lbas)), b"x")
            except ReproError:
                break
            if device.limbo:
                # No limbo page may be WRITTEN.
                states = device.chip.state_array()
                for fpage in list(device.limbo._level_of):
                    assert states[fpage] != 1


class TestLifetimeOrdering:
    def test_full_tournament_ordering(self, make_baseline, make_cvss,
                                      make_salamander):
        """The paper's headline: baseline < CVSS <= ShrinkS < RegenS."""
        from tests.ssd.test_cvss import churn
        base, _ = churn(make_baseline(seed=1), utilization=0.6)
        cvss, _ = churn(make_cvss(seed=1), utilization=0.6)
        shrink, _ = wear_out(make_salamander(mode="shrink", seed=1),
                             utilization=0.6)
        regen, _ = wear_out(make_salamander(mode="regen", seed=1),
                            utilization=0.6)
        assert base < cvss <= shrink < regen
