"""Unit tests for storage nodes."""

import pytest

from repro.errors import ConfigError
from repro.difs.node import StorageNode
from repro.difs.volume import MonolithicVolume


class TestNode:
    def test_add_and_list_volumes(self, make_baseline):
        node = StorageNode("n0")
        volume = MonolithicVolume("n0/dev0", "n0", 4, make_baseline())
        node.add_volume(volume)
        assert node.live_volumes() == [volume]
        assert node.capacity_lbas() == volume.capacity_lbas()

    def test_duplicate_volume_rejected(self, make_baseline):
        node = StorageNode("n0")
        volume = MonolithicVolume("n0/dev0", "n0", 4, make_baseline())
        node.add_volume(volume)
        with pytest.raises(ConfigError):
            node.add_volume(volume)

    def test_foreign_volume_rejected(self, make_baseline):
        node = StorageNode("n0")
        volume = MonolithicVolume("n1/dev0", "n1", 4, make_baseline())
        with pytest.raises(ConfigError):
            node.add_volume(volume)

    def test_dead_volumes_excluded(self, make_baseline):
        node = StorageNode("n0")
        volume = MonolithicVolume("n0/dev0", "n0", 4, make_baseline())
        node.add_volume(volume)
        volume.mark_failed()
        assert node.live_volumes() == []
        assert node.capacity_lbas() == 0

    def test_empty_node_id_rejected(self):
        with pytest.raises(ConfigError):
            StorageNode("")
