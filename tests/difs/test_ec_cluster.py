"""Integration: the diFS running RS(k, m) erasure coding over minidisks."""

import numpy as np
import pytest

import repro.errors as E
from repro.difs.cluster import Cluster, ClusterConfig


@pytest.fixture
def ec_cluster(make_salamander):
    """RS(3, 2) over six nodes (RS needs total_units independent nodes)."""
    cluster = Cluster(ClusterConfig(
        redundancy="rs", rs_k=3, rs_m=2, chunk_lbas=6), seed=11)
    for n in range(6):
        cluster.add_node(f"n{n}")
        cluster.add_device(f"n{n}", make_salamander(seed=n + 1))
    return cluster


class TestECBasics:
    def test_create_places_k_plus_m_units(self, ec_cluster):
        chunk = ec_cluster.create_chunk("c0", b"erasure-coded payload")
        assert chunk.replica_count == 5
        assert chunk.indexes_present() == set(range(5))
        nodes = {ec_cluster.volumes[r.volume_id].node_id
                 for r in chunk.replicas}
        assert len(nodes) == 5

    def test_unit_smaller_than_chunk(self, ec_cluster):
        # 6-page chunks split into 2-page fragments: EC's space advantage.
        assert ec_cluster.unit_lbas == 2
        assert ec_cluster.scheme.storage_overhead == pytest.approx(5 / 3)

    def test_read_roundtrip(self, ec_cluster):
        data = b"some bytes that span multiple fragments" * 10
        ec_cluster.create_chunk("c0", data)
        assert ec_cluster.read_chunk("c0").rstrip(b"\0") == data

    def test_read_survives_m_failures(self, ec_cluster):
        data = b"still-there"
        chunk = ec_cluster.create_chunk("c0", data)
        for replica in list(chunk.replicas)[:2]:  # kill m = 2 units
            ec_cluster.volumes[replica.volume_id].mark_failed()
        assert ec_cluster.read_chunk("c0").rstrip(b"\0") == data

    def test_read_fails_beyond_m_failures(self, ec_cluster):
        chunk = ec_cluster.create_chunk("c0", b"gone")
        for replica in list(chunk.replicas)[:3]:  # kill k of 5: too many
            ec_cluster.volumes[replica.volume_id].mark_failed()
        with pytest.raises(E.ChunkLostError):
            ec_cluster.read_chunk("c0")


class TestECRecovery:
    def test_lost_fragment_is_rebuilt(self, ec_cluster):
        data = b"rebuild me"
        chunk = ec_cluster.create_chunk("c0", data)
        victim = chunk.replicas[0]
        ec_cluster.recovery.volume_failed(victim.volume_id)
        ec_cluster.run_recovery()
        assert chunk.indexes_present() == set(range(5))
        assert ec_cluster.read_chunk("c0").rstrip(b"\0") == data

    def test_repair_amplification_reads_k_units(self, ec_cluster):
        chunk = ec_cluster.create_chunk("c0", b"data")
        unit_bytes = ec_cluster.unit_lbas * 4096
        victim = chunk.replicas[0]
        ec_cluster.recovery.volume_failed(victim.volume_id)
        ec_cluster.run_recovery()
        stats = ec_cluster.recovery.stats
        # One lost fragment costs k fragment-reads and one fragment-write.
        assert stats.bytes_read == 3 * unit_bytes
        assert stats.bytes_written == unit_bytes

    def test_wear_churn_under_ec(self, ec_cluster):
        rng = np.random.default_rng(2)
        for i in range(20):
            ec_cluster.create_chunk(f"c{i}", f"data-{i}".encode())
        generation = {i: 0 for i in range(20)}
        for round_index in range(12_000):
            if ec_cluster.recovery.stats.volume_failures >= 10:
                break
            i = int(rng.integers(0, 20))
            try:
                ec_cluster.delete_chunk(f"c{i}")
                ec_cluster.create_chunk(f"c{i}",
                                        f"r{round_index}-{i}".encode())
                generation[i] = round_index
            except E.ReproError:
                pass
            ec_cluster.poll_failures()
            ec_cluster.run_recovery()
        assert ec_cluster.recovery.stats.volume_failures >= 1
        assert ec_cluster.recovery.stats.chunks_lost == 0
        for i in range(20):
            expected = (f"r{generation[i]}-{i}".encode()
                        if generation[i] else f"data-{i}".encode())
            assert ec_cluster.read_chunk(f"c{i}").rstrip(b"\0") == expected
