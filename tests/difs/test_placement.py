"""Unit tests for replica placement."""

import pytest

from repro.errors import ConfigError, NoPlacementError
from repro.difs.placement import PLACEMENT_POLICIES, place_replicas
from repro.difs.volume import MinidiskVolume
from repro.rng import make_rng


@pytest.fixture
def volumes(make_salamander):
    """Six volumes across three nodes (two minidisks per node)."""
    pool = []
    for node in ("n0", "n1", "n2"):
        device = make_salamander()
        for mdisk_id in (0, 1):
            pool.append(MinidiskVolume(
                f"{node}/dev/md{mdisk_id}", node, 4, device, mdisk_id))
    return pool


@pytest.mark.parametrize("placement", sorted(PLACEMENT_POLICIES))
class TestCommonRules:
    def test_distinct_nodes(self, volumes, placement):
        chosen = place_replicas(placement, volumes, 3, make_rng(0))
        assert len({v.node_id for v in chosen}) == 3

    def test_respects_avoid_nodes(self, volumes, placement):
        chosen = place_replicas(placement, volumes, 2, make_rng(0),
                                avoid_nodes={"n0"})
        assert all(v.node_id != "n0" for v in chosen)

    def test_impossible_count_raises(self, volumes, placement):
        with pytest.raises(NoPlacementError):
            place_replicas(placement, volumes, 4, make_rng(0))

    def test_skips_dead_volumes(self, volumes, placement):
        for volume in volumes:
            if volume.node_id == "n2":
                volume.mark_failed()
        with pytest.raises(NoPlacementError):
            place_replicas(placement, volumes, 3, make_rng(0))

    def test_skips_full_volumes(self, volumes, placement):
        for volume in volumes:
            if volume.node_id == "n2":
                while volume.allocate_slot() is not None:
                    pass
        chosen = place_replicas(placement, volumes, 2, make_rng(0))
        assert all(v.node_id != "n2" for v in chosen)


class TestSpreadPolicy:
    def test_prefers_least_loaded(self, volumes):
        # Load up everything on n0/md0 except one slot.
        busy = volumes[0]
        for _ in range(busy.total_slots // 2):
            busy.allocate_slot()
        chosen = place_replicas("spread-nodes", volumes, 1, make_rng(0),
                                avoid_nodes={"n1", "n2"})
        assert chosen[0] is volumes[1]  # the empty volume on n0


class TestValidation:
    def test_unknown_policy(self, volumes):
        with pytest.raises(ConfigError):
            place_replicas("round-robin", volumes, 1, make_rng(0))

    def test_non_positive_count(self, volumes):
        with pytest.raises(ConfigError):
            place_replicas("random", volumes, 0, make_rng(0))
