"""Sharded staged-IO dispatch (ClusterTicker) determinism.

The cluster contract is *stronger* than the fleet one: shard
boundaries partition the staged queues contiguously in staging order
and dispatch walks them shard-major, so the global queue traversal —
and therefore every chunk payload, namespace record, wear counter, and
RNG stream — is bit-identical for **any** shard count, not just a
fixed one (docs/SHARDING.md).
"""

import hashlib
import json

import pytest

from repro import obs
from repro.difs.cluster import Cluster, ClusterConfig
from repro.difs.ticker import ClusterTicker
from repro.errors import ConfigError
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.flash.tiredness import TirednessPolicy, calibrate_power_law
from repro.ssd.device import BaselineSSD, SSDConfig
from repro.ssd.ftl import FTLConfig


def _run_cluster(**overrides) -> str:
    """The CI determinism fixture: build, write, update, delete, audit."""
    geometry = FlashGeometry(blocks=16, fpages_per_block=8)
    policy = TirednessPolicy(geometry=geometry)
    model = calibrate_power_law(policy, pec_limit_l0=60)
    cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4,
                                    **overrides), seed=29)
    for index in range(3):
        cluster.add_node(f"n{index}")
        cluster.add_device(f"n{index}", BaselineSSD(
            FlashChip(geometry, rber_model=model, policy=policy,
                      seed=index + 1, variation_sigma=0.3),
            SSDConfig(ftl=FTLConfig(overprovision=0.25, buffer_opages=8,
                                    gc_reserve_blocks=2))))
    for index in range(12):
        cluster.create_chunk(f"c{index}", f"chunk-{index}".encode() * 3)
    for index in range(0, 12, 2):
        cluster.update_chunk(f"c{index}", f"update-{index}".encode() * 2)
    cluster.delete_chunk("c11")
    cluster.audit()
    return json.dumps({
        "chunks": {cid: hashlib.sha256(
                       cluster.read_chunk(cid)).hexdigest()
                   for cid in sorted(cluster.namespace)},
        "namespace": cluster.namespace_snapshot(),
        "wear": cluster.wear_stats(),
        "cluster_rng": str(cluster.rng.bit_generator.state),
    }, indent=1, sort_keys=True, default=str)


class TestShardedDispatchIdentity:
    @pytest.fixture(scope="class")
    def direct_state(self):
        return _run_cluster(queue_depth=0)

    @pytest.mark.parametrize("shards", [1, 2, 8])
    def test_any_shard_count_matches_direct_path(self, direct_state,
                                                 shards):
        batched = _run_cluster(queue_depth=8, io_batch_chunks=8,
                               shards=shards)
        assert batched == direct_state

    def test_shards_beyond_queue_count_are_harmless(self, direct_state):
        # More shards than staged queues: tail shards dispatch nothing.
        batched = _run_cluster(queue_depth=8, io_batch_chunks=8,
                               shards=64)
        assert batched == direct_state


class TestTickerMechanics:
    def test_note_without_stage_is_noop(self):
        ticker = ClusterTicker(io_batch_chunks=4)
        assert ticker.note_chunk_staged() is False
        assert ticker.dispatch() == []
        assert not ticker.staged

    def test_config_shards_validated(self):
        with pytest.raises(ConfigError):
            ClusterConfig(shards=0)

    def test_shard_instruments_cover_dispatch(self):
        obs.disable()
        registry = obs.enable_metrics()
        try:
            _run_cluster(queue_depth=8, io_batch_chunks=8, shards=2)
            names = {family["name"]
                     for family in registry.to_dict()["metrics"]}
        finally:
            obs.disable()
        assert "repro_shard_tick_seconds" in names
        assert "repro_shard_merge_seconds" in names
        assert "repro_shard_devices" in names
