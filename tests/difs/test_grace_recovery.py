"""The diFS uses the grace period: drain-source recovery, then release."""

import numpy as np
import pytest

import repro.errors as E
from repro.difs.cluster import Cluster, ClusterConfig
from repro.salamander.device import SalamanderConfig, SalamanderSSD
from repro.salamander.minidisk import MinidiskStatus


@pytest.fixture
def grace_cluster(make_chip, ftl_config):
    cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4), seed=11)
    devices = []
    for n in range(3):
        cluster.add_node(f"n{n}")
        device = SalamanderSSD(make_chip(seed=n + 1), SalamanderConfig(
            msize_lbas=32, mode="regen", headroom_fraction=0.25,
            grace_decommissions=3, ftl=ftl_config))
        cluster.add_device(f"n{n}", device)
        devices.append(device)
    return cluster, devices


class TestGraceRecovery:
    def test_recovery_sources_from_draining_volume(self, grace_cluster):
        cluster, devices = grace_cluster
        cluster.create_chunk("c0", b"important")
        chunk = cluster.namespace["c0"]
        # Decommission (with grace) a minidisk holding a replica.
        replica = chunk.replicas[0]
        volume = cluster.volumes[replica.volume_id]
        device = volume.device
        device._decommission(device.minidisk(volume.mdisk_id), reason="wear")
        cluster.run_recovery()
        # Chunk fully replicated again; the drained disk was released.
        assert chunk.replica_count == 2
        assert (device.minidisk(volume.mdisk_id).status
                is MinidiskStatus.DECOMMISSIONED)
        assert cluster.read_chunk("c0").rstrip(b"\0") == b"important"

    def test_grace_rescues_last_copy(self, grace_cluster):
        cluster, devices = grace_cluster
        cluster.create_chunk("c0", b"only-copy-matters")
        chunk = cluster.namespace["c0"]
        # Kill one replica outright (no grace: administrative failure),
        # and decommission-with-grace the other. Without the grace period
        # the chunk would be lost; with it, recovery drains the survivor.
        admin_dead = chunk.replicas[0]
        cluster.volumes[admin_dead.volume_id].mark_failed()
        cluster.recovery.volume_failed(admin_dead.volume_id)
        graced = chunk.replicas[1]
        volume = cluster.volumes[graced.volume_id]
        device = volume.device
        device._decommission(device.minidisk(volume.mdisk_id), reason="wear")
        cluster.run_recovery()
        assert cluster.recovery.stats.chunks_lost == 0
        assert cluster.read_chunk("c0").rstrip(b"\0") == b"only-copy-matters"

    def test_release_happens_even_with_no_chunks(self, grace_cluster):
        cluster, devices = grace_cluster
        device = devices[0]
        device._decommission(device.minidisk(0), reason="wear")
        cluster.run_recovery()
        assert device.minidisk(0).status is MinidiskStatus.DECOMMISSIONED

    def test_wear_churn_with_grace_loses_nothing(self, grace_cluster):
        cluster, devices = grace_cluster
        rng = np.random.default_rng(2)
        for i in range(24):
            cluster.create_chunk(f"c{i}", f"data-{i}".encode())
        generation = {i: 0 for i in range(24)}
        for round_index in range(4000):
            if cluster.recovery.stats.volume_failures >= 15:
                break
            i = int(rng.integers(0, 24))
            try:
                cluster.delete_chunk(f"c{i}")
                cluster.create_chunk(f"c{i}",
                                     f"r{round_index}-{i}".encode())
                generation[i] = round_index
            except E.ReproError:
                pass
            cluster.poll_failures()
            cluster.run_recovery()
        assert cluster.recovery.stats.chunks_lost == 0
        for i in range(24):
            expected = (f"r{generation[i]}-{i}".encode()
                        if generation[i] else f"data-{i}".encode())
            assert cluster.read_chunk(f"c{i}").rstrip(b"\0") == expected
