"""Unit tests for the cluster namespace and client paths."""

import pytest

from repro.errors import ChunkLostError, ConfigError
from repro.difs.cluster import Cluster, ClusterConfig


@pytest.fixture
def cluster(make_salamander):
    cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4), seed=11)
    for n in range(3):
        cluster.add_node(f"n{n}")
        cluster.add_device(f"n{n}", make_salamander(seed=n + 1))
    return cluster


class TestTopology:
    def test_volumes_registered_per_minidisk(self, cluster, make_salamander):
        device = make_salamander()
        count_before = len(cluster.volumes)
        cluster.add_node("n9")
        volumes = cluster.add_device("n9", device)
        assert len(volumes) == len(device.active_minidisks())
        assert len(cluster.volumes) == count_before + len(volumes)

    def test_monolithic_device_is_one_volume(self, cluster, make_baseline):
        cluster.add_node("n8")
        volumes = cluster.add_device("n8", make_baseline())
        assert len(volumes) == 1

    def test_duplicate_node_rejected(self, cluster):
        with pytest.raises(ConfigError):
            cluster.add_node("n0")

    def test_unknown_node_rejected(self, cluster, make_baseline):
        with pytest.raises(ConfigError):
            cluster.add_device("n42", make_baseline())


class TestChunkLifecycle:
    def test_create_and_read(self, cluster):
        cluster.create_chunk("alpha", b"some-bytes")
        data = cluster.read_chunk("alpha")
        assert data.rstrip(b"\0") == b"some-bytes"
        assert len(data) == cluster.config.chunk_bytes

    def test_replication_factor_respected(self, cluster):
        chunk = cluster.create_chunk("alpha", b"x")
        assert chunk.replica_count == 2
        nodes = {cluster.volumes[r.volume_id].node_id
                 for r in chunk.replicas}
        assert len(nodes) == 2

    def test_duplicate_chunk_rejected(self, cluster):
        cluster.create_chunk("alpha", b"x")
        with pytest.raises(ConfigError):
            cluster.create_chunk("alpha", b"y")

    def test_oversized_chunk_rejected(self, cluster):
        with pytest.raises(ConfigError):
            cluster.create_chunk("big", b"x" * (cluster.config.chunk_bytes + 1))

    def test_delete_releases_slots(self, cluster):
        chunk = cluster.create_chunk("alpha", b"x")
        used = [cluster.volumes[r.volume_id].used_slots
                for r in chunk.replicas]
        assert all(u > 0 for u in used)
        cluster.delete_chunk("alpha")
        assert "alpha" not in cluster.namespace
        assert all(v.used_slots == 0 for v in cluster.volumes.values())

    def test_read_unknown_chunk_rejected(self, cluster):
        with pytest.raises(ConfigError):
            cluster.read_chunk("ghost")

    def test_all_replicas_lost_raises_chunk_lost(self, cluster):
        chunk = cluster.create_chunk("alpha", b"x")
        for replica in list(chunk.replicas):
            cluster.volumes[replica.volume_id].mark_failed()
        with pytest.raises(ChunkLostError):
            cluster.read_chunk("alpha")


class TestFailureDetection:
    def test_read_falls_back_to_surviving_replica(self, cluster):
        chunk = cluster.create_chunk("alpha", b"precious")
        first = chunk.replicas[0]
        cluster.volumes[first.volume_id].mark_failed()
        assert cluster.read_chunk("alpha").rstrip(b"\0") == b"precious"
        # The dead replica was forgotten and a repair enqueued.
        assert chunk.replica_on(first.volume_id) is None
        assert cluster.recovery.has_pending

    def test_poll_failures_detects_dead_volumes(self, cluster):
        volume_id = next(iter(cluster.volumes))
        cluster.volumes[volume_id].mark_failed()
        assert cluster.poll_failures() == 1
        assert cluster.poll_failures() == 0  # idempotent

    def test_report_shape(self, cluster):
        cluster.create_chunk("alpha", b"x")
        report = cluster.report()
        assert report["nodes"] == 3
        assert report["chunks"] == 1
        assert report["live_volumes"] == report["volumes"]
