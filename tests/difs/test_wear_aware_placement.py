"""Tests for the wear-aware placement policy (§3.2 open question)."""

import pytest

from repro.difs.placement import PLACEMENT_POLICIES, place_replicas
from repro.difs.volume import MinidiskVolume
from repro.rng import make_rng
from repro.salamander.minidisk import Minidisk


@pytest.fixture
def tiered_volumes(make_salamander):
    """Three nodes, each with one fresh (L0) and one regenerated (L1) disk."""
    pool = []
    for node in ("n0", "n1", "n2"):
        device = make_salamander(mode="regen")
        # Fabricate a regenerated minidisk on the device.
        regen = Minidisk(mdisk_id=len(device.minidisks),
                         size_lbas=device.msize_lbas, level=1,
                         created_seq=5)
        device.minidisks.append(regen)
        device._grow_flat_space(device.msize_lbas)
        pool.append(MinidiskVolume(f"{node}/fresh", node, 4, device, 0))
        pool.append(MinidiskVolume(f"{node}/tired", node, 4, device,
                                   regen.mdisk_id))
    return pool


class TestWearAware:
    def test_registered(self):
        assert "wear-aware" in PLACEMENT_POLICIES

    def test_prefers_l0_volumes(self, tiered_volumes):
        chosen = place_replicas("wear-aware", tiered_volumes, 3, make_rng(0))
        assert all(volume.level == 0 for volume in chosen)

    def test_falls_back_to_tired_when_l0_full(self, tiered_volumes):
        for volume in tiered_volumes:
            if volume.level == 0:
                while volume.allocate_slot() is not None:
                    pass
        chosen = place_replicas("wear-aware", tiered_volumes, 2, make_rng(0))
        assert all(volume.level == 1 for volume in chosen)

    def test_distinct_nodes_still_enforced(self, tiered_volumes):
        chosen = place_replicas("wear-aware", tiered_volumes, 3, make_rng(0))
        assert len({v.node_id for v in chosen}) == 3

    def test_balances_load_within_tier(self, tiered_volumes):
        fresh = [v for v in tiered_volumes if v.level == 0]
        # Load one fresh volume heavily; the least-loaded L0 wins first.
        for _ in range(fresh[0].total_slots // 2):
            fresh[0].allocate_slot()
        chosen = place_replicas("wear-aware", tiered_volumes, 2, make_rng(0),
                                avoid_nodes={fresh[2].node_id})
        assert chosen[0] is fresh[1]
        # The second pick is forced onto fresh[0]'s node, where the loaded
        # L0 volume still beats the tired one.
        assert chosen[1] is fresh[0]

    def test_usable_as_cluster_policy(self, make_salamander):
        from repro.difs.cluster import Cluster, ClusterConfig
        cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4,
                                        placement="wear-aware"), seed=3)
        for n in range(3):
            cluster.add_node(f"n{n}")
            cluster.add_device(f"n{n}", make_salamander(seed=n + 1))
        cluster.create_chunk("c0", b"hello")
        assert cluster.read_chunk("c0").rstrip(b"\0") == b"hello"
