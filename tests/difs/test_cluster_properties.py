"""Property tests: the cluster under random kill/repair sequences.

Hypothesis chooses which volumes to kill (never more than redundancy
tolerates between recovery runs); data must always decode and recovery
must always restore full redundancy while eligible volumes remain.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.errors as E
from repro.difs.cluster import Cluster, ClusterConfig
from repro.flash.chip import FlashChip
from repro.flash.geometry import FlashGeometry
from repro.salamander.device import SalamanderConfig, SalamanderSSD
from repro.ssd.ftl import FTLConfig


def build_cluster(redundancy: str, seed: int) -> Cluster:
    geometry = FlashGeometry(blocks=24, fpages_per_block=8)
    ftl = FTLConfig(overprovision=0.25, buffer_opages=8)
    if redundancy == "rs":
        config = ClusterConfig(redundancy="rs", rs_k=3, rs_m=2,
                               chunk_lbas=6)
        nodes = 7
    else:
        config = ClusterConfig(replication=2, chunk_lbas=4)
        nodes = 4
    cluster = Cluster(config, seed=seed)
    for n in range(nodes):
        cluster.add_node(f"n{n}")
        chip = FlashChip(geometry, seed=seed + n, variation_sigma=0.0,
                         inject_errors=False)
        cluster.add_device(f"n{n}", SalamanderSSD(chip, SalamanderConfig(
            msize_lbas=32, mode="shrink", headroom_fraction=0.25,
            ftl=ftl)))
    return cluster


@pytest.mark.parametrize("redundancy", ["replication", "rs"])
class TestKillRepairSequences:
    @given(seed=st.integers(0, 100),
           kill_rounds=st.lists(st.integers(0, 10**6), min_size=1,
                                max_size=6))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_tolerable_failures_never_lose_data(self, redundancy, seed,
                                                kill_rounds):
        cluster = build_cluster(redundancy, seed=seed % 5)
        tolerable = cluster.scheme.total_units - cluster.scheme.min_units
        for i in range(10):
            cluster.create_chunk(f"c{i}", f"data-{i}".encode())
        for round_seed in kill_rounds:
            live = [v for v in cluster.volumes.values() if v.is_alive]
            if len(live) <= cluster.scheme.total_units:
                break
            # Kill at most `tolerable` volumes before recovery runs.
            count = 1 + round_seed % max(1, tolerable)
            for offset in range(count):
                victim = live[(round_seed + offset * 7) % len(live)]
                cluster.recovery.volume_failed(victim.volume_id)
            cluster.run_recovery()
            for i in range(10):
                assert cluster.read_chunk(f"c{i}").rstrip(b"\0") == \
                    f"data-{i}".encode()
            assert cluster.recovery.stats.chunks_lost == 0
