"""Tests for the distributed-layer audit (deep scrub)."""

import pytest

import repro.errors as E
from repro.difs.cluster import Cluster, ClusterConfig


@pytest.fixture
def cluster(make_salamander):
    cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4), seed=11)
    for n in range(3):
        cluster.add_node(f"n{n}")
        cluster.add_device(f"n{n}", make_salamander(seed=n + 1))
    return cluster


class TestAudit:
    def test_healthy_cluster_audits_clean(self, cluster):
        for i in range(10):
            cluster.create_chunk(f"c{i}", f"data-{i}".encode())
        report = cluster.audit()
        assert report["chunks_checked"] == 10
        assert report["units_checked"] == 20  # 2 replicas each
        assert report["units_bad"] == 0
        assert report["repairs_queued"] == 0

    def test_empty_namespace(self, cluster):
        assert cluster.audit() == {"chunks_checked": 0, "units_checked": 0,
                                   "units_bad": 0, "repairs_queued": 0}

    def test_detects_and_repairs_dead_volume_units(self, cluster):
        for i in range(8):
            cluster.create_chunk(f"c{i}", f"data-{i}".encode())
        victim = cluster.namespace["c0"].replicas[0]
        cluster.volumes[victim.volume_id].mark_failed()
        report = cluster.audit()
        assert report["units_bad"] > 0
        assert report["repairs_queued"] > 0
        # After the audit's built-in recovery run, full redundancy is back.
        for i in range(8):
            assert cluster.namespace[f"c{i}"].replica_count == 2
            assert cluster.read_chunk(f"c{i}").rstrip(b"\0") == \
                f"data-{i}".encode()

    def test_rolling_cursor_covers_namespace(self, cluster):
        for i in range(9):
            cluster.create_chunk(f"c{i}", b"x")
        first = cluster.audit(max_chunks=5)
        second = cluster.audit(max_chunks=5)
        assert first["chunks_checked"] == 5
        assert second["chunks_checked"] == 5  # wraps around

    def test_finds_latent_media_damage(self, tiny_geometry, policy,
                                       fast_model, ftl_config, cluster):
        from tests.ssd.test_scrub import _age_written_blocks
        for i in range(8):
            cluster.create_chunk(f"c{i}", f"data-{i}".encode())
        for node in cluster.nodes.values():
            for device in node.devices:
                device.flush()
        # One device's media silently decays far past its ECC (latent
        # damage: no I/O has touched it since, so nobody noticed).
        victim_device = cluster.nodes["n0"].devices[0]
        limit = int(policy.pec_limits(fast_model)[0])
        _age_written_blocks(victim_device.chip, 4 * limit)
        report = cluster.audit()
        # The audit read every unit, so the decayed ones surfaced and were
        # repaired from healthy replicas on the other nodes.
        assert report["units_bad"] > 0
        assert report["repairs_queued"] > 0
        for i in range(8):
            assert cluster.read_chunk(f"c{i}").rstrip(b"\0") == \
                f"data-{i}".encode()
            assert cluster.namespace[f"c{i}"].replica_count == 2
