"""Unit tests for chunks and replicas."""

import pytest

from repro.errors import ConfigError
from repro.difs.chunk import Chunk, Replica


class TestReplica:
    def test_negative_slot_rejected(self):
        with pytest.raises(ConfigError):
            Replica(volume_id="v", slot=-1)

    def test_frozen(self):
        replica = Replica(volume_id="v", slot=0)
        with pytest.raises(AttributeError):
            replica.slot = 2


class TestChunk:
    def test_replica_on(self):
        chunk = Chunk(chunk_id="c", size_lbas=4)
        r1 = Replica("v1", 0)
        chunk.replicas.append(r1)
        assert chunk.replica_on("v1") is r1
        assert chunk.replica_on("v2") is None

    def test_drop_replica(self):
        chunk = Chunk(chunk_id="c", size_lbas=4)
        chunk.replicas.append(Replica("v1", 0))
        dropped = chunk.drop_replica("v1")
        assert dropped.volume_id == "v1"
        assert chunk.replica_count == 0

    def test_drop_missing_rejected(self):
        chunk = Chunk(chunk_id="c", size_lbas=4)
        with pytest.raises(ConfigError):
            chunk.drop_replica("v1")

    def test_size_validation(self):
        with pytest.raises(ConfigError):
            Chunk(chunk_id="c", size_lbas=0)
