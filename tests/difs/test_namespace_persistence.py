"""Tests for coordinator-metadata snapshot/restore."""

import json

import pytest

import repro.errors as E
from repro.difs.cluster import Cluster, ClusterConfig


def build(make_salamander, seed=11, **config_kwargs):
    defaults = dict(replication=2, chunk_lbas=4)
    defaults.update(config_kwargs)
    cluster = Cluster(ClusterConfig(**defaults), seed=seed)
    devices = []
    for n in range(3):
        cluster.add_node(f"n{n}")
        device = make_salamander(seed=n + 1)
        cluster.add_device(f"n{n}", device)
        devices.append(device)
    return cluster, devices


class TestNamespacePersistence:
    def test_snapshot_roundtrip_over_same_devices(self, make_salamander):
        cluster, devices = build(make_salamander)
        for i in range(10):
            cluster.create_chunk(f"c{i}", f"data-{i}".encode())
        for device in devices:
            device.flush()
        snapshot = cluster.namespace_snapshot()
        # A fresh coordinator process attaches to the same devices.
        reborn = Cluster(ClusterConfig(replication=2, chunk_lbas=4),
                         seed=11)
        for n, device in enumerate(devices):
            reborn.add_node(f"n{n}")
            reborn.add_device(f"n{n}", device)
        assert reborn.restore_namespace(snapshot) == 10
        for i in range(10):
            assert reborn.read_chunk(f"c{i}").rstrip(b"\0") == \
                f"data-{i}".encode()

    def test_snapshot_is_json_serialisable(self, make_salamander):
        cluster, _ = build(make_salamander)
        cluster.create_chunk("c0", b"x")
        text = json.dumps(cluster.namespace_snapshot())
        assert "c0" in text

    def test_restored_slots_not_reallocated(self, make_salamander):
        cluster, devices = build(make_salamander)
        chunk = cluster.create_chunk("c0", b"keep")
        for device in devices:
            device.flush()
        snapshot = cluster.namespace_snapshot()
        reborn = Cluster(ClusterConfig(replication=2, chunk_lbas=4),
                         seed=12)
        for n, device in enumerate(devices):
            reborn.add_node(f"n{n}")
            reborn.add_device(f"n{n}", device)
        reborn.restore_namespace(snapshot)
        # New chunks must not be placed over restored data.
        for i in range(12):
            reborn.create_chunk(f"new{i}", f"fresh-{i}".encode())
        assert reborn.read_chunk("c0").rstrip(b"\0") == b"keep"

    def test_missing_volume_queues_repair(self, make_salamander):
        cluster, devices = build(make_salamander)
        for i in range(6):
            cluster.create_chunk(f"c{i}", f"data-{i}".encode())
        for device in devices:
            device.flush()
        snapshot = cluster.namespace_snapshot()
        # The new coordinator only sees two of the three original devices.
        reborn = Cluster(ClusterConfig(replication=2, chunk_lbas=4),
                         seed=13)
        for n, device in enumerate(devices[:2]):
            reborn.add_node(f"n{n}")
            reborn.add_device(f"n{n}", device)
        reborn.add_node("n-new")
        reborn.add_device("n-new", make_salamander(seed=9))
        reborn.restore_namespace(snapshot)
        reborn.run_recovery()
        for i in range(6):
            assert reborn.read_chunk(f"c{i}").rstrip(b"\0") == \
                f"data-{i}".encode()
            assert reborn.namespace[f"c{i}"].replica_count == 2

    def test_restore_requires_empty_namespace(self, make_salamander):
        cluster, _ = build(make_salamander)
        cluster.create_chunk("c0", b"x")
        with pytest.raises(E.ConfigError):
            cluster.restore_namespace(cluster.namespace_snapshot())

    def test_restore_checks_config_compatibility(self, make_salamander):
        cluster, devices = build(make_salamander)
        snapshot = cluster.namespace_snapshot()
        other = Cluster(ClusterConfig(replication=3, chunk_lbas=4), seed=1)
        with pytest.raises(E.ConfigError):
            other.restore_namespace(snapshot)
