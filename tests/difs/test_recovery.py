"""Unit tests for the recovery manager."""

import pytest

from repro.difs.cluster import Cluster, ClusterConfig
from repro.salamander.events import MinidiskDecommissioned


@pytest.fixture
def cluster(make_salamander):
    cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4), seed=11)
    for n in range(4):
        cluster.add_node(f"n{n}")
        cluster.add_device(f"n{n}", make_salamander(seed=n + 1))
    return cluster


def fail_first_replica_volume(cluster, chunk_id):
    chunk = cluster.namespace[chunk_id]
    volume_id = chunk.replicas[0].volume_id
    cluster.recovery.volume_failed(volume_id)
    return volume_id


class TestVolumeRecovery:
    def test_chunks_re_replicated_after_volume_failure(self, cluster):
        for i in range(8):
            cluster.create_chunk(f"c{i}", f"data-{i}".encode())
        volume_id = fail_first_replica_volume(cluster, "c0")
        cluster.run_recovery()
        for i in range(8):
            chunk = cluster.namespace[f"c{i}"]
            assert chunk.replica_count == 2
            assert chunk.replica_on(volume_id) is None
            assert cluster.read_chunk(f"c{i}").rstrip(b"\0") == \
                f"data-{i}".encode()

    def test_traffic_accounted(self, cluster):
        cluster.create_chunk("c0", b"data")
        fail_first_replica_volume(cluster, "c0")
        cluster.run_recovery()
        stats = cluster.recovery.stats
        chunk_bytes = cluster.config.chunk_bytes
        assert stats.bytes_read == chunk_bytes
        assert stats.bytes_written == chunk_bytes
        assert stats.chunks_recovered == 1
        assert stats.volume_failures == 1

    def test_recovery_event_recorded_with_time(self, cluster):
        cluster.create_chunk("c0", b"data")
        cluster.time = 42.0
        fail_first_replica_volume(cluster, "c0")
        cluster.run_recovery()
        events = cluster.recovery.stats.events
        assert len(events) == 1
        assert events[0].time == 42.0
        assert events[0].chunks_recovered == 1
        assert events[0].bytes_moved > 0

    def test_volume_failure_idempotent(self, cluster):
        cluster.create_chunk("c0", b"data")
        volume_id = fail_first_replica_volume(cluster, "c0")
        cluster.recovery.volume_failed(volume_id)
        cluster.run_recovery()
        assert cluster.recovery.stats.volume_failures == 1

    def test_chunk_lost_when_all_replicas_gone(self, cluster):
        chunk = cluster.create_chunk("c0", b"data")
        for replica in list(chunk.replicas):
            cluster.recovery.volume_failed(replica.volume_id)
        cluster.run_recovery()
        assert cluster.recovery.stats.chunks_lost >= 1

    def test_replication_one_cannot_recover(self, make_salamander):
        cluster = Cluster(ClusterConfig(replication=1, chunk_lbas=4), seed=1)
        for n in range(2):
            cluster.add_node(f"n{n}")
            cluster.add_device(f"n{n}", make_salamander(seed=n + 1))
        chunk = cluster.create_chunk("c0", b"data")
        cluster.recovery.volume_failed(chunk.replicas[0].volume_id)
        cluster.run_recovery()
        assert cluster.recovery.stats.chunks_lost == 1
        assert cluster.recovery.stats.chunks_recovered == 0


class TestDeviceEventWiring:
    def test_decommission_event_fails_exactly_one_volume(self, cluster):
        device = cluster.nodes["n0"].devices[0]
        before = cluster.live_volume_count()
        device._decommission(device.minidisks[0], reason="wear")
        cluster.run_recovery()
        assert cluster.live_volume_count() == before - 1

    def test_decommission_recovers_chunks_elsewhere(self, cluster):
        for i in range(12):
            cluster.create_chunk(f"c{i}", f"data-{i}".encode())
        device = cluster.nodes["n0"].devices[0]
        # Find a minidisk that actually holds a replica.
        target = None
        for chunk in cluster.namespace.values():
            for replica in chunk.replicas:
                volume = cluster.volumes[replica.volume_id]
                if getattr(volume, "device", None) is device:
                    target = volume.mdisk_id
                    break
            if target is not None:
                break
        assert target is not None
        device._decommission(device.minidisk(target), reason="wear")
        cluster.run_recovery()
        for i in range(12):
            assert cluster.read_chunk(f"c{i}").rstrip(b"\0") == \
                f"data-{i}".encode()

    def test_regenerated_minidisk_becomes_a_volume(self, cluster,
                                                   make_salamander):
        cluster.add_node("n9")
        device = make_salamander(mode="regen", seed=9)
        cluster.add_device("n9", device)
        before = len(cluster.volumes)
        # Force a regeneration by parking enough pages in limbo.
        import numpy as np
        rng = np.random.default_rng(0)
        while device.stats.regenerated_minidisks == 0:
            active = device.active_minidisks()
            mdisk = active[int(rng.integers(0, len(active)))]
            device.write(mdisk.mdisk_id,
                         int(rng.integers(0, mdisk.size_lbas)), b"x")
        assert len(cluster.volumes) > before

    def test_cvss_shrink_evacuates_chunks(self, make_cvss, make_salamander):
        cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4), seed=3)
        cluster.add_node("n0")
        cvss = make_cvss(seed=1)
        cluster.add_device("n0", cvss)
        cluster.add_node("n1")
        cluster.add_device("n1", make_salamander(seed=2))
        cluster.add_node("n2")
        cluster.add_device("n2", make_salamander(seed=3))
        for i in range(6):
            cluster.create_chunk(f"c{i}", f"data-{i}".encode())
        # Shrink the CVSS volume hard enough to evict occupied slots.
        volume = next(v for v in cluster.volumes.values()
                      if getattr(v, "device", None) is cvss)
        if volume.used_slots:
            cluster._on_shrink(volume, 0)
            cluster.run_recovery()
        for i in range(6):
            assert cluster.read_chunk(f"c{i}").rstrip(b"\0") == \
                f"data-{i}".encode()
