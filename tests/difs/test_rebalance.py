"""Tests for the data balancer."""

import pytest

import repro.errors as E
from repro.difs.cluster import Cluster, ClusterConfig
from repro.difs.rebalance import rebalance


@pytest.fixture
def lopsided_cluster(make_salamander):
    """Three nodes loaded unevenly: everything lands before node n2's
    device joins."""
    cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4), seed=11)
    for n in range(2):
        cluster.add_node(f"n{n}")
        cluster.add_device(f"n{n}", make_salamander(seed=n + 1))
    for i in range(24):
        cluster.create_chunk(f"c{i}", f"data-{i}".encode())
    cluster.add_node("n2")
    cluster.add_device("n2", make_salamander(seed=9))
    return cluster


class TestRebalance:
    def test_moves_units_onto_the_new_node(self, lopsided_cluster):
        cluster = lopsided_cluster
        n2_used_before = sum(v.used_slots
                             for v in cluster.nodes["n2"].volumes.values())
        assert n2_used_before == 0
        report = rebalance(cluster, max_moves=60, tolerance=0.05)
        assert report.moves > 0
        assert report.bytes_moved > 0
        assert report.load_spread_after <= report.load_spread_before
        n2_used_after = sum(v.used_slots
                            for v in cluster.nodes["n2"].volumes.values())
        assert n2_used_after > 0

    def test_data_intact_after_rebalance(self, lopsided_cluster):
        cluster = lopsided_cluster
        rebalance(cluster, max_moves=80, tolerance=0.05)
        for i in range(24):
            assert cluster.read_chunk(f"c{i}").rstrip(b"\0") == \
                f"data-{i}".encode()

    def test_replica_independence_preserved(self, lopsided_cluster):
        cluster = lopsided_cluster
        rebalance(cluster, max_moves=80, tolerance=0.05)
        for chunk in cluster.namespace.values():
            nodes = [cluster.volumes[r.volume_id].node_id
                     for r in chunk.replicas]
            assert len(nodes) == len(set(nodes))

    def test_no_slot_leaks(self, lopsided_cluster):
        cluster = lopsided_cluster
        used_before = sum(v.used_slots for v in cluster.volumes.values())
        rebalance(cluster, max_moves=80, tolerance=0.05)
        used_after = sum(v.used_slots for v in cluster.volumes.values())
        assert used_after == used_before

    def test_balanced_cluster_is_a_noop(self, make_salamander):
        cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4),
                          seed=3)
        for n in range(3):
            cluster.add_node(f"n{n}")
            cluster.add_device(f"n{n}", make_salamander(seed=n + 1))
        for i in range(9):
            cluster.create_chunk(f"c{i}", b"x")
        report = rebalance(cluster, tolerance=0.2)
        assert report.moves <= 2  # already near-even

    def test_max_moves_respected(self, lopsided_cluster):
        report = rebalance(lopsided_cluster, max_moves=3)
        assert report.moves <= 3

    def test_validation(self, lopsided_cluster):
        with pytest.raises(E.ConfigError):
            rebalance(lopsided_cluster, max_moves=-1)
        with pytest.raises(E.ConfigError):
            rebalance(lopsided_cluster, tolerance=0)
