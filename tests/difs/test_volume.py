"""Unit tests for volume adapters and slot management."""

import pytest

from repro.errors import ConfigError
from repro.difs.volume import MinidiskVolume, MonolithicVolume


@pytest.fixture
def mono(make_baseline):
    return MonolithicVolume("n0/dev0", "n0", chunk_lbas=4,
                            device=make_baseline())


@pytest.fixture
def mini(make_salamander):
    device = make_salamander()
    return MinidiskVolume("n0/dev0/md0", "n0", chunk_lbas=4,
                          device=device, mdisk_id=0)


class TestSlotManagement:
    def test_total_slots_from_capacity(self, mono):
        assert mono.total_slots == mono.capacity_lbas() // 4
        assert mono.used_slots == 0
        assert mono.load == 0.0

    def test_allocate_release(self, mono):
        slot = mono.allocate_slot()
        assert slot == 0
        assert mono.used_slots == 1
        mono.release_slot(slot)
        assert mono.used_slots == 0

    def test_allocation_exhausts(self, mini):
        slots = [mini.allocate_slot() for _ in range(mini.total_slots)]
        assert None not in slots
        assert mini.allocate_slot() is None
        assert mini.load == 1.0

    def test_failed_volume_refuses_allocation(self, mono):
        mono.mark_failed()
        assert not mono.is_alive
        assert mono.allocate_slot() is None

    def test_slot_bounds(self, mono):
        with pytest.raises(ConfigError):
            mono.release_slot(mono.total_slots)


class TestChunkIO:
    def test_roundtrip(self, mono):
        slot = mono.allocate_slot()
        payloads = [f"p{i}".encode() for i in range(4)]
        mono.write_chunk(slot, payloads)
        read = mono.read_chunk(slot)
        assert [p.rstrip(b"\0") for p in read] == payloads

    def test_wrong_payload_count_rejected(self, mono):
        with pytest.raises(ConfigError):
            mono.write_chunk(0, [b"only-one"])

    def test_minidisk_volume_roundtrip(self, mini):
        slot = mini.allocate_slot()
        mini.write_chunk(slot, [b"a", b"b", b"c", b"d"])
        assert mini.read_chunk(slot)[2].rstrip(b"\0") == b"c"

    def test_minidisk_volumes_isolated(self, make_salamander):
        device = make_salamander()
        v0 = MinidiskVolume("v0", "n0", 4, device, 0)
        v1 = MinidiskVolume("v1", "n0", 4, device, 1)
        v0.write_chunk(0, [b"zero"] * 4)
        assert v1.read_chunk(0)[0] == bytes(4096)


class TestLiveness:
    def test_minidisk_volume_dies_with_its_minidisk(self, make_salamander):
        device = make_salamander()
        volume = MinidiskVolume("v0", "n0", 4, device, 0)
        assert volume.is_alive
        device._decommission(device.minidisks[0], reason="test")
        assert not volume.is_alive

    def test_minidisk_volume_level_property(self, make_salamander):
        device = make_salamander()
        assert MinidiskVolume("v0", "n0", 4, device, 0).level == 0

    def test_mono_volume_dies_with_device(self, make_cvss):
        device = make_cvss()
        volume = MonolithicVolume("v0", "n0", 4, device)
        assert volume.is_alive
        device._failed = True
        assert not volume.is_alive


class TestShrinkTo:
    def test_evicts_occupied_slots_beyond_new_capacity(self, make_cvss):
        volume = MonolithicVolume("v0", "n0", 4, make_cvss())
        last = volume.total_slots - 1
        # Occupy the last slot specifically.
        for _ in range(volume.total_slots):
            volume.allocate_slot()
        for slot in range(volume.total_slots - 1):
            volume.release_slot(slot)
        evicted = volume.shrink_to((volume.total_slots - 1) * 4)
        assert evicted == [last]
        assert volume.total_slots == last

    def test_shrink_with_free_tail_evicts_nothing(self, mono):
        mono.allocate_slot()  # slot 0 only
        evicted = mono.shrink_to((mono.total_slots - 2) * 4)
        assert evicted == []

    def test_growing_is_ignored(self, mono):
        before = mono.total_slots
        assert mono.shrink_to((before + 5) * 4) == []
        assert mono.total_slots == before
