"""Unit + property tests for the GF(2^8) Reed-Solomon codec."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, DiFSError
from repro.difs.erasure import (
    ReedSolomon,
    gf_inv,
    gf_invert_matrix,
    gf_mul,
    gf_mul_bytes,
)

import numpy as np


class TestFieldArithmetic:
    def test_identity_and_zero(self):
        assert gf_mul(1, 173) == 173
        assert gf_mul(0, 173) == 0
        assert gf_mul(173, 0) == 0

    def test_every_nonzero_element_has_inverse(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ConfigError):
            gf_inv(0)

    @given(a=st.integers(0, 255), b=st.integers(0, 255),
           c=st.integers(0, 255))
    def test_field_axioms(self, a, b, c):
        assert gf_mul(a, b) == gf_mul(b, a)
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)

    def test_vectorised_matches_scalar(self):
        data = np.arange(256, dtype=np.uint8)
        out = gf_mul_bytes(77, data)
        for i in range(256):
            assert int(out[i]) == gf_mul(77, i)

    def test_matrix_inverse_roundtrip(self):
        rng = np.random.default_rng(3)
        matrix = rng.integers(0, 256, size=(4, 4)).astype(np.uint8)
        matrix[np.diag_indices(4)] |= 1  # nudge away from singularity
        try:
            inverse = gf_invert_matrix(matrix)
        except DiFSError:
            pytest.skip("random matrix happened to be singular")
        product = np.zeros((4, 4), dtype=np.uint8)
        for r in range(4):
            for c in range(4):
                acc = 0
                for i in range(4):
                    acc ^= gf_mul(int(matrix[r, i]), int(inverse[i, c]))
                product[r, c] = acc
        assert np.array_equal(product, np.eye(4, dtype=np.uint8))

    def test_singular_matrix_rejected(self):
        singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(DiFSError):
            gf_invert_matrix(singular)


class TestReedSolomon:
    def test_systematic_layout(self):
        rs = ReedSolomon(3, 2)
        data = b"0123456789" * 30
        fragments = rs.encode(data)
        assert b"".join(fragments[:3]).startswith(data)

    def test_all_k_subsets_decode(self):
        rs = ReedSolomon(4, 2)
        data = bytes(range(256)) * 2 + b"odd-tail"
        fragments = rs.encode(data)
        for combo in itertools.combinations(range(6), 4):
            got = rs.decode({i: fragments[i] for i in combo}, len(data))
            assert got == data, combo

    def test_rebuild_every_fragment(self):
        rs = ReedSolomon(5, 3)
        fragments = rs.encode(b"some important bytes" * 17)
        for missing in range(8):
            survivors = {i: fragments[i] for i in range(8) if i != missing}
            assert rs.rebuild(missing, survivors) == fragments[missing]

    def test_too_few_fragments_rejected(self):
        rs = ReedSolomon(4, 2)
        fragments = rs.encode(b"data")
        with pytest.raises(DiFSError):
            rs.decode({0: fragments[0], 1: fragments[1]}, 4)

    def test_empty_data(self):
        rs = ReedSolomon(2, 1)
        fragments = rs.encode(b"")
        assert rs.decode({1: fragments[1], 2: fragments[2]}, 0) == b""

    def test_fragment_length_ceil(self):
        rs = ReedSolomon(4, 2)
        assert rs.fragment_length(17) == 5
        assert rs.fragment_length(16) == 4
        with pytest.raises(ConfigError):
            rs.fragment_length(-1)

    @pytest.mark.parametrize("k,m", [(0, 1), (1, 0), (200, 100)])
    def test_shape_validation(self, k, m):
        with pytest.raises(ConfigError):
            ReedSolomon(k, m)

    @given(data=st.binary(min_size=0, max_size=500),
           k=st.integers(1, 6), m=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data, k, m):
        rs = ReedSolomon(k, m)
        fragments = rs.encode(data)
        # Drop the m "hardest" fragments: the data ones.
        survivors = {i: fragments[i] for i in range(min(m, k), k + m)}
        assert rs.decode(survivors, len(data)) == data

    @given(data=st.binary(min_size=1, max_size=300), missing=st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_rebuild_property(self, data, missing):
        rs = ReedSolomon(4, 2)
        fragments = rs.encode(data)
        survivors = {i: fragments[i] for i in range(6) if i != missing}
        assert rs.rebuild(missing, survivors) == fragments[missing]
