"""Tests for in-place chunk updates with versioning."""

import pytest

import repro.errors as E
from repro.difs.cluster import Cluster, ClusterConfig


@pytest.fixture
def cluster(make_salamander):
    cluster = Cluster(ClusterConfig(replication=2, chunk_lbas=4), seed=11)
    for n in range(3):
        cluster.add_node(f"n{n}")
        cluster.add_device(f"n{n}", make_salamander(seed=n + 1))
    return cluster


class TestUpdateChunk:
    def test_updates_content_and_version(self, cluster):
        chunk = cluster.create_chunk("c0", b"generation-1")
        assert chunk.version == 0
        cluster.update_chunk("c0", b"generation-2")
        assert chunk.version == 1
        assert cluster.read_chunk("c0").rstrip(b"\0") == b"generation-2"

    def test_replication_preserved(self, cluster):
        chunk = cluster.create_chunk("c0", b"v1")
        cluster.update_chunk("c0", b"v2")
        assert chunk.replica_count == 2
        nodes = {cluster.volumes[r.volume_id].node_id
                 for r in chunk.replicas}
        assert len(nodes) == 2

    def test_old_slots_released(self, cluster):
        chunk = cluster.create_chunk("c0", b"v1")
        used_before = sum(v.used_slots for v in cluster.volumes.values())
        for _ in range(5):
            cluster.update_chunk("c0", b"vN")
        used_after = sum(v.used_slots for v in cluster.volumes.values())
        assert used_after == used_before  # no slot leak across updates

    def test_unknown_chunk_rejected(self, cluster):
        with pytest.raises(E.ConfigError):
            cluster.update_chunk("ghost", b"x")

    def test_oversized_update_rejected(self, cluster):
        cluster.create_chunk("c0", b"v1")
        with pytest.raises(E.ConfigError):
            cluster.update_chunk(
                "c0", b"x" * (cluster.config.chunk_bytes + 1))

    def test_namespace_index_follows_the_move(self, cluster):
        chunk = cluster.create_chunk("c0", b"v1")
        old_volumes = {r.volume_id for r in chunk.replicas}
        cluster.update_chunk("c0", b"v2")
        new_volumes = {r.volume_id for r in chunk.replicas}
        for volume_id in old_volumes - new_volumes:
            assert "c0" not in cluster.chunks_on_volume(volume_id)
        for volume_id in new_volumes:
            assert "c0" in cluster.chunks_on_volume(volume_id)

    def test_update_works_under_erasure_coding(self, make_salamander):
        cluster = Cluster(ClusterConfig(
            redundancy="rs", rs_k=3, rs_m=2, chunk_lbas=6), seed=3)
        for n in range(6):
            cluster.add_node(f"n{n}")
            cluster.add_device(f"n{n}", make_salamander(seed=n + 1))
        chunk = cluster.create_chunk("c0", b"ec-v1")
        cluster.update_chunk("c0", b"ec-v2")
        assert chunk.version == 1
        assert chunk.indexes_present() == set(range(5))
        assert cluster.read_chunk("c0").rstrip(b"\0") == b"ec-v2"

    def test_failed_update_leaves_old_generation(self, cluster):
        chunk = cluster.create_chunk("c0", b"stable")
        # Kill enough volumes that placement of a full new generation
        # fails; the old data must remain readable.
        for node_id in ("n1", "n2"):
            for volume in cluster.nodes[node_id].volumes.values():
                volume.mark_failed()
        with pytest.raises(E.ReproError):
            cluster.update_chunk("c0", b"never-lands")
        assert chunk.version == 0
        assert cluster.read_chunk("c0").rstrip(b"\0") == b"stable"
