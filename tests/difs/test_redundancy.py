"""Unit tests for the redundancy-scheme abstraction."""

import pytest

from repro.errors import ConfigError, DiFSError
from repro.difs.redundancy import (
    ErasureCoding,
    Replication,
    make_scheme,
)

OPAGE = 64  # small pages keep the tests readable


class TestReplication:
    def test_shape(self):
        scheme = Replication(3)
        assert scheme.total_units == 3
        assert scheme.min_units == 1
        assert scheme.unit_lbas(16) == 16
        assert scheme.storage_overhead == 3.0

    def test_encode_identical_units(self):
        scheme = Replication(2)
        units = scheme.encode(b"hello", 4, OPAGE)
        assert len(units) == 2
        assert units[0] == units[1]
        assert len(units[0]) == 4
        assert units[0][0].startswith(b"hello")

    def test_decode_any_unit(self):
        scheme = Replication(3)
        units = scheme.encode(b"payload", 2, OPAGE)
        out = scheme.decode({2: units[2]}, 2, OPAGE)
        assert out.rstrip(b"\0") == b"payload"

    def test_rebuild_is_copy(self):
        scheme = Replication(3)
        units = scheme.encode(b"x", 2, OPAGE)
        assert scheme.rebuild(1, {0: units[0]}, 2, OPAGE) == units[0]

    def test_errors(self):
        scheme = Replication(2)
        with pytest.raises(DiFSError):
            scheme.decode({}, 2, OPAGE)
        with pytest.raises(ConfigError):
            scheme.rebuild(5, {0: [b""]}, 2, OPAGE)
        with pytest.raises(ConfigError):
            Replication(0)


class TestErasureCoding:
    def test_shape(self):
        scheme = ErasureCoding(4, 2)
        assert scheme.total_units == 6
        assert scheme.min_units == 4
        assert scheme.unit_lbas(16) == 4
        assert scheme.unit_lbas(17) == 5  # ceil
        assert scheme.storage_overhead == pytest.approx(1.5)

    def test_roundtrip_via_any_k_units(self):
        scheme = ErasureCoding(4, 2)
        data = b"the quick brown fox" * 11
        units = scheme.encode(data, 16, OPAGE)
        assert len(units) == 6
        picked = {i: units[i] for i in (0, 2, 4, 5)}
        out = scheme.decode(picked, 16, OPAGE)
        assert out.rstrip(b"\0") == data

    def test_systematic_data_units_hold_data(self):
        scheme = ErasureCoding(2, 1)
        data = b"A" * OPAGE + b"B" * OPAGE
        units = scheme.encode(data, 2, OPAGE)
        assert units[0][0] == b"A" * OPAGE
        assert units[1][0] == b"B" * OPAGE

    def test_rebuild_matches_original_unit(self):
        scheme = ErasureCoding(3, 2)
        units = scheme.encode(b"payload" * 40, 9, OPAGE)
        for missing in range(5):
            survivors = {i: units[i] for i in range(5) if i != missing}
            rebuilt = scheme.rebuild(missing, survivors, 9, OPAGE)
            assert rebuilt == units[missing]

    def test_page_granular_units(self):
        scheme = ErasureCoding(4, 2)
        units = scheme.encode(b"z" * 100, 16, OPAGE)
        for unit in units:
            assert len(unit) == 4
            assert all(len(page) == OPAGE for page in unit)


class TestFactory:
    def test_replication(self):
        scheme = make_scheme("replication", replication=2)
        assert isinstance(scheme, Replication)
        assert scheme.total_units == 2

    def test_rs(self):
        scheme = make_scheme("rs", rs_k=6, rs_m=3)
        assert isinstance(scheme, ErasureCoding)
        assert scheme.total_units == 9

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_scheme("raid5")
