"""The ``repro report`` claim checker against crafted artifacts."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.models.performance import throughput_factor
from repro.reporting.claims import (
    REPORT_SCHEMA,
    TRAFFIC_TOLERANCE,
    ClaimResult,
    build_report,
    capacity_curves_from_artifact,
    check_lifetime_extension,
    check_recovery_traffic,
    check_throughput_degradation,
    check_traffic_latency,
    format_report,
    lifetimes_from_artifact,
    measured_throughput_factor,
    measured_traffic_p99,
    report_failed,
)


def _timeseries_doc(lifetimes=None, capacities=None):
    series = []
    for mode, value in (lifetimes or {}).items():
        series.append({"name": "repro_fleet_mean_lifetime_days",
                       "labels": {"mode": mode}, "t": [100.0],
                       "v": [value]})
    for mode, values in (capacities or {}).items():
        series.append({"name": "repro_fleet_capacity_bytes",
                       "labels": {"mode": mode},
                       "t": [float(i) for i in range(len(values))],
                       "v": values})
    return {"schema": "repro.obs.timeseries/v1", "series": series}


class TestLifetimeExtension:
    def test_extension_within_envelope_passes(self):
        results = check_lifetime_extension(
            {"baseline": 100.0, "shrink": 130.0, "regen": 150.0})
        assert [r.status for r in results] == ["pass", "pass"]
        shrink = results[0]
        assert shrink.claim == "lifetime_extension/shrink"
        assert shrink.observed == pytest.approx(1.3)
        assert "within the paper's 1.5x envelope" in shrink.detail

    def test_beyond_envelope_still_passes_but_annotated(self):
        # "Up to 1.5x" is a reported max, not a cap: exceeding it is
        # not a regression, so the claim passes with an annotation.
        (result,) = [r for r in check_lifetime_extension(
            {"baseline": 100.0, "shrink": 120.0, "regen": 210.0})
            if r.claim.endswith("regen")]
        assert result.status == "pass"
        assert "beyond the paper's 1.5x envelope" in result.detail

    def test_regression_fails(self):
        (result,) = [r for r in check_lifetime_extension(
            {"baseline": 100.0, "shrink": 80.0, "regen": 150.0})
            if r.claim.endswith("shrink")]
        assert result.status == "fail"
        assert result.observed == pytest.approx(0.8)

    def test_missing_modes_skip_with_rerun_hint(self):
        results = check_lifetime_extension({"baseline": 100.0})
        assert [r.status for r in results] == ["skip", "skip"]
        assert "--timeseries-out" in results[0].detail

    def test_zero_baseline_skips(self):
        results = check_lifetime_extension(
            {"baseline": 0.0, "shrink": 100.0, "regen": 100.0})
        assert all(r.status == "skip" for r in results)


class TestThroughputDegradation:
    def test_measured_matches_analytic_mix_model(self):
        p = 4
        for level in (1, 2, 3):
            measured = measured_throughput_factor(level)
            assert measured == pytest.approx(
                throughput_factor(level, p), rel=0.10)

    def test_check_passes_at_default_tolerance(self):
        results = check_throughput_degradation()
        assert [r.claim for r in results] == [
            "throughput_degradation/L1",
            "throughput_degradation/L2",
            "throughput_degradation/L3",
        ]
        assert all(r.status == "pass" for r in results)
        # Expected strings carry the (P - L)/P formula.
        assert "3/4" in results[0].expected

    def test_unusable_level_skips(self):
        (result,) = check_throughput_degradation(levels=(9,))
        assert result.status == "skip"


class TestQueueingLatency:
    def test_measured_matches_analytic_below_saturation(self):
        from repro.reporting.claims import measured_queueing_latency

        run = measured_queueing_latency(0.5, n_requests=800)
        assert run["service_us"] > 0
        assert run["measured_mean_latency_us"] == pytest.approx(
            run["analytic_mean_latency_us"], rel=0.15)
        # At rho=0.5 there is genuine queueing to measure.
        assert run["measured_mean_wait_us"] > 0

    def test_check_passes_at_default_tolerance(self):
        from repro.reporting.claims import check_queueing_latency

        results = check_queueing_latency()
        assert len(results) == 4
        assert all(r.status == "pass" for r in results)
        claims = {r.claim for r in results}
        assert "queueing_latency/rho0.7" in claims
        assert "queueing_latency/c4_rho0.5" in claims

    def test_latency_grows_with_utilisation(self):
        from repro.reporting.claims import measured_queueing_latency

        low = measured_queueing_latency(0.3, n_requests=500)
        high = measured_queueing_latency(0.7, n_requests=500)
        assert (high["measured_mean_latency_us"]
                > low["measured_mean_latency_us"])

    def test_bad_utilisation_rejected(self):
        from repro.reporting.claims import measured_queueing_latency

        with pytest.raises(ConfigError):
            measured_queueing_latency(0.0)
        with pytest.raises(ConfigError):
            measured_queueing_latency(1.0)


class TestTrafficLatency:
    """The traffic-engine p99 rows (cached: the sim runs once per
    level per process, so these tests share the claim's own work)."""

    def test_all_levels_pass_at_default_tolerance(self):
        results = check_traffic_latency()
        assert [r.claim for r in results] == [
            "traffic_p99/l0", "traffic_p99/l1",
            "traffic_p99/l2", "traffic_p99/l3"]
        assert all(r.status == "pass" for r in results), [
            (r.claim, r.observed, r.expected) for r in results]

    def test_measured_point_is_consistent(self):
        run = measured_traffic_p99(0)
        assert run["requests"] > 500
        assert run["measured_p99_latency_us"] > run["service_us"]
        assert run["analytic_p99_latency_us"] > run["service_us"]
        deviation = abs(run["measured_p99_latency_us"]
                        - run["analytic_p99_latency_us"])
        assert deviation <= TRAFFIC_TOLERANCE * \
            run["analytic_p99_latency_us"]

    def test_degradation_raises_service_and_tail(self):
        """The RegenS 4/(4-L) per-byte cost must show up in the
        measured service time — and through it, the analytic tail."""
        l0 = measured_traffic_p99(0)
        l3 = measured_traffic_p99(3)
        assert l3["service_us"] > 1.5 * l0["service_us"]
        assert l3["analytic_p99_latency_us"] > \
            l0["analytic_p99_latency_us"]
        assert l3["measured_p99_latency_us"] > \
            l0["measured_p99_latency_us"]

    def test_bad_level_rejected(self):
        with pytest.raises(ConfigError, match="level"):
            measured_traffic_p99(4)

    def test_zero_tolerance_fails(self):
        results = check_traffic_latency(levels=(0,), tolerance=0.0)
        assert results[0].status == "fail"


class TestRecoveryTraffic:
    def test_gradual_shedding_beats_cliff(self):
        result = check_recovery_traffic({
            "baseline": [100.0, 100.0, 50.0, 50.0],   # one big cliff
            "shrink": [100.0, 90.0, 80.0, 70.0],      # many small drops
        })
        assert result.status == "pass"
        assert result.observed == pytest.approx(0.10)

    def test_cliffier_shrink_fails(self):
        result = check_recovery_traffic({
            "baseline": [100.0, 90.0, 80.0],
            "shrink": [100.0, 100.0, 20.0],
        })
        assert result.status == "fail"

    def test_missing_curves_skip(self):
        assert check_recovery_traffic({}).status == "skip"
        assert check_recovery_traffic(
            {"baseline": [100.0]}).status == "skip"


class TestArtifactExtraction:
    ARTIFACT = {
        "tables": {"summary": {
            "headers": ["mode", "devices", "mean_lifetime_days"],
            "rows": [["baseline", 16, 400.0], ["shrink", 16, 520.0],
                     ["regen", 16, "bogus"]],
        }},
        "series": {
            "baseline/capacity": {"x": [0, 1], "y": [100.0, 50.0]},
            "shrink/capacity": {"x": [0, 1], "y": [100.0, 90.0]},
            "shrink/lost": {"x": [0, 1], "y": [0.0, 10.0]},
        },
    }

    def test_lifetimes_from_summary_table(self):
        lifetimes = lifetimes_from_artifact(self.ARTIFACT)
        # The unparseable regen row is dropped, not fatal.
        assert lifetimes == {"baseline": 400.0, "shrink": 520.0}

    def test_capacity_curves_by_suffix(self):
        curves = capacity_curves_from_artifact(self.ARTIFACT)
        assert set(curves) == {"baseline", "shrink"}
        assert curves["shrink"] == [100.0, 90.0]

    def test_absent_inputs_yield_empty(self):
        assert lifetimes_from_artifact(None) == {}
        assert lifetimes_from_artifact({"tables": {}}) == {}
        assert capacity_curves_from_artifact(None) == {}


class TestBuildReport:
    def test_full_pass_report(self):
        doc = _timeseries_doc(
            lifetimes={"baseline": 100.0, "shrink": 130.0,
                       "regen": 150.0},
            capacities={"baseline": [100.0, 100.0, 40.0],
                        "shrink": [100.0, 90.0, 80.0]})
        report = build_report(timeseries_doc=doc)
        assert report["schema"] == REPORT_SCHEMA
        # The four wear_provenance claims skip without --endurance input.
        assert report["summary"] == {"pass": 14, "fail": 0, "skip": 4}
        skipped = [c["claim"] for c in report["claims"]
                   if c["status"] == "skip"]
        assert all(c.startswith("wear_provenance/") for c in skipped)
        assert not report_failed(report)
        assert report["inputs"]["timeseries"] is True

    def test_timeseries_embedded_in_artifact(self):
        artifact = {"timeseries": _timeseries_doc(
            lifetimes={"baseline": 100.0, "shrink": 120.0,
                       "regen": 140.0})}
        report = build_report(artifact_doc=artifact)
        by_claim = {c["claim"]: c for c in report["claims"]}
        assert by_claim["lifetime_extension/shrink"]["status"] == "pass"
        assert "from timeseries" in \
            by_claim["lifetime_extension/shrink"]["detail"]

    def test_artifact_table_fallback(self):
        report = build_report(artifact_doc=TestArtifactExtraction.ARTIFACT)
        by_claim = {c["claim"]: c for c in report["claims"]}
        shrink = by_claim["lifetime_extension/shrink"]
        assert shrink["status"] == "pass"
        assert "artifact summary table" in shrink["detail"]
        recovery = by_claim["recovery_traffic/shrink_vs_baseline"]
        assert recovery["status"] == "pass"
        assert "artifact capacity series" in recovery["detail"]

    def test_no_inputs_is_all_skip_plus_throughput(self):
        report = build_report()
        assert report["summary"]["fail"] == 0
        # 3 artifact-fed claims + 4 wear_provenance claims skip.
        assert report["summary"]["skip"] == 7
        # Throughput, queueing latency and traffic p99 are re-measured
        # on every run.
        assert report["summary"]["pass"] == 11

    def test_failed_claim_detected(self):
        doc = _timeseries_doc(
            lifetimes={"baseline": 100.0, "shrink": 50.0,
                       "regen": 150.0})
        report = build_report(timeseries_doc=doc)
        assert report_failed(report)

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ConfigError, match="tolerance"):
            build_report(tolerance=1.5)
        with pytest.raises(ConfigError, match="tolerance"):
            build_report(tolerance=-0.1)

    def test_trace_and_metrics_inputs_embedded(self):
        trace = [{"kind": "span", "name": "s", "time": 0.0,
                  "end_time": 2.0, "span_id": 1, "parent_id": None}]
        metrics = {"metrics": [{"name": "m", "type": "counter",
                                "samples": []}]}
        report = build_report(metrics_doc=metrics, trace_records=trace)
        assert report["metric_families"] == 1
        assert report["trace_summary"]["span_count"] == 1


class TestFormatting:
    def test_markdown_report(self):
        doc = _timeseries_doc(
            lifetimes={"baseline": 100.0, "shrink": 130.0,
                       "regen": 150.0})
        report = build_report(timeseries_doc=doc)
        text = format_report(report)
        assert "## Salamander claim check" in text
        assert "| claim | status |" in text
        assert "`lifetime_extension/shrink` | pass" in text
        # Skipped claims render '-' for observed.
        assert "| skip | - |" in text

    def test_claim_result_json_round_trip(self):
        result = ClaimResult("c", "pass", 1.5, "exp", "det")
        assert result.to_json() == {
            "claim": "c", "status": "pass", "observed": 1.5,
            "expected": "exp", "detail": "det"}
