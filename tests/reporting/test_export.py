"""Tests for JSON experiment artifacts."""

import json

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.reporting.export import ExperimentWriter, load_experiment
from repro.reporting.series import Series


class TestExperimentWriter:
    def test_roundtrip(self, tmp_path):
        writer = ExperimentWriter("fig-test", meta={"seed": 7})
        writer.add_table("gains", ["level", "gain"],
                         [["L1", 0.5], ["L2", np.float64(0.8)]])
        writer.add_series(Series("survivors", np.array([0.0, 1.0]),
                                 np.array([48, 40]), x_label="years"))
        path = writer.write(tmp_path)
        assert path.name == "fig-test.json"
        document = load_experiment(path)
        assert document["meta"]["seed"] == 7
        assert document["tables"]["gains"]["rows"][1] == ["L2", 0.8]
        assert document["series"]["survivors"]["x"] == [0.0, 1.0]
        assert document["series"]["survivors"]["x_label"] == "years"

    def test_numpy_types_coerced_to_plain_json(self, tmp_path):
        writer = ExperimentWriter("types")
        writer.add_table("t", ["v"], [[np.int64(3)], [np.float32(1.5)]])
        path = writer.write(tmp_path)
        raw = json.loads(path.read_text())
        assert raw["tables"]["t"]["rows"] == [[3], [1.5]]

    def test_table_width_validated(self):
        writer = ExperimentWriter("x")
        with pytest.raises(ConfigError):
            writer.add_table("bad", ["a", "b"], [[1]])
        with pytest.raises(ConfigError):
            writer.add_table("bad", [], [])

    def test_experiment_name_validated(self):
        with pytest.raises(ConfigError):
            ExperimentWriter("")
        with pytest.raises(ConfigError):
            ExperimentWriter("a/b")

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"experiment": "x"}')
        with pytest.raises(ConfigError):
            load_experiment(path)

    def test_directory_created(self, tmp_path):
        writer = ExperimentWriter("nested")
        path = writer.write(tmp_path / "a" / "b")
        assert path.exists()


class TestSerialisationPolicy:
    def test_numpy_scalars_and_arrays_round_trip(self, tmp_path):
        writer = ExperimentWriter("np-types", meta={
            "i8": np.int8(-3), "u32": np.uint32(7),
            "f16": np.float16(0.5), "f64": np.float64(2.25),
            "flag": np.bool_(True),
            "vec": np.arange(3, dtype=np.int32),
            "grid": np.array([[1.0, 2.0], [3.0, 4.0]]),
        })
        document = load_experiment(writer.write(tmp_path))
        meta = document["meta"]
        assert meta["i8"] == -3 and isinstance(meta["i8"], int)
        assert meta["u32"] == 7
        assert meta["f16"] == 0.5 and isinstance(meta["f16"], float)
        assert meta["f64"] == 2.25
        assert meta["flag"] is True
        assert meta["vec"] == [0, 1, 2]
        assert meta["grid"] == [[1.0, 2.0], [3.0, 4.0]]

    def test_non_finite_floats_become_strings(self, tmp_path):
        writer = ExperimentWriter("nonfinite", meta={
            "nan": float("nan"), "inf": float("inf"),
            "ninf": np.float64("-inf"),
            "mixed": np.array([1.0, np.nan, np.inf]),
        })
        path = writer.write(tmp_path)
        # The file must be strict JSON: no bare NaN/Infinity literals.
        raw = path.read_text()
        assert "NaN" not in raw.replace('"NaN"', "")
        meta = json.loads(raw)["meta"]
        assert meta["nan"] == "NaN"
        assert meta["inf"] == "Infinity"
        assert meta["ninf"] == "-Infinity"
        assert meta["mixed"] == [1.0, "NaN", "Infinity"]

    def test_non_serialisable_values_rejected(self):
        class Opaque:
            pass

        # Rows are serialised eagerly at add_table time ...
        writer = ExperimentWriter("bad")
        with pytest.raises(ConfigError):
            writer.add_table("t", ["v"], [[Opaque()]])
        # ... metadata lazily at document time.
        lazy = ExperimentWriter("bad2", meta={"handle": Opaque()})
        with pytest.raises(ConfigError):
            lazy.document()

    def test_path_and_enum_coerced_to_str(self, tmp_path):
        import enum
        from pathlib import Path

        class Mode(enum.Enum):
            REGEN = "regen"

        writer = ExperimentWriter("coerced", meta={
            "path": Path("/tmp/x"), "mode": Mode.REGEN})
        meta = load_experiment(writer.write(tmp_path))["meta"]
        assert meta["path"] == "/tmp/x"
        assert "REGEN" in meta["mode"] or "regen" in meta["mode"]


class TestAttachMetrics:
    def test_metrics_embedded_and_validated(self, tmp_path):
        from repro.obs import MetricsRegistry, validate_metrics_document

        registry = MetricsRegistry()
        registry.counter("repro_test_total", help="h").inc(3)
        writer = ExperimentWriter("with-metrics")
        writer.attach_metrics(registry)
        document = load_experiment(writer.write(tmp_path))
        assert "metrics" in document
        validate_metrics_document(document["metrics"])
        (family,) = document["metrics"]["metrics"]
        assert family["name"] == "repro_test_total"
        assert family["samples"][0]["value"] == 3.0

    def test_no_metrics_key_when_not_attached(self, tmp_path):
        writer = ExperimentWriter("plain")
        document = load_experiment(writer.write(tmp_path))
        assert "metrics" not in document
