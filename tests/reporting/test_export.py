"""Tests for JSON experiment artifacts."""

import json

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.reporting.export import ExperimentWriter, load_experiment
from repro.reporting.series import Series


class TestExperimentWriter:
    def test_roundtrip(self, tmp_path):
        writer = ExperimentWriter("fig-test", meta={"seed": 7})
        writer.add_table("gains", ["level", "gain"],
                         [["L1", 0.5], ["L2", np.float64(0.8)]])
        writer.add_series(Series("survivors", np.array([0.0, 1.0]),
                                 np.array([48, 40]), x_label="years"))
        path = writer.write(tmp_path)
        assert path.name == "fig-test.json"
        document = load_experiment(path)
        assert document["meta"]["seed"] == 7
        assert document["tables"]["gains"]["rows"][1] == ["L2", 0.8]
        assert document["series"]["survivors"]["x"] == [0.0, 1.0]
        assert document["series"]["survivors"]["x_label"] == "years"

    def test_numpy_types_coerced_to_plain_json(self, tmp_path):
        writer = ExperimentWriter("types")
        writer.add_table("t", ["v"], [[np.int64(3)], [np.float32(1.5)]])
        path = writer.write(tmp_path)
        raw = json.loads(path.read_text())
        assert raw["tables"]["t"]["rows"] == [[3], [1.5]]

    def test_table_width_validated(self):
        writer = ExperimentWriter("x")
        with pytest.raises(ConfigError):
            writer.add_table("bad", ["a", "b"], [[1]])
        with pytest.raises(ConfigError):
            writer.add_table("bad", [], [])

    def test_experiment_name_validated(self):
        with pytest.raises(ConfigError):
            ExperimentWriter("")
        with pytest.raises(ConfigError):
            ExperimentWriter("a/b")

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"experiment": "x"}')
        with pytest.raises(ConfigError):
            load_experiment(path)

    def test_directory_created(self, tmp_path):
        writer = ExperimentWriter("nested")
        path = writer.write(tmp_path / "a" / "b")
        assert path.exists()
