"""Unit tests for table/bar rendering."""

import pytest

from repro.errors import ConfigError
from repro.reporting.series import Series
from repro.reporting.tables import format_table, render_bars, render_series


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["name", "value"],
                            [["alpha", 1.5], ["b", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert "name" in lines[1] and "value" in lines[1]
        assert len({len(line) for line in lines[1:]}) == 1  # aligned

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigError):
            format_table([], [])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestRenderBars:
    def test_bars_scale_to_peak(self):
        text = render_bars({"x": 1.0, "y": 0.5}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_unit_suffix(self):
        text = render_bars({"x": 0.2}, unit="%")
        assert "0.2%" in text

    def test_all_zero_values(self):
        text = render_bars({"x": 0.0})
        assert "x" in text  # must not divide by zero

    def test_validation(self):
        with pytest.raises(ConfigError):
            render_bars({}, width=10)
        with pytest.raises(ConfigError):
            render_bars({"x": 1.0}, width=0)


class TestRenderSeries:
    def test_multiple_series_one_table(self):
        a = Series("a", [0, 1, 2], [0, 10, 20], x_label="t")
        b = Series("b", [0, 1, 2], [5, 5, 5])
        text = render_series([a, b], points=3, title="curves")
        assert "curves" in text
        assert "a" in text and "b" in text
        assert "t" in text

    def test_empty_list_rejected(self):
        with pytest.raises(ConfigError):
            render_series([])
