"""Unit tests for series containers."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.reporting.series import Series


class TestSeries:
    def test_length_and_coercion(self):
        series = Series("s", [1, 2, 3], [10, 20, 30])
        assert len(series) == 3
        assert series.x.dtype == float

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            Series("s", [1, 2], [1, 2, 3])

    def test_interpolation(self):
        series = Series("s", [0, 10], [0, 100])
        assert series.at(5) == pytest.approx(50.0)
        assert series.at(-5) == 0.0  # clamped
        assert series.at(50) == 100.0

    def test_at_on_empty_rejected(self):
        series = Series("s", [], [])
        with pytest.raises(ConfigError):
            series.at(1.0)

    def test_downsample(self):
        series = Series("s", np.arange(100), np.arange(100))
        small = series.downsample(10)
        assert len(small) == 10
        assert small.x[0] == 0
        assert small.x[-1] == 99

    def test_downsample_noop_when_small(self):
        series = Series("s", [1, 2], [3, 4])
        assert series.downsample(10) is series

    def test_downsample_validation(self):
        with pytest.raises(ConfigError):
            Series("s", [1], [1]).downsample(0)
