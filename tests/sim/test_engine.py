"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        log = []
        engine.schedule_at(3.0, lambda: log.append("c"))
        engine.schedule_at(1.0, lambda: log.append("a"))
        engine.schedule_at(2.0, lambda: log.append("b"))
        engine.run()
        assert log == ["a", "b", "c"]
        assert engine.clock.now == 3.0

    def test_equal_times_fire_in_schedule_order(self):
        engine = Engine()
        log = []
        for name in "xyz":
            engine.schedule_at(1.0, lambda n=name: log.append(n))
        engine.run()
        assert log == ["x", "y", "z"]

    def test_schedule_in_is_relative(self):
        engine = Engine()
        times = []
        engine.schedule_in(2.0, lambda: times.append(engine.clock.now))
        engine.run()
        assert times == [2.0]

    def test_cannot_schedule_in_the_past(self):
        engine = Engine()
        engine.clock.advance_to(5.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(4.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule_in(-1.0, lambda: None)

    def test_cancel(self):
        engine = Engine()
        log = []
        event = engine.schedule_at(1.0, lambda: log.append("dead"))
        engine.schedule_at(2.0, lambda: log.append("alive"))
        engine.cancel(event)
        engine.run()
        assert log == ["alive"]

    def test_len_counts_pending(self):
        engine = Engine()
        event = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        assert len(engine) == 2
        engine.cancel(event)
        assert len(engine) == 1


class TestLazyCancellation:
    def test_double_cancel_is_idempotent(self):
        engine = Engine()
        event = engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(2.0, lambda: None)
        engine.cancel(event)
        engine.cancel(event)
        assert len(engine) == 1

    def test_cancel_after_fire_is_a_noop(self):
        engine = Engine()
        log = []
        event = engine.schedule_at(1.0, lambda: log.append("fired"))
        engine.schedule_at(2.0, lambda: None)
        engine.step()
        assert log == ["fired"]
        engine.cancel(event)  # must not corrupt the live count
        assert len(engine) == 1
        assert engine.run() == 1
        assert len(engine) == 0

    def test_len_stays_consistent_through_run(self):
        engine = Engine()
        events = [engine.schedule_at(float(i), lambda: None)
                  for i in range(1, 11)]
        for event in events[::2]:
            engine.cancel(event)
        assert len(engine) == 5
        assert engine.run() == 5
        assert len(engine) == 0

    def test_mass_cancellation_compacts_the_heap(self):
        engine = Engine()
        keeper = engine.schedule_at(1000.0, lambda: None)
        events = [engine.schedule_at(float(i), lambda: None)
                  for i in range(1, 101)]
        for event in events:
            engine.cancel(event)
        # Lazy drop must not leave 100 dead entries behind: far fewer
        # heap slots than cancellations, and exactly one live event.
        assert len(engine) == 1
        assert len(engine._heap) < len(events)
        assert keeper in engine._heap

    def test_compaction_preserves_order(self):
        engine = Engine()
        log = []
        doomed = [engine.schedule_at(float(i), lambda: log.append("dead"))
                  for i in range(1, 40)]
        engine.schedule_at(50.0, lambda: log.append("b"))
        engine.schedule_at(45.0, lambda: log.append("a"))
        for event in doomed:
            engine.cancel(event)
        engine.run()
        assert log == ["a", "b"]

    def test_small_queues_skip_compaction(self):
        engine = Engine()
        events = [engine.schedule_at(float(i), lambda: None)
                  for i in range(1, 5)]
        for event in events[:3]:
            engine.cancel(event)
        # Below COMPACT_MIN dead entries the heap is left alone; the
        # dead entries drain lazily at pop time instead.
        assert len(engine._heap) == 4
        assert engine.run() == 1


class TestRunUntil:
    def test_stops_at_boundary(self):
        engine = Engine()
        log = []
        engine.schedule_at(1.0, lambda: log.append(1))
        engine.schedule_at(5.0, lambda: log.append(5))
        engine.run_until(3.0)
        assert log == [1]
        assert engine.clock.now == 3.0
        engine.run()
        assert log == [1, 5]

    def test_events_scheduled_during_run_fire(self):
        engine = Engine()
        log = []

        def first():
            log.append("first")
            engine.schedule_in(1.0, lambda: log.append("second"))

        engine.schedule_at(1.0, first)
        engine.run()
        assert log == ["first", "second"]
        assert engine.clock.now == 2.0


class TestPeriodic:
    def test_schedule_every_with_bound(self):
        engine = Engine()
        ticks = []
        engine.schedule_every(1.0, lambda: ticks.append(engine.clock.now),
                              until=3.5)
        engine.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_interval_validated(self):
        with pytest.raises(SimulationError):
            Engine().schedule_every(0.0, lambda: None)

    def test_runaway_guard(self):
        engine = Engine()

        def forever():
            engine.schedule_in(1.0, forever)

        engine.schedule_in(1.0, forever)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)
