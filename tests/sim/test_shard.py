"""Determinism contract of the sharded fleet runner.

The headline properties (docs/SHARDING.md):

* ``shards=1`` reproduces the serial path **bit-for-bit**, for any
  ``jobs`` value;
* a *fixed* shard count is bit-identical across ``jobs``;
* different shard counts agree to float tolerance (ordered partial
  sums) while every integer series stays exact.

Everything else here (partition layout, empty shards, fault-plan
fallback, telemetry equivalence) is a supporting lemma.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro import faults, obs
from repro.errors import ConfigError
from repro.faults import FaultPlan, FaultSpec
from repro.flash.geometry import FlashGeometry
from repro.sim.fleet import MODES, FleetConfig, simulate_fleet
from repro.sim.shard import (
    ShardTask,
    partition_devices,
    run_shard_task,
    simulate_fleet_sharded,
)

TINY_CONFIG = FleetConfig(
    devices=13,
    geometry=FlashGeometry(blocks=16, fpages_per_block=16),
    pec_limit_l0=300.0,
    variation_sigma=0.35,
    dwpd=2.0,
    write_amplification=2.0,
    afr=0.02,
    horizon_days=730,
    step_days=10,
)

_ARRAYS = ("days", "functioning", "capacity_bytes",
           "capacity_lost_bytes", "death_day")


def _assert_bit_identical(a, b):
    for name in _ARRAYS:
        assert np.array_equal(getattr(a, name), getattr(b, name)), name
    assert a.initial_capacity_bytes == b.initial_capacity_bytes
    assert a.mode == b.mode


class TestPartition:
    def test_balanced_contiguous(self):
        assert partition_devices(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_single_shard_is_whole_fleet(self):
        assert partition_devices(7, 1) == [(0, 7)]

    def test_shards_exceed_devices_yields_empty_tails(self):
        # Empty shards are legal: they contribute zeros to every merge.
        assert partition_devices(3, 5) == [
            (0, 1), (1, 2), (2, 3), (3, 3), (3, 3)]

    def test_covers_every_device_exactly_once(self):
        layout = partition_devices(17, 4)
        seen = [i for start, stop in layout for i in range(start, stop)]
        assert seen == list(range(17))

    def test_invalid_shards_rejected(self):
        with pytest.raises(ConfigError):
            partition_devices(4, 0)
        with pytest.raises(ConfigError):
            partition_devices(-1, 2)


class TestSerialEquivalence:
    @pytest.mark.parametrize("mode", MODES)
    def test_single_shard_is_bit_identical(self, mode):
        serial = simulate_fleet(TINY_CONFIG, mode, seed=77)
        sharded = simulate_fleet_sharded(TINY_CONFIG, mode, seed=77,
                                         shards=1, jobs=1)
        _assert_bit_identical(serial, sharded)

    def test_empty_shards_merge_to_serial(self):
        # shards > devices: the empty tail shards must not perturb
        # anything — integer series stay exact against serial.
        serial = simulate_fleet(TINY_CONFIG, "shrink", seed=77)
        sharded = simulate_fleet_sharded(TINY_CONFIG, "shrink", seed=77,
                                         shards=TINY_CONFIG.devices + 7,
                                         jobs=2)
        assert np.array_equal(serial.functioning, sharded.functioning)
        assert np.array_equal(serial.death_day, sharded.death_day)
        assert np.allclose(serial.capacity_bytes, sharded.capacity_bytes)

    @pytest.mark.parametrize("mode", MODES)
    def test_cross_shard_float_tolerance(self, mode):
        # Different shard counts reorder the capacity partial sums:
        # integers exact, floats allclose — the documented contract.
        serial = simulate_fleet(TINY_CONFIG, mode, seed=77)
        sharded = simulate_fleet_sharded(TINY_CONFIG, mode, seed=77,
                                         shards=3, jobs=1)
        assert np.array_equal(serial.functioning, sharded.functioning)
        assert np.array_equal(serial.death_day, sharded.death_day)
        assert np.allclose(serial.capacity_bytes, sharded.capacity_bytes)
        assert np.allclose(serial.capacity_lost_bytes,
                           sharded.capacity_lost_bytes)


class TestJobsInvariance:
    @pytest.mark.parametrize("jobs", [2, 8])
    def test_fixed_shards_bit_identical_across_jobs(self, jobs):
        base = simulate_fleet_sharded(TINY_CONFIG, "regen", seed=77,
                                      shards=3, jobs=1)
        other = simulate_fleet_sharded(TINY_CONFIG, "regen", seed=77,
                                       shards=3, jobs=jobs)
        _assert_bit_identical(base, other)

    def test_worker_slice_matches_inprocess(self):
        # One shard task run in-process equals its slice of the layout —
        # the pure-function property the fork pool relies on.
        steps = int(np.ceil(TINY_CONFIG.horizon_days
                            / TINY_CONFIG.step_days))
        pending = (False,) * steps
        whole = run_shard_task(ShardTask(
            TINY_CONFIG, "shrink", 77, 0, TINY_CONFIG.devices, pending))
        parts = [run_shard_task(ShardTask(
            TINY_CONFIG, "shrink", 77, start, stop, pending))
            for start, stop in partition_devices(TINY_CONFIG.devices, 4)]
        assert np.array_equal(
            whole.functioning,
            np.sum([p.functioning for p in parts], axis=0))
        assert np.array_equal(
            whole.death_day,
            np.concatenate([p.death_day for p in parts]))


class TestValidation:
    def test_config_shards_validated(self):
        with pytest.raises(ConfigError):
            FleetConfig(shards=0)

    def test_runner_shards_validated(self):
        with pytest.raises(ConfigError):
            simulate_fleet_sharded(TINY_CONFIG, "shrink", seed=1, shards=0)

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError):
            simulate_fleet_sharded(TINY_CONFIG, "warp", seed=1)

    def test_generator_seed_rejected(self):
        with pytest.raises(ConfigError):
            simulate_fleet_sharded(TINY_CONFIG, "shrink",
                                   seed=np.random.default_rng(1))

    def test_config_shards_default_used(self):
        config = FleetConfig(**{**TINY_CONFIG.__dict__, "shards": 3})
        via_config = simulate_fleet_sharded(config, "shrink", seed=77)
        explicit = simulate_fleet_sharded(TINY_CONFIG, "shrink", seed=77,
                                          shards=3)
        _assert_bit_identical(via_config, explicit)


LOSS_PLAN = FaultPlan(events=(
    FaultSpec(site="fleet.step", fault="device_loss", when=3,
              args={"devices": 2}),
))


class TestFaultFallback:
    def test_fault_plan_falls_back_to_serial(self):
        serial = simulate_fleet(TINY_CONFIG, "shrink", seed=77,
                                faults=LOSS_PLAN)
        with pytest.warns(RuntimeWarning, match="fault plan"):
            sharded = simulate_fleet_sharded(TINY_CONFIG, "shrink",
                                             seed=77, faults=LOSS_PLAN,
                                             shards=3, jobs=2)
        _assert_bit_identical(serial, sharded)

    def test_installed_injector_falls_back(self):
        plan = FaultPlan(events=(
            FaultSpec(site="fleet.step", fault="device_loss", when=3,
                      args={"devices": 1}),
        ))
        faults.install(plan)
        try:
            with pytest.warns(RuntimeWarning, match="fault plan"):
                sharded = simulate_fleet_sharded(TINY_CONFIG, "shrink",
                                                 seed=77, shards=2)
        finally:
            faults.uninstall()
        serial = simulate_fleet(TINY_CONFIG, "shrink", seed=77,
                                faults=plan)
        _assert_bit_identical(serial, sharded)


class TestTelemetryEquivalence:
    def _run(self, fn, **kwargs):
        obs.disable()
        obs.enable_metrics()
        tracer = obs.enable_tracing()
        sampler = obs.enable_timeseries(cadence=30.0)
        try:
            fn(TINY_CONFIG, "regen", seed=77, **kwargs)
            document = sampler.to_dict()
            records = [r.to_json() for r in tracer.records()]
        finally:
            obs.disable()
        return document, records

    @staticmethod
    def _sim_pure(document):
        # Wall-clock duration series are execution-dependent even
        # serial-vs-serial; everything else must match exactly.
        document = copy.deepcopy(document)
        document["series"] = [s for s in document["series"]
                              if "duration_seconds" not in s["name"]]
        return document

    def test_timeseries_and_trace_match_serial(self):
        ts_serial, trace_serial = self._run(simulate_fleet)
        ts_sharded, trace_sharded = self._run(
            simulate_fleet_sharded, shards=1, jobs=1)
        assert self._sim_pure(ts_serial) == self._sim_pure(ts_sharded)
        assert trace_serial == trace_sharded

    def test_timeseries_jobs_invariant(self):
        ts_one, trace_one = self._run(simulate_fleet_sharded,
                                      shards=3, jobs=1)
        ts_two, trace_two = self._run(simulate_fleet_sharded,
                                      shards=3, jobs=2)
        assert self._sim_pure(ts_one) == self._sim_pure(ts_two)
        assert trace_one == trace_two

    def test_shard_metrics_exported(self):
        obs.disable()
        registry = obs.enable_metrics()
        try:
            simulate_fleet_sharded(TINY_CONFIG, "shrink", seed=77,
                                   shards=3, jobs=1)
            names = {family["name"]
                     for family in registry.to_dict()["metrics"]}
        finally:
            obs.disable()
        assert "repro_shard_tick_seconds" in names
        assert "repro_shard_merge_seconds" in names
        assert "repro_shard_devices" in names
