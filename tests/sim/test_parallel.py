"""Determinism contract of the process-parallel sweep runner.

The headline property: a sweep artifact produced with ``--jobs N`` must
be **byte-identical** to one produced with ``--jobs 1``. Everything else
here (seed derivation invariance, order preservation, schema
validation) is a supporting lemma of that contract.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.errors import ConfigError
from repro.flash.geometry import FlashGeometry
from repro.sim import parallel
from repro.sim.fleet import MODES, FleetConfig
from repro.sim.parallel import (
    derive_seeds,
    fleet_tasks,
    load_sweep_artifact,
    parallel_map,
    resolve_jobs,
    run_fleet_grid,
    summarize_sweep,
    sweep_document,
    validate_sweep_document,
    write_sweep_artifact,
)

#: Small enough for CI, big enough for GC + wear + deaths to occur.
TINY_CONFIG = FleetConfig(
    devices=6,
    geometry=FlashGeometry(blocks=16, fpages_per_block=16),
    pec_limit_l0=300.0,
    variation_sigma=0.35,
    dwpd=2.0,
    write_amplification=2.0,
    afr=0.02,
    horizon_days=730,
    step_days=10,
)


def _square(x: int) -> int:
    return x * x


class TestSeedDerivation:
    def test_deterministic_and_jobs_invariant(self):
        # Seeds derive in the parent before dispatch: the schedule is a
        # pure function of (root_seed, count), never of worker count.
        assert derive_seeds(2025, 6) == derive_seeds(2025, 6)

    def test_prefix_stable(self):
        # Growing a sweep keeps the existing runs' seeds.
        assert derive_seeds(7, 3) == derive_seeds(7, 8)[:3]

    def test_distinct_roots_diverge(self):
        assert derive_seeds(1, 4) != derive_seeds(2, 4)

    def test_count_must_be_positive(self):
        with pytest.raises(ConfigError):
            derive_seeds(1, 0)


class TestParallelMap:
    def test_preserves_order(self):
        tasks = list(range(37))
        assert parallel_map(_square, tasks, jobs=4) == \
            [x * x for x in tasks]

    def test_sequential_fallback(self):
        assert parallel_map(_square, [3], jobs=8) == [9]

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(ConfigError):
            resolve_jobs(-1)

    def test_resolve_jobs_auto(self, monkeypatch):
        # 'auto' = all cores but one, floor 1; always a resolved int.
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 8)
        assert resolve_jobs("auto") == 7
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 1)
        assert resolve_jobs("auto") == 1
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: None)
        assert resolve_jobs("auto") == 1

    def test_resolve_jobs_rejects_other_strings_and_bools(self):
        with pytest.raises(ConfigError):
            resolve_jobs("fast")
        with pytest.raises(ConfigError):
            resolve_jobs(True)

    def test_fork_unavailable_falls_back_serially(self, monkeypatch):
        # Platforms without the fork start method degrade to the serial
        # path with a warning — results identical, never a spawn pool.
        monkeypatch.setattr(parallel, "_fork_context", lambda: None)
        with pytest.warns(RuntimeWarning, match="fork"):
            results = parallel_map(_square, list(range(7)), jobs=4)
        assert results == [x * x for x in range(7)]

    def test_fork_unavailable_single_task_stays_quiet(self, monkeypatch):
        # One task never needs a pool, so no fallback warning either.
        monkeypatch.setattr(parallel, "_fork_context", lambda: None)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert parallel_map(_square, [5], jobs=2) == [25]


class TestTaskEnumeration:
    def test_seed_major_canonical_order(self):
        tasks = fleet_tasks(TINY_CONFIG, ("baseline", "regen"), (5, 9))
        assert [(t.mode, t.seed) for t in tasks] == [
            ("baseline", 5), ("regen", 5), ("baseline", 9), ("regen", 9)]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            fleet_tasks(TINY_CONFIG, ("warp",), (1,))


class TestSweepByteIdentity:
    """The satellite's acceptance check, as a test."""

    @pytest.fixture(scope="class")
    def seeds(self):
        return derive_seeds(2025, 2)

    def test_jobs2_artifact_matches_jobs1_bytes(self, seeds, tmp_path):
        documents = {}
        for jobs in (1, 2):
            grid = run_fleet_grid(TINY_CONFIG, modes=MODES, seeds=seeds,
                                  jobs=jobs)
            documents[jobs] = sweep_document(TINY_CONFIG, MODES, seeds,
                                             grid)
        paths = {jobs: write_sweep_artifact(doc,
                                            tmp_path / f"j{jobs}.json")
                 for jobs, doc in documents.items()}
        assert paths[1].read_bytes() == paths[2].read_bytes()

    def test_artifact_round_trips_and_summarizes(self, seeds, tmp_path):
        grid = run_fleet_grid(TINY_CONFIG, modes=MODES, seeds=seeds,
                              jobs=1)
        document = sweep_document(TINY_CONFIG, MODES, seeds, grid)
        path = write_sweep_artifact(document, tmp_path / "sweep.json")
        loaded = load_sweep_artifact(path)
        assert loaded == json.loads(json.dumps(document))
        rows = summarize_sweep(loaded)
        assert [row["mode"] for row in rows] == list(MODES)
        for row in rows:
            assert row["runs"] == len(seeds)
            assert row["mean_lifetime_days"] > 0


class TestSchemaValidation:
    def test_missing_keys_rejected(self):
        with pytest.raises(ConfigError):
            validate_sweep_document({"schema": "repro.sweep/v1"})

    def test_wrong_schema_rejected(self):
        with pytest.raises(ConfigError):
            validate_sweep_document({"schema": "repro.sweep/v0",
                                     "config": {}, "modes": [],
                                     "seeds": [], "results": []})

    def test_result_count_must_match_grid(self):
        with pytest.raises(ConfigError):
            validate_sweep_document({
                "schema": "repro.sweep/v1", "config": {},
                "modes": ["baseline"], "seeds": [1, 2], "results": []})

    def test_write_rejects_non_sweep_documents(self, tmp_path):
        with pytest.raises(ConfigError):
            write_sweep_artifact({"schema": "bogus"}, tmp_path / "x.json")
