"""Unit tests for the simulated clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.advance(0.5) == 3.0

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0
        clock.advance_to(10.0)  # same time is fine

    def test_no_negative_advance(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-1.0)

    def test_no_backwards_jump(self):
        clock = SimClock(5.0)
        with pytest.raises(SimulationError):
            clock.advance_to(4.0)
