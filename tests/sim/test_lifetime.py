"""Unit tests for the single-device lifetime harness."""

import pytest

from repro.sim.lifetime import LifetimeResult, run_write_lifetime


class TestHarness:
    def test_baseline_runs_to_death(self, make_baseline):
        result = run_write_lifetime(make_baseline(seed=1), seed=0)
        assert result.host_writes > 0
        assert result.death_cause in ("DeviceBrickedError", "OutOfSpaceError")
        assert result.stats["host_writes"] == result.host_writes
        assert result.mean_pec_at_death > 0

    def test_salamander_stops_at_capacity_floor(self, make_salamander):
        result = run_write_lifetime(make_salamander(mode="shrink", seed=1),
                                    capacity_floor_fraction=0.5, seed=0)
        assert result.death_cause in ("capacity-floor", "DeviceBrickedError")
        if result.death_cause == "capacity-floor":
            assert result.capacity_fraction < 0.5

    def test_capacity_curve_is_monotone_for_shrink(self, make_salamander):
        result = run_write_lifetime(make_salamander(mode="shrink", seed=1),
                                    sample_every=200, seed=0)
        capacities = [c for _, c in result.capacity_curve]
        assert capacities[0] == result.initial_capacity_lbas
        assert all(a >= b for a, b in zip(capacities, capacities[1:]))

    def test_max_writes_cap(self, make_baseline):
        result = run_write_lifetime(make_baseline(seed=1), max_writes=100,
                                    seed=0)
        assert result.host_writes == 100
        assert result.death_cause == "max-writes"

    def test_deterministic_given_seed(self, make_baseline):
        a = run_write_lifetime(make_baseline(seed=1), seed=7)
        b = run_write_lifetime(make_baseline(seed=1), seed=7)
        assert a.host_writes == b.host_writes
        assert a.death_cause == b.death_cause

    def test_capacity_fraction_property(self):
        result = LifetimeResult(
            host_writes=10, death_cause="x",
            initial_capacity_lbas=100, final_capacity_lbas=40)
        assert result.capacity_fraction == pytest.approx(0.4)

    def test_lower_utilization_extends_all_devices(self, make_baseline,
                                                   make_salamander):
        for factory in (lambda: make_baseline(seed=1),
                        lambda: make_salamander(mode="shrink", seed=1)):
            high = run_write_lifetime(factory(), utilization=0.75, seed=0)
            low = run_write_lifetime(factory(), utilization=0.45, seed=0)
            assert low.host_writes > high.host_writes
