"""Unit tests for the vectorised fleet simulator."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.flash.geometry import FlashGeometry
from repro.sim.fleet import MODES, FleetConfig, FleetResult, simulate_fleet


@pytest.fixture(scope="module")
def quick_config():
    return FleetConfig(devices=16,
                       geometry=FlashGeometry(blocks=64, fpages_per_block=32),
                       pec_limit_l0=300, dwpd=1.0, afr=0.0,
                       horizon_days=1200, step_days=20)


@pytest.fixture(scope="module")
def results(quick_config):
    return {mode: simulate_fleet(quick_config, mode, seed=7)
            for mode in MODES}


class TestShapes:
    def test_series_lengths_match(self, results):
        for result in results.values():
            steps = result.days.size
            assert result.functioning.size == steps
            assert result.capacity_bytes.size == steps
            assert result.capacity_lost_bytes.size == steps

    def test_functioning_counts_monotone_without_revival(self, results):
        for result in results.values():
            assert np.all(np.diff(result.functioning) <= 0)

    def test_all_devices_eventually_die(self, results):
        for mode, result in results.items():
            assert result.functioning[-1] == 0, mode
            assert np.all(np.isfinite(result.death_day))

    def test_capacity_lost_sums_to_initial(self, results):
        for result in results.values():
            assert result.capacity_lost_bytes.sum() == pytest.approx(
                result.initial_capacity_bytes)


class TestPaperOrdering:
    def test_lifetime_ordering(self, results):
        lives = {mode: results[mode].mean_lifetime_days() for mode in MODES}
        assert lives["baseline"] < lives["cvss"]
        assert lives["cvss"] <= lives["shrink"]
        assert lives["shrink"] < lives["regen"]

    def test_salamander_flattens_capacity_decline(self, results):
        # Fig. 3b: at the baseline's mean death day, Salamander fleets
        # retain much more capacity.
        day = results["baseline"].mean_lifetime_days()
        base = results["baseline"].capacity_fraction_at(day)
        shrink = results["shrink"].capacity_fraction_at(day)
        regen = results["regen"].capacity_fraction_at(day)
        assert shrink > base
        assert regen >= shrink

    def test_baseline_loses_capacity_in_whole_devices(self, results):
        result = results["baseline"]
        per_device = result.initial_capacity_bytes / 16
        drops = result.capacity_lost_bytes[result.capacity_lost_bytes > 0]
        # Every baseline loss step is an integer number of whole devices,
        # and there are at most as many loss steps as devices.
        ratios = drops / per_device
        assert np.allclose(ratios, np.round(ratios))
        assert np.all(ratios >= 1.0)
        assert drops.size <= 16

    def test_shrink_loses_capacity_gradually(self, results):
        # Fig. 3b's point: Salamander sheds capacity in many small steps
        # (minidisk slivers), the baseline in few device-sized bursts.
        base_drops = results["baseline"].capacity_lost_bytes
        shrink_drops = results["shrink"].capacity_lost_bytes
        assert (np.count_nonzero(shrink_drops)
                > np.count_nonzero(base_drops))
        per_device = results["shrink"].initial_capacity_bytes / 16
        assert shrink_drops[shrink_drops > 0].min() < per_device


class TestDeterminismAndKnobs:
    def test_same_seed_same_result(self, quick_config):
        a = simulate_fleet(quick_config, "shrink", seed=3)
        b = simulate_fleet(quick_config, "shrink", seed=3)
        assert np.array_equal(a.capacity_bytes, b.capacity_bytes)

    def test_afr_kills_devices_early(self, quick_config):
        from dataclasses import replace
        with_afr = replace(quick_config, afr=0.2)
        calm = simulate_fleet(quick_config, "regen", seed=3)
        noisy = simulate_fleet(with_afr, "regen", seed=3)
        assert noisy.mean_lifetime_days() < calm.mean_lifetime_days()

    def test_higher_dwpd_wears_faster(self, quick_config):
        from dataclasses import replace
        heavy = replace(quick_config, dwpd=3.0)
        light = simulate_fleet(quick_config, "baseline", seed=3)
        hard = simulate_fleet(heavy, "baseline", seed=3)
        assert hard.mean_lifetime_days() < light.mean_lifetime_days()

    def test_cvss_utilization_bound(self, quick_config):
        from dataclasses import replace
        tight = replace(quick_config, host_utilization=0.9)
        loose = replace(quick_config, host_utilization=0.3)
        a = simulate_fleet(tight, "cvss", seed=3)
        b = simulate_fleet(loose, "cvss", seed=3)
        assert b.mean_lifetime_days() > a.mean_lifetime_days()

    def test_regen_max_level_2_lives_longer(self, quick_config):
        from dataclasses import replace
        l2 = replace(quick_config, regen_max_level=2)
        a = simulate_fleet(quick_config, "regen", seed=3)
        b = simulate_fleet(l2, "regen", seed=3)
        assert b.mean_lifetime_days() >= a.mean_lifetime_days()

    def test_unknown_mode_rejected(self, quick_config):
        with pytest.raises(ConfigError):
            simulate_fleet(quick_config, "magic", seed=0)

    def test_survivors_at_and_fraction_helpers(self, results):
        result = results["baseline"]
        assert result.survivors_at(0) == 16
        assert result.survivors_at(1e9) == 0
        assert 0.0 <= result.capacity_fraction_at(600) <= 1.0

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            FleetConfig(devices=0)
        with pytest.raises(ConfigError):
            FleetConfig(cvss_rule="median")
        with pytest.raises(ConfigError):
            FleetConfig(host_utilization=0.0)
