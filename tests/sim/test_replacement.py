"""Unit tests for the replacement-policy simulator."""

import pytest
from dataclasses import replace

from repro.errors import ConfigError
from repro.flash.geometry import FlashGeometry
from repro.sim.fleet import FleetConfig
from repro.sim.replacement import (
    ReplacementConfig,
    measured_upgrade_rates,
    simulate_replacement,
)


@pytest.fixture(scope="module")
def quick_config():
    fleet = FleetConfig(
        devices=16, geometry=FlashGeometry(blocks=64, fpages_per_block=32),
        pec_limit_l0=300, dwpd=0.15, afr=0.01, step_days=20)
    # Wear life under this config is ~700-1000 days, so a 1.5-year age
    # limit actually binds (mirrors 5 y vs multi-year lives at full scale).
    return ReplacementConfig(fleet=fleet, slots=40, horizon_years=12,
                             age_limit_years=1.5)


@pytest.fixture(scope="module")
def results(quick_config):
    return measured_upgrade_rates(quick_config, seed=9)


class TestReplacement:
    def test_all_modes_present(self, results):
        assert set(results) == {"baseline", "cvss", "shrink", "regen"}

    def test_salamander_buys_fewer_devices(self, results):
        assert results["shrink"].purchases < results["baseline"].purchases
        assert results["regen"].purchases <= results["shrink"].purchases

    def test_preemption_applies_to_monolithic_fleets_only(self, results):
        assert results["baseline"].preempted_fraction > 0
        assert results["shrink"].preempted_fraction == 0
        assert results["regen"].preempted_fraction == 0

    def test_age_limit_caps_monolithic_service_life(self, results,
                                                    quick_config):
        limit_days = quick_config.age_limit_years * 365
        assert results["baseline"].mean_service_life_days <= limit_days + 1

    def test_capacity_fraction_below_one_for_shrinking_modes(self, results):
        assert results["baseline"].mean_capacity_fraction == \
            pytest.approx(1.0, abs=0.01)
        assert results["shrink"].mean_capacity_fraction < 1.0
        assert results["regen"].mean_capacity_fraction < 1.0

    def test_no_age_limit_removes_preemption(self, quick_config):
        config = replace(quick_config, age_limit_years=None)
        result = simulate_replacement(config, "baseline", seed=9)
        assert result.preempted_fraction == 0

    def test_deterministic(self, quick_config):
        a = simulate_replacement(quick_config, "shrink", seed=3)
        b = simulate_replacement(quick_config, "shrink", seed=3)
        assert a.purchases == b.purchases

    def test_longer_horizon_more_purchases(self, quick_config):
        short = simulate_replacement(quick_config, "baseline", seed=3)
        long = simulate_replacement(
            replace(quick_config, horizon_years=24), "baseline", seed=3)
        assert long.purchases > short.purchases

    def test_validation(self, quick_config):
        with pytest.raises(ConfigError):
            ReplacementConfig(slots=0)
        with pytest.raises(ConfigError):
            ReplacementConfig(horizon_years=0)
        with pytest.raises(ConfigError):
            ReplacementConfig(age_limit_years=-1)
        with pytest.raises(ConfigError):
            simulate_replacement(quick_config, "nonsense", seed=0)
